//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the API surface the workspace's benches use — `Criterion`
//! with `measurement_time`/`warm_up_time`/`sample_size` builders, bench
//! groups, `bench_with_input`, `BenchmarkId`, and the `criterion_group!`
//! / `criterion_main!` macros — over a straightforward wall-clock
//! harness: warm up, size a batch so one sample hits the per-sample
//! time budget, take `sample_size` timed samples, and print
//! min/mean/max per iteration. There is no statistical outlier
//! analysis or HTML report; benches still run to completion under
//! `cargo bench` and fail loudly if the benched code panics, which is
//! what CI needs from them.
//!
//! When the `BENCH_JSON` environment variable names a path, the
//! `criterion_main!`-generated `main` additionally writes every
//! recorded measurement as one canonical JSON document (`BENCH_*.json`
//! by convention) after the groups finish. The `benchgate` binary in
//! `crates/bench` diffs such a file against a checked-in baseline and
//! fails CI on regressions.

use std::fmt::{self, Display};
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark timings recorded for the `BENCH_JSON` export,
/// in registration order.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

struct BenchRecord {
    id: String,
    min_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

/// Write every benchmark recorded so far to the path named by the
/// `BENCH_JSON` environment variable, if set. Invoked automatically by
/// the `main` that `criterion_main!` generates; harmless to call again
/// (the registry drains on write).
///
/// The document is canonical: one object per benchmark in run order,
/// integer nanoseconds only, fixed key order.
///
/// # Panics
///
/// Panics when `BENCH_JSON` is set but the file cannot be written —
/// a silent skip would let a CI perf gate pass vacuously.
pub fn write_bench_json() {
    let Ok(path) = std::env::var("BENCH_JSON") else {
        return;
    };
    let records = std::mem::take(&mut *RESULTS.lock().expect("bench registry poisoned"));
    let mut out = String::from("{\"benches\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"id\":\"{}\",\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}",
            r.id.replace('\\', "\\\\").replace('"', "\\\""),
            r.min_ns,
            r.mean_ns,
            r.max_ns
        ));
    }
    out.push_str("\n]}\n");
    std::fs::write(&path, out)
        .unwrap_or_else(|e| panic!("cannot write bench JSON to {path}: {e}"));
    eprintln!("bench JSON written to {path}");
}

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Leaner than upstream's 5s/3s/100: the stub favors total
        // `cargo bench` latency; benches that need more override via
        // the builders.
        Self {
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Set the time budget spread across one benchmark's samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Set the warm-up duration (also used to size sample batches).
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            id,
            self.measurement_time,
            self.warm_up_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Used by `criterion_main!`; the stub has no CLI to configure.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing configuration and a name
/// prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            self.measurement_time,
            self.warm_up_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, D, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &D),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.into_benchmark_id()),
            self.measurement_time,
            self.warm_up_time,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Close the group (upstream flushes reports here; the stub prints
    /// as it goes).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    samples_secs_per_iter: Vec<f64>,
}

impl Bencher {
    /// Measure a closure: warm up, choose a batch size targeting the
    /// per-sample budget, then record `sample_size` timed batches.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000_000);

        self.samples_secs_per_iter.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples_secs_per_iter.push(start.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        measurement_time,
        warm_up_time,
        sample_size,
        samples_secs_per_iter: Vec::new(),
    };
    f(&mut bencher);
    let samples = &bencher.samples_secs_per_iter;
    if samples.is_empty() {
        // The closure never called `iter` — still report it ran.
        println!("{id:<40} (no measurement)");
        return;
    }
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]",
        format_secs(min),
        format_secs(mean),
        format_secs(max)
    );
    let to_ns = |secs: f64| (secs * 1e9).round().max(1.0) as u64;
    RESULTS.lock().expect("bench registry poisoned").push(BenchRecord {
        id: id.to_owned(),
        min_ns: to_ns(min),
        mean_ns: to_ns(mean),
        max_ns: to_ns(max),
    });
}

fn format_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Bundle benchmark functions into a named group runner, in either the
/// positional or the `name = / config = / targets =` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
            .sample_size(3)
    }

    #[test]
    fn bench_function_measures() {
        let mut c = fast();
        c.bench_function("tiny", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn group_api_round_trip() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("plain", |b| b.iter(|| black_box(1u32)));
        group.bench_function(BenchmarkId::new("param", 4), |b| b.iter(|| black_box(4u32)));
        for n in [1u32, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * n));
            });
        }
        group.finish();
    }

    #[test]
    fn bench_json_export_writes_canonical_document() {
        let path = std::env::temp_dir().join("criterion_stub_bench_json_test.json");
        let mut c = fast();
        c.bench_function("export_probe", |b| b.iter(|| black_box(1u8)));
        std::env::set_var("BENCH_JSON", &path);
        write_bench_json();
        std::env::remove_var("BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("export written");
        assert!(text.starts_with("{\"benches\":["), "{text}");
        assert!(text.contains("\"id\":\"export_probe\""), "{text}");
        assert!(text.contains("\"min_ns\":") && text.contains("\"mean_ns\":"), "{text}");
        assert!(text.trim_end().ends_with("]}"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("mul", 8).to_string(), "mul/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    mod macro_smoke {
        use super::super::*;

        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| black_box(0u8)));
        }

        criterion_group! {
            name = benches;
            config = Criterion::default()
                .measurement_time(Duration::from_millis(10))
                .warm_up_time(Duration::from_millis(2))
                .sample_size(2);
            targets = target,
        }

        criterion_group!(positional, target);

        #[test]
        fn groups_run() {
            benches();
            // `positional` uses default() timing; invoking it in tests
            // would add ~1.3s for nothing, so only check it exists.
            let _: fn() = positional;
        }
    }
}
