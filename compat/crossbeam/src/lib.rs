//! Offline stand-in for [`crossbeam`](https://docs.rs/crossbeam),
//! covering the two surfaces this workspace uses:
//!
//! * [`scope`] — scoped threads in the crossbeam 0.8 shape
//!   (`scope(|s| ...)` returns `thread::Result<R>`, `s.spawn(|_| ...)`
//!   hands the closure a scope reference), implemented over
//!   `std::thread::scope`.
//! * [`channel`] — multi-producer/multi-consumer channels
//!   (`unbounded()`, cloneable `Sender`/`Receiver`, disconnect on last
//!   sender drop), implemented with a `Mutex<VecDeque>` + `Condvar`.
//!   Throughput is far below real crossbeam, but the work items moved
//!   through these channels are whole EDA stage runs, so channel cost
//!   is noise.

use std::any::Any;
use std::marker::PhantomData;

/// Result of joining a spawned thread (panic payload on the `Err` side),
/// mirroring `crossbeam::thread::Result`.
pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// Scoped-thread namespace, mirroring `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
    /// Alias matching `crossbeam::thread::Result`.
    pub type Result<T> = super::ThreadResult<T>;
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

/// Scope passed to the [`scope`] closure; spawns threads that may borrow
/// from the enclosing stack frame.
pub struct Scope<'env, 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    _marker: PhantomData<&'env ()>,
}

impl<'env, 'scope> Scope<'env, 'scope> {
    /// Spawn a scoped thread. As in crossbeam 0.8, the closure receives
    /// a scope reference (unused by this workspace, hence `|_| ...` at
    /// call sites).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Self) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = Scope { inner: self.inner, _marker: PhantomData };
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
    }
}

/// Create a scope for spawning borrowing threads.
///
/// All spawned threads are joined when the closure returns (guaranteed
/// by `std::thread::scope`). Crossbeam reports an `Err` if any
/// *unjoined* thread panicked; every call site in this workspace joins
/// explicitly, so `Ok` is always returned here and unjoined panics
/// propagate via `std::thread::scope`'s own resume instead.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'env, 'scope>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s, _marker: PhantomData })))
}

/// MPMC channels, mirroring the subset of `crossbeam::channel` used by
/// the sweep job pool.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; cloneable. The channel disconnects when the last
    /// clone is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (competing consumers steal from the
    /// same queue).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// The unsent value is returned, as in crossbeam.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            ready: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Push a value. Never blocks (unbounded); errs only if every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap();
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    /// Blocking iterator over received values; ends on disconnect.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_fan_out_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        let sum = scope(|s| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| rx.iter().sum::<u32>())
                })
                .collect();
            for v in 1..=100 {
                tx.send(v).expect("receiver alive");
            }
            drop(tx);
            drop(rx);
            workers.into_iter().map(|h| h.join().expect("worker")).sum::<u32>()
        })
        .expect("scope");
        assert_eq!(sum, 5050);
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_drains_then_disconnects() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }
}
