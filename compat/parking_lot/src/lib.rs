//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot):
//! wraps `std::sync` primitives behind parking_lot's poison-free API
//! (lock acquisition never returns `Result`; a poisoned std lock is
//! recovered transparently, matching parking_lot's semantics of not
//! poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (std-backed, poison-free API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves unique
    /// ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (std-backed, poison-free API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Acquire the exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let c = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = c.lock();
            panic!("poison std mutex");
        })
        .join();
        // parking_lot semantics: no poisoning observable by later users.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
