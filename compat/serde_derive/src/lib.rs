//! No-op derive macros for the offline `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` traits are blanket-implemented
//! for every type, so the derives have nothing to generate; they exist
//! so `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper
//! attributes parse exactly as they do with upstream serde.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers) and
/// generates nothing — the trait is blanket-implemented in the stub.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers) and
/// generates nothing — the trait is blanket-implemented in the stub.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
