//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! Supports the subset this workspace uses: `proptest!` with an optional
//! `#![proptest_config(..)]` header, `prop_compose!` (no outer
//! parameters), `prop_assert!`/`prop_assert_eq!`, range and tuple
//! strategies, and `proptest::sample::select`.
//!
//! Differences from upstream, chosen deliberately for an offline test
//! stub:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   left to the assertion message; there is no minimization pass.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   fully-qualified name, so failures reproduce exactly on every run
//!   and machine — there is no `PROPTEST_` env handling or regression
//!   file.
//! * **32 default cases** (upstream: 256) to keep `cargo test -q` fast;
//!   tests that want more say so via `ProptestConfig::with_cases`.

pub mod strategy {
    /// A generator of values for property tests. Unlike upstream there
    /// is no value-tree/shrinking layer: a strategy just produces a
    /// value from the deterministic test RNG.
    pub trait Strategy {
        /// Type of values this strategy generates.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy built from a closure over the test RNG; the expansion
    /// target of `prop_compose!`.
    pub struct FnStrategy<T, F: Fn(&mut crate::test_runner::TestRng) -> T> {
        func: F,
    }

    impl<T, F: Fn(&mut crate::test_runner::TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> T {
            (self.func)(rng)
        }
    }

    /// Wrap a sampling closure as a [`Strategy`].
    pub fn from_fn<T, F: Fn(&mut crate::test_runner::TestRng) -> T>(func: F) -> FnStrategy<T, F> {
        FnStrategy { func }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t; // full-domain u64/i64 range
                    }
                    (*self.start() as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let v = self.start + rng.unit_f64() as $t * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    self.start() + rng.unit_f64() as $t * (self.end() - self.start())
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut crate::test_runner::TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut crate::test_runner::TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod sample {
    use crate::strategy::Strategy;

    /// Strategy drawing uniformly from a fixed set of options.
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Pick uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only the case count is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` generated inputs through the property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the offline stub trades depth
            // for `cargo test -q` latency.
            Self { cases: 32 }
        }
    }

    /// Deterministic RNG (SplitMix64) seeded from the test's
    /// fully-qualified name so every run generates the same cases.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a hash; stable across runs and
        /// platforms, unlike `DefaultHasher`).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`), via 128-bit
        /// widening multiply.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Everything a property test module needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest};
}

/// Assert inside a property; panics with the formatted message (no
/// shrinking pass, so this is a plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each `fn` runs its body against `cases`
/// deterministic samples of the argument strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$attr:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Compose strategies into a named strategy-returning function
/// (zero-outer-parameter form only, which is all this workspace uses).
#[macro_export]
macro_rules! prop_compose {
    ($(#[$attr:meta])*
     $vis:vis fn $name:ident $(<$($lt:lifetime),*>)? ()
        ($($pat:pat_param in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$attr])*
        $vis fn $name $(<$($lt),*>)? () -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("bounds");
        for _ in 0..2_000 {
            let v = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = Strategy::generate(&(-4i64..=4), &mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let sample = |name: &str| {
            let mut rng = crate::test_runner::TestRng::for_test(name);
            (0..8).map(|_| Strategy::generate(&(0u64..1_000_000), &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample("a"), sample("a"));
        assert_ne!(sample("a"), sample("b"));
    }

    #[test]
    fn select_draws_every_option() {
        let mut rng = crate::test_runner::TestRng::for_test("select");
        let s = crate::sample::select(vec!["x", "y", "z"]);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(Strategy::generate(&s, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    prop_compose! {
        fn point()(x in 0i32..10, y in 0i32..10) -> (i32, i32) { (x, y) }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn tuple_and_composed_strategies((a, b) in (0u32..5, 10u32..15), p in point()) {
            prop_assert!(a < 5);
            prop_assert!((10..15).contains(&b));
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
