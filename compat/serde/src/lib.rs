//! Offline stand-in for [`serde`](https://docs.rs/serde): the build
//! environment cannot reach the registry, and nothing in this workspace
//! actually serializes (there is no `serde_json`/`bincode` consumer) —
//! the `#[derive(Serialize, Deserialize)]` annotations only declare
//! intent. This crate keeps those annotations compiling by providing
//! marker traits that every type satisfies via blanket impls, plus
//! no-op derive macros re-exported from `serde_derive`.
//!
//! If a future PR adds a real serialization consumer, replace this stub
//! with a vendored upstream `serde` and delete nothing else: the trait
//! names, derive syntax, and `#[serde(...)]` helper attributes used in
//! the workspace are all forward-compatible.

/// Marker for types declared serializable. Blanket-implemented for all
/// types: the workspace never drives an actual serializer through it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Owned-deserialization marker mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_serialize<T: Serialize>() {}
    fn assert_deserialize<T: for<'de> Deserialize<'de>>() {}

    #[test]
    fn blanket_impls_cover_everything() {
        assert_serialize::<Vec<String>>();
        assert_serialize::<f64>();
        assert_deserialize::<Vec<u8>>();
        assert_deserialize::<(u32, String)>();
    }
}
