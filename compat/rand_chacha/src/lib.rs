//! Offline stand-in for [`rand_chacha` 0.3](https://docs.rs/rand_chacha):
//! a genuine ChaCha stream cipher core (8 double-rounds) exposed through
//! this workspace's `rand` traits. Streams are deterministic and stable
//! but are not bit-compatible with upstream `rand_chacha` (the upstream
//! word-ordering quirks are not reproduced; nothing in the workspace
//! depends on the exact stream, only on determinism).

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds seeded from 32 key bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..8 {
            // One double-round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(input) {
            *s = s.wrapping_add(i);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(6);
        assert_ne!(ChaCha8Rng::seed_from_u64(5).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xE9A);
        let n = 10_000;
        let trues = (0..n).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&trues), "trues={trues}");
        let mean: f64 =
            (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn blocks_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
