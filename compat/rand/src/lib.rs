//! Offline stand-in for [`rand` 0.8](https://docs.rs/rand/0.8): the
//! registry is unreachable in the build environment, so this crate
//! provides the subset of the API the workspace actually uses
//! (`RngCore`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}`, `seq::SliceRandom::shuffle`) with the same trait shapes.
//!
//! Determinism is the only contract the workspace relies on — generated
//! streams are stable across platforms and runs, but are NOT the
//! upstream `rand` streams.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array for the generators used here).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64, matching
    /// the upstream approach (though not its exact expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = sm.next().to_le_bytes();
            let n = rem.len();
            rem.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 seed expander (public-domain constants).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

mod uniform;
pub use uniform::SampleRange;

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`0..n`, `0..=n`, float ranges).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        // 53-bit uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Sequence helpers (`SliceRandom`).

    use crate::{Rng, RngCore};

    /// Shuffle and choose operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Minimal standard generator (rarely used directly by the
    //! workspace; provided for completeness).

    use crate::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9, 0x7F4A_7C15, 0xF39C_C060, 0x5CED_C834];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[derive(Clone)]
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 >> 1
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=5u8);
            assert!(i <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = rngs::StdRng::seed_from_u64(9).next_u64();
        let b = rngs::StdRng::seed_from_u64(9).next_u64();
        assert_eq!(a, b);
    }
}
