//! Uniform range sampling (`Rng::gen_range` support types).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "gen_range called with empty inclusive range");
        T::sample_inclusive(low, high, rng)
    }
}

/// Widening multiply rejection-free bounded sample (Lemire's method
/// without the rejection step — the tiny modulo bias is irrelevant for
/// this workspace's synthetic workloads).
fn bounded_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                (low as $wide).wrapping_add(bounded_u64(span, rng) as $wide) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (low as $wide).wrapping_add(bounded_u64(span + 1, rng) as $wide) as $t
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // 53-bit mantissa uniform in [0, 1).
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Guard against rounding up to `high` exactly.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            self.0
        }
    }

    #[test]
    fn signed_ranges_cover_negative() {
        let mut rng = Lcg(1);
        let mut saw_neg = false;
        for _ in 0..200 {
            let v = (-5i64..5).sample_single(&mut rng);
            assert!((-5..5).contains(&v));
            saw_neg |= v < 0;
        }
        assert!(saw_neg);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Lcg(1);
        let _ = (5u32..5).sample_single(&mut rng);
    }
}
