//! Cross-crate integration: flow runtimes priced through the cloud
//! substrate (provisioning, multi-tenant hosts, billing).

use eda_cloud::cloud::{Catalog, Host, Provisioner, SpotMarket, VmState};
use eda_cloud::core::Workflow;
use eda_cloud::flow::{ExecContext, Recipe, StageKind, Synthesizer};
use eda_cloud::netlist::generators;

#[test]
fn flow_job_billed_end_to_end() {
    // Measure a synthesis job, then actually run it through the
    // provisioner on the recommended instance.
    let workflow = Workflow::with_defaults();
    let catalog = Catalog::aws_like();
    let design = generators::openpiton_design("dynamic_node").expect("design");
    let ctx = workflow.exec_context(StageKind::Synthesis, 2);
    let (_netlist, report) = Synthesizer::new()
        .with_verification(false)
        .run(&design, &Recipe::balanced(), &ctx)
        .expect("synthesis");

    let instance = catalog.instance("m5.large").expect("catalog").clone();
    let mut cloud = Provisioner::new(*catalog.pricing());
    let vm = cloud.launch(instance.clone());
    let record = cloud.run_job(vm, report.runtime_secs).expect("job runs");

    // Billing covers boot + job at the per-second rate (min 60 s).
    assert!(record.billed_secs >= 60);
    assert!(record.cost_usd > 0.0);
    let direct = catalog.pricing().cost_usd(&instance, report.runtime_secs + 30.0);
    assert!((record.cost_usd - direct).abs() < 1e-9);
    assert_eq!(cloud.vms()[0].state, VmState::Terminated);
}

#[test]
fn tenancy_interference_slows_jobs_measurably() {
    // Same job on an empty host vs a packed one: the co-tenant
    // interference from the host model must lengthen the simulated
    // runtime.
    let catalog = Catalog::aws_like();
    let instance = catalog.instance("m5.xlarge").expect("catalog");
    let design = generators::adder(12);

    let mut empty_host = Host::xeon_14_core();
    let quiet_cfg = empty_host.place(instance).expect("fits");

    let mut busy_host = Host::xeon_14_core();
    // Pack neighbors first.
    for _ in 0..3 {
        busy_host
            .place(catalog.instance("m5.2xlarge").expect("catalog"))
            .expect("fits");
    }
    let noisy_cfg = busy_host.place(instance).expect("fits");
    assert!(noisy_cfg.interference > quiet_cfg.interference);

    let synthesizer = Synthesizer::new().with_verification(false);
    let (_, quiet) = synthesizer
        .run(&design, &Recipe::balanced(), &ExecContext::new(quiet_cfg))
        .expect("runs");
    let (_, noisy) = synthesizer
        .run(&design, &Recipe::balanced(), &ExecContext::new(noisy_cfg))
        .expect("runs");
    assert!(
        noisy.runtime_secs > quiet.runtime_secs,
        "noisy {} vs quiet {}",
        noisy.runtime_secs,
        quiet.runtime_secs
    );
}

#[test]
fn spot_pricing_tradeoff_depends_on_job_length() {
    let catalog = Catalog::aws_like();
    let instance = catalog.instance("r5.large").expect("catalog");
    let market = SpotMarket::typical();
    // A one-minute job: spot is a clear win.
    let short = catalog
        .pricing()
        .expected_spot_cost_usd(instance, 60.0, &market);
    assert!(short < catalog.pricing().cost_usd(instance, 60.0));
    // Expected spot cost grows super-linearly with runtime.
    let t1 = catalog.pricing().expected_spot_cost_usd(instance, 3_600.0, &market);
    let t10 = catalog
        .pricing()
        .expected_spot_cost_usd(instance, 36_000.0, &market);
    assert!(t10 > 10.0 * t1);
}
