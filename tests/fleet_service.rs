//! Fleet-simulator integration tests: same-seed runs are byte-identical
//! (including under parallel planning workers), and one fixed-seed
//! report is pinned as a golden value so any behavioral drift in the
//! event engine, the planner, or the fault injector is caught.

use eda_cloud::core::{FleetScenario, Workflow};
use eda_cloud::fleet::SpotPolicy;

#[test]
fn same_seed_reports_are_byte_identical() {
    let workflow = Workflow::with_defaults();
    let scenario = FleetScenario::new(20, 42).with_spot(SpotPolicy::typical());
    let a = workflow.simulate_fleet(&scenario).expect("first run");
    let b = workflow.simulate_fleet(&scenario).expect("second run");
    assert_eq!(a.to_json(), b.to_json(), "same seed must replay exactly");
    assert_eq!(a, b);
}

#[test]
fn planning_worker_count_cannot_change_the_report() {
    let workflow = Workflow::with_defaults();
    let mut scenario = FleetScenario::new(16, 9).with_spot(SpotPolicy::typical());
    scenario.workers = 1;
    let serial = workflow.simulate_fleet(&scenario).expect("serial");
    scenario.workers = 4;
    let parallel = workflow.simulate_fleet(&scenario).expect("parallel");
    assert_eq!(
        serial.to_json(),
        parallel.to_json(),
        "canonical reduction makes the fan-out invisible"
    );
}

#[test]
fn different_seeds_move_the_fleet() {
    let workflow = Workflow::with_defaults();
    let a = workflow
        .simulate_fleet(&FleetScenario::new(20, 1))
        .expect("seed 1");
    let b = workflow
        .simulate_fleet(&FleetScenario::new(20, 2))
        .expect("seed 2");
    assert_ne!(a.to_json(), b.to_json(), "arrivals and sizes are seeded");
}

/// Golden report for the CI smoke scenario (`fleet --jobs 50 --seed 7`):
/// pins deadline-hit rate, total cost, and retry count, on demand and
/// under the typical spot market. These values are a contract — they
/// only change when the engine's semantics change, and such a change
/// must be deliberate.
#[test]
fn golden_report_for_seed_7() {
    let workflow = Workflow::with_defaults();

    let on_demand = workflow
        .simulate_fleet(&FleetScenario::new(50, 7))
        .expect("on-demand run");
    assert_eq!(on_demand.counters.jobs_completed, 50);
    assert_eq!(on_demand.deadline_hit_rate, 1.0);
    assert_eq!(on_demand.counters.retries, 0);
    assert_eq!(on_demand.counters.vms_launched, 196);
    assert_eq!(on_demand.counters.warm_reuses, 4);
    assert!(
        (on_demand.total_cost_usd - 18.148707).abs() < 1e-6,
        "on-demand total {}",
        on_demand.total_cost_usd
    );

    let spot = workflow
        .simulate_fleet(&FleetScenario::new(50, 7).with_spot(SpotPolicy::typical()))
        .expect("spot run");
    assert_eq!(spot.counters.jobs_completed, 50);
    assert_eq!(spot.counters.deadline_hits, 48);
    assert!((spot.deadline_hit_rate - 0.96).abs() < 1e-12);
    assert_eq!(spot.counters.interruptions, 2);
    assert_eq!(spot.counters.retries, 2);
    assert_eq!(spot.counters.vms_launched, 202);
    assert!(
        (spot.total_cost_usd - 5.433414).abs() < 1e-6,
        "spot total {}",
        spot.total_cost_usd
    );
    // The typical market's 70% discount dominates its 5%/h reclaim tax.
    assert!(spot.total_cost_usd < 0.5 * on_demand.total_cost_usd);
}
