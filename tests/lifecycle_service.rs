//! Model-lifecycle integration tests: the full detect → retrain →
//! canary → promote arc runs deterministically (byte-identical reports
//! across runs and worker counts), the golden seed-7 scenario is
//! pinned against a checked-in report, and the promoted model beats
//! the frozen baseline on every stage of the post-rollout traffic.

use eda_cloud::core::{LifecycleScenario, Workflow};
use eda_cloud::lifecycle::{LifecycleConfig, LifecycleController, LifecycleReport};

mod common;

/// A trimmed-down arc (smaller stream, fewer epochs) for the replay
/// tests: still detects, retrains, and resolves a canary — cheap
/// enough to run several times in a debug build.
fn small_arc_config(workers: usize) -> LifecycleConfig {
    LifecycleConfig {
        requests: 160,
        drift_at: 50,
        calibration: 12,
        min_retrain: 6,
        canary_min: 5,
        bootstrap_epochs: 20,
        retrain_epochs: 20,
        workers,
        ..LifecycleConfig::default()
    }
}

fn run_small(workers: usize) -> LifecycleReport {
    LifecycleController::new(small_arc_config(workers))
        .expect("valid config")
        .run()
        .expect("lifecycle run")
        .0
}

#[test]
fn same_seed_reports_are_byte_identical() {
    let a = run_small(1);
    let b = run_small(1);
    assert_eq!(a.to_json(), b.to_json(), "same seed must replay exactly");
    assert!(a.counters.drift_detections > 0, "the small arc still detects");
    assert!(a.counters.retrains > 0, "the small arc still retrains");
}

#[test]
fn worker_count_cannot_change_the_report() {
    let serial = run_small(1);
    for workers in [2usize, 8] {
        let parallel = run_small(workers);
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "stage-indexed joins make the fan-out invisible ({workers} workers)"
        );
    }
}

/// Golden report for the CI lifecycle scenario
/// (`lifecycle --requests 320 --seed 7 --json`). The controller's
/// output is a pure function of the scenario — independent of worker
/// count, build profile, and platform — so the comparison is byte for
/// byte. Regenerate with `UPDATE_GOLDEN=1 cargo test --test
/// lifecycle_service` if a deliberate change shifts it.
#[test]
fn golden_report_for_seed_7() {
    let workflow = Workflow::with_defaults();
    let scenario = LifecycleScenario::new(320, 7);
    let (report, _) = workflow.lifecycle(&scenario).expect("lifecycle run");
    common::assert_golden(&report.to_json(), "golden/lifecycle_report.json");

    // The golden arc walks detect → retrain → canary → promote...
    let kinds: Vec<&str> = report.timeline.iter().map(|e| e.kind).collect();
    let detect = kinds.iter().position(|k| *k == "drift_detected").expect("detects");
    let retrain = kinds.iter().position(|k| *k == "retrained").expect("retrains");
    let promote = kinds.iter().position(|k| *k == "promoted").expect("promotes");
    assert!(detect < retrain && retrain < promote, "causal order: {kinds:?}");
    assert_eq!(report.final_primary_version, 2);

    // ...and the promoted model beats the frozen baseline on every
    // stage over the same post-rollout joins.
    for (k, stage) in report.stages.iter().enumerate() {
        assert!(
            stage.post_rollout_active.mean_micros() < stage.post_rollout_frozen.mean_micros(),
            "stage {k}: promoted model must beat the frozen baseline"
        );
    }
}
