//! Fault-injection integration tests: the golden seed-7 simtest report
//! is pinned byte for byte, the report is independent of worker count
//! through the workflow path, and — the harness's reason to exist —
//! the deliberately planted guardrail bug is caught by the invariant
//! suite and shrunk to a minimal (≤ 3 event) replayable reproducer.
//!
//! The planted bug lives behind the `planted-guardrail-bug` feature of
//! `eda-cloud-simtest`/`eda-cloud-lifecycle`; this test crate enables
//! it via a dev-dependency, so production builds never compile the
//! faulty path.

use eda_cloud::core::{SimtestScenario, Workflow};
use eda_cloud::simtest::{run_simtest, shrink_plan, FaultEvent, FaultPlan, SimtestConfig};

mod common;

/// Golden report for the CI smoke scenario (`simtest --seed 7 --faults
/// 6 --json`). The harness is deterministic in simulated time, so the
/// report is a pure function of the scenario — independent of worker
/// count, build profile, and platform. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test simtest_service` if a deliberate
/// change shifts it.
#[test]
fn golden_report_for_seed_7() {
    let workflow = Workflow::with_defaults();
    let report = workflow.simtest(&SimtestScenario::new(7, 6)).expect("simtest run");
    assert!(report.passed(), "seed-7 violations: {:?}", report.violations);
    assert!(report.fault_spans > 0, "the generated plan injects observable faults");
    common::assert_golden(&report.to_json(), "golden/simtest_report.json");
}

#[test]
fn instrumented_workflow_exports_the_fault_span_tree() {
    let tracer = eda_cloud::trace::Tracer::new();
    let workflow = Workflow::with_defaults().with_tracer(tracer.clone());
    let report = workflow.simtest(&SimtestScenario::new(7, 6)).expect("simtest run");
    let trace = tracer.drain();
    let fault_spans = trace
        .records()
        .iter()
        .filter(|r| r.path.contains("fault/") || r.attrs.iter().any(|(k, _)| k == "fault"))
        .count() as u64;
    assert_eq!(fault_spans, report.fault_spans, "the exported trace carries every fault span");
    for phase in ["fleet/", "serve/", "lifecycle/"] {
        assert!(
            trace.records().iter().any(|r| r.path.starts_with(phase)),
            "adopted phase root `{phase}` missing from the exported trace"
        );
    }
}

#[test]
fn workflow_reports_are_byte_identical_across_worker_counts() {
    let serial = Workflow::with_defaults()
        .simtest(&SimtestScenario::new(7, 6))
        .expect("simtest run")
        .to_json();
    for workers in [2usize, 8] {
        let scenario = SimtestScenario { workers, ..SimtestScenario::new(7, 6) };
        let parallel = Workflow::with_defaults().simtest(&scenario).expect("simtest run");
        assert_eq!(serial, parallel.to_json(), "fan-out must be invisible ({workers} workers)");
    }
}

/// The canary-window latency spike that the planted bug subtracts
/// before the guardrail sees it, padded with two decoy events the
/// shrinker must discard.
fn buggy_plan() -> FaultPlan {
    FaultPlan {
        seed: 7,
        events: vec![
            FaultEvent::CacheWipe { ordinal: 3 },
            FaultEvent::CanaryLatencySpike { ord_lo: 0, ord_hi: 159, spike_us: 10_000_000 },
            FaultEvent::FeedbackDelay { ordinal: 50, extra_us: 500_000 },
        ],
    }
}

#[test]
fn planted_guardrail_bug_is_caught_and_shrunk_to_a_minimal_reproducer() {
    let config = SimtestConfig { planted_guardrail_bug: true, ..SimtestConfig::default() };

    // The sound controller survives the same plan: a 10 s spike on
    // every canary join trips the latency guardrail and rolls back,
    // which replays consistently.
    let sound = run_simtest(&SimtestConfig::default(), &buggy_plan()).expect("harness runs");
    assert!(sound.report.passed(), "sound run violations: {:?}", sound.report.violations);
    assert!(sound.report.lifecycle.rollbacks > 0, "the guardrail rolls the canary back");

    // The planted bug subtracts the spike before recording, blinding
    // the guardrail into a promotion the feedback log cannot justify.
    let buggy = run_simtest(&config, &buggy_plan()).expect("harness runs");
    assert!(
        buggy.report.violations.iter().any(|v| v.checker == "guardrail_soundness"),
        "the invariant suite must catch the planted bug; got {:?}",
        buggy.report.violations
    );
    assert!(buggy.report.lifecycle.promotions > 0, "the blinded guardrail promotes");

    // ddmin strips the decoys: the spike alone reproduces the failure.
    let minimal = shrink_plan(&config, &buggy_plan()).expect("a failing plan shrinks");
    assert!(minimal.events.len() <= 3, "minimal reproducer too large: {:?}", minimal.events);
    assert!(
        minimal.events.iter().any(|e| matches!(e, FaultEvent::CanaryLatencySpike { .. })),
        "the spike is essential: {:?}",
        minimal.events
    );
    assert!(
        !minimal.events.iter().any(|e| matches!(e, FaultEvent::CacheWipe { .. })),
        "decoys are shrunk away: {:?}",
        minimal.events
    );

    // The reproducer replays the same violation from its canonical
    // JSON form — the artifact a CI failure would emit for check-in.
    let replayed = FaultPlan::from_json(&minimal.to_json()).expect("reproducer round-trips");
    let rerun = run_simtest(&config, &replayed).expect("harness runs");
    assert!(rerun.report.violations.iter().any(|v| v.checker == "guardrail_soundness"));
}
