//! Cross-crate integration: characterize → predict → optimize.

use eda_cloud::cloud::{Catalog, InstanceFamily};
use eda_cloud::core::dataset::{DatasetBuilder, DatasetConfig};
use eda_cloud::core::predict::StagePredictors;
use eda_cloud::core::{CharacterizationConfig, StageRuntimes, Workflow};
use eda_cloud::flow::StageKind;
use eda_cloud::gcn::Trainer;
use eda_cloud::netlist::generators;

fn measured_runtimes(workflow: &Workflow, design_name: &str) -> Vec<StageRuntimes> {
    let design = generators::openpiton_design(design_name).expect("known design");
    let report = workflow
        .characterize_design(&design, &CharacterizationConfig::paper())
        .expect("characterization");
    report
        .stages
        .iter()
        .map(|s| {
            let mut runtimes_secs = [0.0; 4];
            for (k, run) in s.runs.iter().take(4).enumerate() {
                runtimes_secs[k] = run.report.runtime_secs;
            }
            StageRuntimes {
                kind: s.kind,
                runtimes_secs,
            }
        })
        .collect()
}

#[test]
fn characterize_then_optimize_end_to_end() {
    let workflow = Workflow::with_defaults();
    let runtimes = measured_runtimes(&workflow, "dynamic_node");
    let problem = workflow.deployment_problem(&runtimes).expect("problem");
    let min_total = problem.min_total_runtime();

    // Loose deadline: feasible, cheapest choices win somewhere.
    let plan = workflow
        .plan_deployment(&runtimes, min_total * 10)
        .expect("solves")
        .expect("feasible");
    assert_eq!(plan.stages.len(), 4);
    assert!(plan.total_cost_usd > 0.0);

    // Edge deadline: still feasible by construction.
    let edge = workflow
        .plan_deployment(&runtimes, min_total)
        .expect("solves")
        .expect("feasible at the exact minimum");
    assert!(edge.total_runtime_secs <= min_total);
    assert!(edge.total_cost_usd >= plan.total_cost_usd - 1e-9);

    // Below the edge: NA.
    assert!(workflow
        .plan_deployment(&runtimes, min_total.saturating_sub(1))
        .expect("solves")
        .is_none());
}

#[test]
fn plans_use_recommended_families() {
    let workflow = Workflow::with_defaults();
    let runtimes = measured_runtimes(&workflow, "dynamic_node");
    let plan = workflow
        .plan_deployment(&runtimes, u64::MAX / 2)
        .expect("solves")
        .expect("feasible");
    let catalog = Catalog::aws_like();
    for stage in &plan.stages {
        let instance = catalog.instance(&stage.instance).expect("catalog entry");
        let expected = match stage.kind {
            StageKind::Synthesis | StageKind::Sta => InstanceFamily::GeneralPurpose,
            StageKind::Placement | StageKind::Routing => InstanceFamily::MemoryOptimized,
        };
        assert_eq!(instance.family, expected, "{}", stage.kind);
    }
}

#[test]
fn dataset_to_predictor_to_plan() {
    // The full Figure-1 loop on a tiny corpus: build the dataset, train
    // the GCNs, predict an unseen design's runtimes, and plan its
    // deployment.
    let workflow = Workflow::with_defaults();
    let mut config = DatasetConfig::smoke();
    config.recipes = 2;
    let datasets = DatasetBuilder::new(&workflow).build(&config).expect("corpus");
    let mut trainer = Trainer::fast();
    trainer.epochs = 20;
    let predictors = StagePredictors::train(&datasets, &trainer).expect("training");

    // Unseen design: reuse a corpus sample's graphs as a stand-in
    // (prediction only needs structure).
    let predicted = predictors.predict_design(&datasets.synthesis[0], &datasets.routing[0]);
    assert_eq!(predicted.len(), 4);
    let problem = workflow.deployment_problem(&predicted).expect("problem");
    let budget = problem.min_total_runtime().max(1) * 4;
    let plan = workflow
        .plan_deployment(&predicted, budget)
        .expect("solves")
        .expect("feasible with slack");
    assert!(plan.total_runtime_secs <= budget);
}
