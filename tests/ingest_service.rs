//! Ingestion integration tests: the front door's fixture corpus flows
//! through `Workflow::ingest` deterministically (byte-identical runs,
//! worker-count invariance), malformed uploads come back as typed
//! positioned errors, and the CI smoke scenario
//! (`ingest --requests 64 --seed 7 --json`) is pinned against a
//! checked-in golden report.

use eda_cloud::core::{IngestScenario, Workflow};
use eda_cloud::gcn::ModelConfig;
use eda_cloud::ingest::{FrontDoor, FrontDoorConfig, IngestError};
use eda_cloud::serve::{ModelSnapshot, UploadDoc};

mod common;

fn seeded_snapshot(seed: u64) -> ModelSnapshot {
    ModelSnapshot::seeded(&ModelConfig::fast(), seed)
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let scenario = IngestScenario::new(32, 42);
    let snapshot = seeded_snapshot(42);
    let workflow = Workflow::with_defaults();
    let (a, a_out) = workflow.ingest(&scenario, &snapshot).expect("ingest run");
    let (b, b_out) = workflow.ingest(&scenario, &snapshot).expect("ingest run");
    assert_eq!(a.to_json(), b.to_json(), "same seed must replay exactly");
    assert_eq!(a_out, b_out);
}

#[test]
fn worker_count_cannot_change_the_report() {
    let snapshot = seeded_snapshot(9);
    let mut scenario = IngestScenario::new(24, 9);
    scenario.workers = 1;
    let workflow = Workflow::with_defaults();
    let (serial, serial_out) = workflow.ingest(&scenario, &snapshot).expect("ingest run");
    for workers in [2usize, 8] {
        scenario.workers = workers;
        let (parallel, parallel_out) = workflow.ingest(&scenario, &snapshot).expect("ingest run");
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "fingerprints and reports are worker-invariant ({workers} workers)"
        );
        assert_eq!(serial_out, parallel_out);
    }
}

#[test]
fn malformed_uploads_come_back_as_typed_positioned_errors() {
    let door = FrontDoor::with_pool_profile(FrontDoorConfig::default());
    let torn = UploadDoc::new("torn", "blif", ".model torn\n.inputs a\n.names a y\n1 ");
    match door.ingest_doc(&torn) {
        Err(IngestError::Parse { line, .. }) => assert!(line > 0, "positions are 1-based"),
        other => panic!("torn BLIF must fail to parse, got {other:?}"),
    }
    let alien = UploadDoc::new("alien", "edif", "(edif top)");
    assert!(matches!(
        door.ingest_doc(&alien),
        Err(IngestError::UnknownFormat { .. })
    ));
}

/// Golden report for the CI smoke scenario
/// (`ingest --requests 64 --seed 7 --json`). The run is a pure
/// function of the scenario, the fixture corpus, and the snapshot —
/// independent of worker count, build profile, and platform — so the
/// comparison is byte for byte. Regenerate with
/// `UPDATE_GOLDEN=1 cargo test --test ingest_service` if a deliberate
/// engine or parser change shifts it.
#[test]
fn golden_report_for_seed_7() {
    let scenario = IngestScenario::new(64, 7);
    let (report, _) = Workflow::with_defaults()
        .ingest(&scenario, &seeded_snapshot(7))
        .expect("ingest run");
    common::assert_golden(&report.to_json(), "golden/ingest_report.json");
}
