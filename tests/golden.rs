//! Golden regression tests: pinned counter signatures and MCKP
//! selections for two fixed designs.
//!
//! Every quantity here is fully deterministic (simulated counters, a
//! seeded verifier, and an exact knapsack solve), so any drift is a
//! behavior change in the flow engines, the machine model, or the
//! optimizer — not noise. If a change is intentional, regenerate the
//! constants by printing the same fields from a characterization run.

use eda_cloud::core::{CharacterizationConfig, CharacterizationReport, StageRuntimes, Workflow};
use eda_cloud::flow::StageKind;
use eda_cloud::netlist::generators;
use eda_cloud::netlist::Aig;
use eda_cloud::perf::CounterSet;

/// Pinned 1-vCPU counter signature of one stage.
struct StageSignature {
    kind: StageKind,
    instructions: u64,
    branches: u64,
    branch_misses: u64,
    cache_refs: u64,
    l1_misses: u64,
    llc_misses: u64,
    flops: u64,
    avx_ops: u64,
}

/// Pinned MCKP selection at one deadline.
struct PlanSignature {
    budget_secs: u64,
    /// Selected vCPUs in flow order (syn, place, route, sta).
    vcpus: [u32; 4],
    total_runtime_secs: u64,
    total_cost_usd: f64,
}

fn characterize(design: &Aig) -> CharacterizationReport {
    Workflow::with_defaults()
        .characterize_design(design, &CharacterizationConfig::paper())
        .expect("characterization runs")
}

fn assert_signatures(report: &CharacterizationReport, cells: usize, expected: &[StageSignature]) {
    assert_eq!(report.cells, cells, "{} cells", report.design);
    for sig in expected {
        let stage = report.stage(sig.kind).expect("stage swept");
        let c: &CounterSet = &stage.runs[0].report.counters;
        let label = format!("{} {}", report.design, sig.kind);
        assert_eq!(stage.runs[0].vcpus, 1, "{label}");
        assert_eq!(c.instructions, sig.instructions, "{label} instructions");
        assert_eq!(c.branches, sig.branches, "{label} branches");
        assert_eq!(c.branch_misses, sig.branch_misses, "{label} branch misses");
        assert_eq!(c.cache_refs, sig.cache_refs, "{label} cache refs");
        assert_eq!(c.l1_misses, sig.l1_misses, "{label} L1 misses");
        assert_eq!(c.llc_misses, sig.llc_misses, "{label} LLC misses");
        assert_eq!(c.flops, sig.flops, "{label} flops");
        assert_eq!(c.avx_ops, sig.avx_ops, "{label} AVX ops");
    }
}

fn assert_plans(report: &CharacterizationReport, expected: &[PlanSignature]) {
    let workflow = Workflow::with_defaults();
    let runtimes: Vec<StageRuntimes> = report
        .stages
        .iter()
        .map(|s| {
            let mut runtimes_secs = [0.0; 4];
            for (k, run) in s.runs.iter().enumerate() {
                runtimes_secs[k] = run.report.runtime_secs;
            }
            StageRuntimes { kind: s.kind, runtimes_secs }
        })
        .collect();
    for sig in expected {
        let plan = workflow
            .plan_deployment(&runtimes, sig.budget_secs)
            .expect("solver runs")
            .expect("budget feasible");
        let picks: Vec<u32> = plan.stages.iter().map(|s| s.vcpus).collect();
        let label = format!("{} @ {}s", report.design, sig.budget_secs);
        assert_eq!(picks, sig.vcpus, "{label} selection");
        assert_eq!(plan.total_runtime_secs, sig.total_runtime_secs, "{label} runtime");
        assert!(
            (plan.total_cost_usd - sig.total_cost_usd).abs() < 1e-6,
            "{label} cost: {} vs pinned {}",
            plan.total_cost_usd,
            sig.total_cost_usd
        );
    }
}

#[test]
fn dynamic_node_counters_and_selection_are_pinned() {
    let design = generators::openpiton_design("dynamic_node").expect("known design");
    let report = characterize(&design);
    assert_signatures(
        &report,
        578,
        &[
            StageSignature {
                kind: StageKind::Synthesis,
                instructions: 57_499,
                branches: 7_790,
                branch_misses: 712,
                cache_refs: 6_270,
                l1_misses: 199,
                llc_misses: 199,
                flops: 0,
                avx_ops: 0,
            },
            StageSignature {
                kind: StageKind::Placement,
                instructions: 2_365_042,
                branches: 335_107,
                branch_misses: 727,
                cache_refs: 651_622,
                l1_misses: 359_913,
                llc_misses: 3_574,
                flops: 0,
                avx_ops: 1_150_284,
            },
            StageSignature {
                kind: StageKind::Routing,
                instructions: 1_907_326,
                branches: 961_540,
                branch_misses: 166_603,
                cache_refs: 943_205,
                l1_misses: 302_188,
                llc_misses: 481,
                flops: 0,
                avx_ops: 0,
            },
            StageSignature {
                kind: StageKind::Sta,
                instructions: 61_093,
                branches: 16_889,
                branch_misses: 1_596,
                cache_refs: 15_892,
                l1_misses: 6_468,
                llc_misses: 2_213,
                flops: 10_404,
                avx_ops: 17_908,
            },
        ],
    );
    // The tightest deadline forces wide instances; relaxing it 1.77x
    // (the paper's loosest relative constraint) lets the solver drop to
    // cheap narrow ones.
    assert_plans(
        &report,
        &[
            PlanSignature {
                budget_secs: 119,
                vcpus: [8, 2, 8, 8],
                total_runtime_secs: 119,
                total_cost_usd: 0.028_953,
            },
            PlanSignature {
                budget_secs: 211,
                vcpus: [2, 1, 1, 1],
                total_runtime_secs: 157,
                total_cost_usd: 0.009_073,
            },
        ],
    );
}

#[test]
fn multiplier8_counters_and_selection_are_pinned() {
    let design = generators::multiplier(8);
    let report = characterize(&design);
    assert_signatures(
        &report,
        696,
        &[
            StageSignature {
                kind: StageKind::Synthesis,
                instructions: 54_103,
                branches: 7_354,
                branch_misses: 761,
                cache_refs: 5_514,
                l1_misses: 161,
                llc_misses: 161,
                flops: 0,
                avx_ops: 0,
            },
            StageSignature {
                kind: StageKind::Placement,
                instructions: 2_656_236,
                branches: 374_510,
                branch_misses: 803,
                cache_refs: 733_578,
                l1_misses: 396_330,
                llc_misses: 4_121,
                flops: 0,
                avx_ops: 1_265_552,
            },
            StageSignature {
                kind: StageKind::Routing,
                instructions: 1_112_915,
                branches: 556_225,
                branch_misses: 82_089,
                cache_refs: 554_777,
                l1_misses: 207_269,
                llc_misses: 390,
                flops: 0,
                avx_ops: 0,
            },
            StageSignature {
                kind: StageKind::Sta,
                instructions: 69_675,
                branches: 18_196,
                branch_misses: 1_386,
                cache_refs: 18_184,
                l1_misses: 7_389,
                llc_misses: 2_376,
                flops: 12_528,
                avx_ops: 20_767,
            },
        ],
    );
    assert_plans(
        &report,
        &[
            PlanSignature {
                budget_secs: 109,
                vcpus: [8, 2, 8, 2],
                total_runtime_secs: 109,
                total_cost_usd: 0.022_980,
            },
            PlanSignature {
                budget_secs: 193,
                vcpus: [2, 1, 1, 1],
                total_runtime_secs: 140,
                total_cost_usd: 0.008_673,
            },
        ],
    );
}
