//! Golden regression tests: pinned counter signatures and MCKP
//! selections for two fixed designs.
//!
//! Every quantity here is fully deterministic (simulated counters, a
//! seeded verifier, and an exact knapsack solve), so any drift is a
//! behavior change in the flow engines, the machine model, or the
//! optimizer — not noise. Each design's characterization renders to a
//! canonical text document compared byte for byte against
//! `tests/golden/characterization.txt`; if a change is intentional,
//! regenerate with `UPDATE_GOLDEN=1 cargo test --test golden` and
//! review the diff.

use eda_cloud::core::{
    CharacterizationConfig, CharacterizationReport, StageRuntimes, Workflow,
};
use eda_cloud::netlist::generators;
use eda_cloud::netlist::Aig;
use eda_cloud::perf::CounterSet;
use std::fmt::Write as _;

mod common;

fn characterize(design: &Aig) -> CharacterizationReport {
    Workflow::with_defaults()
        .characterize_design(design, &CharacterizationConfig::paper())
        .expect("characterization runs")
}

/// Render one design's 1-vCPU counter signatures plus the MCKP
/// selections at two deadlines into the canonical golden text.
fn render_signature(report: &CharacterizationReport, budgets: [u64; 2]) -> String {
    let mut out = String::new();
    writeln!(out, "design {} cells {}", report.design, report.cells).unwrap();
    for stage in &report.stages {
        let run = &stage.runs[0];
        assert_eq!(run.vcpus, 1, "{} {}: signature pins the 1-vCPU run", report.design, stage.kind);
        let c: &CounterSet = &run.report.counters;
        writeln!(
            out,
            "stage {} instructions {} branches {} branch_misses {} cache_refs {} \
             l1_misses {} llc_misses {} flops {} avx_ops {}",
            stage.kind,
            c.instructions,
            c.branches,
            c.branch_misses,
            c.cache_refs,
            c.l1_misses,
            c.llc_misses,
            c.flops,
            c.avx_ops,
        )
        .unwrap();
    }
    let workflow = Workflow::with_defaults();
    let runtimes: Vec<StageRuntimes> = report
        .stages
        .iter()
        .map(|s| {
            let mut runtimes_secs = [0.0; 4];
            for (k, run) in s.runs.iter().enumerate() {
                runtimes_secs[k] = run.report.runtime_secs;
            }
            StageRuntimes { kind: s.kind, runtimes_secs }
        })
        .collect();
    for budget_secs in budgets {
        let plan = workflow
            .plan_deployment(&runtimes, budget_secs)
            .expect("solver runs")
            .expect("budget feasible");
        let picks: Vec<String> = plan.stages.iter().map(|s| s.vcpus.to_string()).collect();
        writeln!(
            out,
            "plan budget {} vcpus {} runtime {} cost {:.6}",
            budget_secs,
            picks.join(","),
            plan.total_runtime_secs,
            plan.total_cost_usd,
        )
        .unwrap();
    }
    out
}

/// The two pinned designs. The tightest deadline forces wide
/// instances; relaxing it ~1.77x (the paper's loosest relative
/// constraint) lets the solver drop to cheap narrow ones.
fn characterization_document() -> String {
    let dynamic_node = generators::openpiton_design("dynamic_node").expect("known design");
    let mut doc = render_signature(&characterize(&dynamic_node), [119, 211]);
    doc.push('\n');
    doc.push_str(&render_signature(&characterize(&generators::multiplier(8)), [109, 193]));
    doc
}

#[test]
fn counters_and_selections_are_pinned() {
    common::assert_golden(&characterization_document(), "golden/characterization.txt");
}

#[test]
fn characterization_document_is_deterministic() {
    assert_eq!(characterization_document(), characterization_document());
}
