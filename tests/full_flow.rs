//! Cross-crate integration: the four-stage flow end to end.

use eda_cloud::flow::{run_full_flow, ExecContext, Recipe, StageKind};
use eda_cloud::netlist::generators;
use eda_cloud::tech::Library;

#[test]
fn full_flow_on_composite_design() {
    let design = generators::openpiton_design("dynamic_node").expect("known design");
    let ctx = ExecContext::with_vcpus(2);
    let out = run_full_flow(&design, &Recipe::balanced(), &ctx).expect("flow completes");

    // Synthesis produced a well-formed netlist of reasonable size.
    out.netlist.check().expect("netlist well-formed");
    assert!(out.netlist.cell_count() > 300);
    let stats = out.netlist.stats(&Library::synthetic_14nm());
    assert!(stats.area_um2 > 50.0);
    assert_eq!(stats.inputs, design.input_count());
    assert_eq!(stats.outputs, design.output_count());

    // Placement covers the die and reports a wirelength.
    assert_eq!(out.placement.x.len(), out.netlist.cell_count());
    assert!(out.placement.hpwl_um > 0.0);

    // Routing converged within tolerance.
    let edges = 2 * out.routing.grid * out.routing.grid;
    assert!(out.routing.wirelength > 0);
    assert!((out.routing.overflowed_edges as f64) <= 0.02 * edges as f64);

    // Timing is self-consistent.
    assert!(out.timing.critical_path_ps > 0.0);
    assert!(out.timing.endpoints >= out.netlist.primary_outputs().len());

    // Reports are in flow order with populated counters.
    let kinds: Vec<StageKind> = out.reports.iter().map(|r| r.kind).collect();
    assert_eq!(kinds, StageKind::ALL.to_vec());
    for report in &out.reports {
        assert!(report.runtime_secs > 0.0, "{}", report.kind);
        assert!(report.counters.instructions > 0, "{}", report.kind);
    }
}

#[test]
fn flow_preserves_function_through_synthesis() {
    // The synthesized netlist must compute the same function as the AIG
    // for a non-trivial design (verification is also run inside the
    // synthesizer; this exercises it through the public API with
    // explicit vectors).
    let design = generators::alu(6);
    let ctx = ExecContext::with_vcpus(1);
    let out = run_full_flow(&design, &Recipe::balanced(), &ctx).expect("flow completes");
    let n = design.input_count();
    for seed in 0..16u64 {
        let inputs: Vec<bool> = (0..n)
            .map(|i| (seed.wrapping_mul(0x9E37_79B9) >> (i % 60)) & 1 == 1)
            .collect();
        assert_eq!(
            out.netlist.simulate(&inputs).expect("netlist sim"),
            design.simulate(&inputs).expect("aig sim"),
            "mismatch on vector {seed}"
        );
    }
}

#[test]
fn counter_signatures_match_the_paper_ordering() {
    // Fig. 2's qualitative claims on a mid-size design:
    // routing has the highest branch-miss rate; placement the highest
    // AVX share; placement/routing are the memory-hungry stages.
    let design = generators::openpiton_design("aes").expect("known design");
    let ctx = ExecContext::with_vcpus(1);
    let out = run_full_flow(&design, &Recipe::balanced(), &ctx).expect("flow completes");
    let by_kind = |k: StageKind| {
        out.reports
            .iter()
            .find(|r| r.kind == k)
            .expect("report exists")
    };
    let routing = by_kind(StageKind::Routing);
    let placement = by_kind(StageKind::Placement);
    let synthesis = by_kind(StageKind::Synthesis);
    let sta = by_kind(StageKind::Sta);

    // (a) routing mispredicts the most.
    assert!(
        routing.counters.branch_miss_rate() > placement.counters.branch_miss_rate(),
        "routing {} vs placement {}",
        routing.counters.branch_miss_rate(),
        placement.counters.branch_miss_rate()
    );
    assert!(routing.counters.branch_miss_rate() > sta.counters.branch_miss_rate());

    // (c) placement leads in AVX share; STA is second; synthesis and
    // routing emit (near) zero vector FP.
    let avx_density = |r: &eda_cloud::flow::StageReport| {
        r.counters.avx_share() * r.counters.fp_instruction_share()
    };
    assert!(avx_density(placement) > avx_density(sta));
    assert!(avx_density(sta) > avx_density(synthesis));
    assert!(avx_density(sta) > avx_density(routing));

    // (d) routing has the largest parallel fraction.
    assert!(routing.parallel_fraction > synthesis.parallel_fraction);
    assert!(routing.parallel_fraction > sta.parallel_fraction);
}
