//! Recipe-subsystem integration tests: the joint recipe × VM pipeline
//! (MCTS search → hybrid predictor → `PlanRecipe` through the serving
//! tier) is byte-identical at any worker count, the CI smoke scenario
//! (`recipe --seed 7`) is pinned against a checked-in golden report,
//! and property tests assert search determinism and evaluation-cache
//! transparency over random seeds.

use eda_cloud::core::{RecipeScenario, Workflow};
use eda_cloud::netlist::generators;
use eda_cloud::recipe::{EvalCache, NoRecipeFaults, RecipeSearch, SearchConfig};
use proptest::prelude::*;

mod common;

#[test]
fn worker_count_cannot_change_the_report() {
    let workflow = Workflow::with_defaults();
    let mut scenario = RecipeScenario::new(7);
    scenario.designs = vec!["adder".into(), "parity".into()];
    scenario.size = 4;
    scenario.iters = 12;
    let serial = workflow.recipe(&scenario).expect("serial run");
    for workers in [2usize, 8] {
        scenario.workers = workers;
        let wide = workflow.recipe(&scenario).expect("parallel run");
        assert_eq!(
            serial.to_json(),
            wide.to_json(),
            "{workers} workers drifted from the serial report"
        );
    }
}

#[test]
fn seed7_smoke_scenario_matches_golden() {
    // Exactly the CI smoke invocation: `recipe --seed 7 --json`.
    let report = Workflow::with_defaults()
        .recipe(&RecipeScenario::new(7))
        .expect("seed-7 pipeline");
    assert!(
        report.improved_designs() >= 1,
        "the searched recipe should beat the default on at least one design family"
    );
    assert!(
        report.designs.iter().all(|d| d.plan.is_some()),
        "every design should receive a joint recipe × VM plan"
    );
    common::assert_golden(&report.to_json(), "golden/recipe_report.json");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same seed ⇒ identical search outcome at 1, 2, and 8 workers:
    /// threads only parallelize the pure evaluations inside a batch.
    #[test]
    fn search_is_deterministic_across_worker_counts(seed in 0u64..1000, iters in 4u64..20) {
        let aig = generators::build_family("parity", 4).expect("known family");
        let base = SearchConfig { iters, seed, workers: 1, ..SearchConfig::default() };
        let serial = RecipeSearch::new(base.clone()).run("parity_4", &aig).expect("search");
        for workers in [2usize, 8] {
            let wide = RecipeSearch::new(SearchConfig { workers, ..base.clone() })
                .run("parity_4", &aig)
                .expect("search");
            prop_assert_eq!(&serial, &wide);
        }
    }

    /// A pre-warmed shared cache is transparent: the tree, incumbent,
    /// and trajectory never move — only the miss/hit split does, and
    /// misses + hits is conserved.
    #[test]
    fn evaluation_cache_is_transparent(seed in 0u64..1000) {
        let aig = generators::build_family("adder", 4).expect("known family");
        let search = RecipeSearch::new(SearchConfig {
            iters: 10,
            seed,
            ..SearchConfig::default()
        });
        let cold = search.run("adder_4", &aig).expect("cold search");

        let mut cache = EvalCache::new();
        let first = search
            .run_with("adder_4", &aig, &NoRecipeFaults, &mut cache)
            .expect("first warm-up run");
        let warm = search
            .run_with("adder_4", &aig, &NoRecipeFaults, &mut cache)
            .expect("fully warmed run");

        prop_assert_eq!(&first, &cold);
        prop_assert_eq!(&warm.best_key, &cold.best_key);
        prop_assert_eq!(warm.best, cold.best);
        prop_assert_eq!(&warm.tree, &cold.tree);
        prop_assert_eq!(&warm.trajectory, &cold.trajectory);
        prop_assert_eq!(warm.evaluations, 0, "a warmed cache serves every candidate");
        prop_assert_eq!(
            warm.evaluations + warm.cache_hits,
            cold.evaluations + cold.cache_hits
        );
    }
}
