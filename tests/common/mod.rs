//! Shared helpers for the workspace integration tests.

use std::fs;
use std::path::PathBuf;

/// Compare `actual` against the checked-in golden file at
/// `tests/<rel_path>`, byte for byte modulo a trailing newline.
///
/// Run with `UPDATE_GOLDEN=1` to rewrite the file from the current
/// behavior instead of comparing — then review the diff like any other
/// behavioral change:
///
/// ```sh
/// UPDATE_GOLDEN=1 cargo test --test <name>
/// ```
///
/// # Panics
///
/// Panics when the golden file is missing (and `UPDATE_GOLDEN` is not
/// set), unreadable, or differs from `actual`.
#[allow(dead_code)] // Each integration-test crate uses its own copy.
pub fn assert_golden(actual: &str, rel_path: &str) {
    let path: PathBuf = [env!("CARGO_MANIFEST_DIR"), "tests", rel_path].iter().collect();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        let mut contents = actual.trim_end().to_owned();
        contents.push('\n');
        fs::write(&path, contents)
            .unwrap_or_else(|e| panic!("failed to update golden {}: {e}", path.display()));
        eprintln!("updated golden {}", path.display());
        return;
    }
    let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "failed to read golden {}: {e}; generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual.trim_end(),
        golden.trim_end(),
        "output drifted from tests/{rel_path}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 (see tests/golden/README.md) and review the diff"
    );
}
