//! Determinism guarantees: every pipeline stage is bit-reproducible
//! given the same inputs — a requirement for reproducible experiments.

use eda_cloud::core::dataset::{DatasetBuilder, DatasetConfig};
use eda_cloud::core::{CharacterizationConfig, Workflow};
use eda_cloud::flow::{run_full_flow, ExecContext, Recipe};
use eda_cloud::gcn::{DatasetSplit, Trainer};
use eda_cloud::netlist::generators;

#[test]
fn full_flow_is_deterministic() {
    let design = generators::openpiton_design("dynamic_node").expect("known design");
    let ctx = ExecContext::with_vcpus(4);
    let a = run_full_flow(&design, &Recipe::balanced(), &ctx).expect("flow");
    let b = run_full_flow(&design, &Recipe::balanced(), &ctx).expect("flow");
    assert_eq!(a.netlist.cell_count(), b.netlist.cell_count());
    assert_eq!(a.placement.x, b.placement.x);
    assert_eq!(a.routing.wirelength, b.routing.wirelength);
    assert_eq!(a.timing.critical_path_ps, b.timing.critical_path_ps);
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.counters, rb.counters, "{} counters", ra.kind);
        assert_eq!(ra.runtime_secs, rb.runtime_secs, "{} runtime", ra.kind);
    }
}

#[test]
fn characterization_is_deterministic() {
    let workflow = Workflow::with_defaults();
    let design = generators::adder(10);
    let cfg = CharacterizationConfig::fast();
    let a = workflow.characterize_design(&design, &cfg).expect("runs");
    let b = workflow.characterize_design(&design, &cfg).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn training_is_deterministic() {
    let workflow = Workflow::with_defaults();
    let mut cfg = DatasetConfig::smoke();
    cfg.families = vec!["adder".into(), "parity".into()];
    cfg.recipes = 2;
    let data = DatasetBuilder::new(&workflow).build(&cfg).expect("corpus");
    let mut trainer = Trainer::fast();
    trainer.epochs = 10;
    let split = DatasetSplit::by_design(&data.routing, 0.3, 1);
    let a = trainer.fit(&data.routing, &split);
    let b = trainer.fit(&data.routing, &split);
    assert_eq!(a.report.epoch_losses, b.report.epoch_losses);
    assert_eq!(a.report.test_errors, b.report.test_errors);
}

#[test]
fn characterization_is_identical_across_worker_counts() {
    // The sweep engine's canonical (index-keyed) reduction contract:
    // fanning the vCPU sweep out over 4 workers produces output
    // bit-identical to the serial (1-worker) sweep.
    let workflow = Workflow::with_defaults();
    let design = generators::openpiton_design("dynamic_node").expect("known design");
    let cfg = CharacterizationConfig::paper();
    let serial = workflow
        .characterize_design(&design, &cfg.clone().with_workers(1))
        .expect("serial sweep");
    for workers in [2, 4] {
        let parallel = workflow
            .characterize_design(&design, &cfg.clone().with_workers(workers))
            .expect("parallel sweep");
        assert_eq!(serial, parallel, "workers={workers}");
    }
}

#[test]
fn dataset_build_is_identical_across_worker_counts() {
    // Corpus entries are reduced in canonical (family, size, recipe)
    // order, so the corpus must not depend on the worker count either.
    let workflow = Workflow::with_defaults();
    let cfg = DatasetConfig::smoke();
    let serial = DatasetBuilder::new(&workflow)
        .build(&cfg.clone().with_workers(1))
        .expect("serial corpus");
    let parallel = DatasetBuilder::new(&workflow)
        .build(&cfg.with_workers(4))
        .expect("parallel corpus");
    assert_eq!(serial, parallel);
}

#[test]
fn generators_are_stable_across_calls() {
    for name in generators::FAMILY_NAMES {
        let a = generators::build_family(name, 5).expect("family");
        let b = generators::build_family(name, 5).expect("family");
        assert_eq!(a.node_count(), b.node_count(), "{name}");
        assert_eq!(a.outputs(), b.outputs(), "{name}");
    }
}
