//! Multi-region engine integration tests: the golden seed-7
//! `RegionReport` is pinned byte-for-byte, the same report survives any
//! worker/shard fan-out (the CI diff step pins the same contract on the
//! `regions` binary), and fair-share admission bounds a bursting tenant
//! while its neighbors ride out the storm untouched.

use eda_cloud::engine::{RegionJob, RegionSim, RegionSimConfig};

mod common;

fn ci_config() -> RegionSimConfig {
    // Mirrors the CI smoke scenario:
    // `regions --regions 3 --tenants 4 --jobs 200 --seed 7`.
    RegionSimConfig { seed: 7, regions: 3, tenants: 4, jobs: 200, ..Default::default() }
}

#[test]
fn golden_region_report_for_seed_7() {
    let report = RegionSim::run(&ci_config(), 1, 1).expect("multi-region run");
    common::assert_golden(&report.to_json(), "golden/region_report.json");
}

#[test]
fn report_is_byte_identical_across_worker_and_shard_counts() {
    let config = ci_config();
    let baseline = RegionSim::run(&config, 1, 1).expect("runs").to_json();
    for workers in [2usize, 4, 8] {
        for shards in [1usize, 2, 3] {
            let json = RegionSim::run(&config, workers, shards).expect("runs").to_json();
            assert_eq!(baseline, json, "workers={workers} shards={shards}");
        }
    }
}

#[test]
fn overload_burst_is_bounded_to_the_tenants_share() {
    let config = RegionSimConfig {
        regions: 1,
        tenants: 4,
        migrate_threshold: u32::MAX,
        queue_capacity: 16,
        tenant_quota: 32,
        rollout_waves: 0,
        ..Default::default()
    };
    // Tenant 0 bursts 80 jobs at t=0; the rest trickle in afterwards.
    let mut jobs: Vec<RegionJob> = (0..80)
        .map(|i| RegionJob {
            arrival_us: 0,
            region: 0,
            tenant: 0,
            service_us: 40_000,
            design: i % 8,
            update: false,
        })
        .collect();
    for i in 0..9u64 {
        jobs.push(RegionJob {
            arrival_us: 2_000_000 + i * 50_000,
            region: 0,
            tenant: 1 + (i % 3) as u32,
            service_us: 40_000,
            design: i % 8,
            update: false,
        });
    }
    let report = RegionSim::run_with(
        &config,
        &jobs,
        std::sync::Arc::new(eda_cloud::engine::NoEngineFaults),
        1,
        1,
    )
    .expect("runs");
    let t0 = &report.tenants[0];
    assert_eq!(t0.submitted, 80);
    // Equal weights over capacity 16: tenant 0's share bound is 4.
    assert!(t0.quota_rejected > 0, "the burst must hit the share bound: {t0:?}");
    assert_eq!(
        t0.admitted + t0.quota_rejected + t0.shed,
        t0.submitted,
        "every burst job is accounted: {t0:?}"
    );
    for t in 1..4 {
        let u = &report.tenants[t];
        assert_eq!(u.quota_rejected, 0, "tenant {t} was never squeezed: {u:?}");
        assert_eq!(u.served, u.submitted, "tenant {t} fully served: {u:?}");
    }
}
