//! Golden-file test for the deterministic trace subsystem.
//!
//! The span trace of a fleet run is a pure function of the scenario:
//! span identity comes from canonical job indices and logical child
//! ordinals, never from thread scheduling, so the drained JSON must be
//! byte-identical across worker counts, across repeated runs, and
//! against the checked-in golden file. If an intentional change to the
//! simulator or the tracer shifts the trace, regenerate the golden with
//! the command in `tests/golden/README.md`.

use eda_cloud_core::{FleetScenario, Workflow};
use eda_cloud_trace::Tracer;

mod common;

/// The scenario pinned by `tests/golden/fleet_trace.json`.
fn golden_scenario(workers: usize) -> FleetScenario {
    let mut scenario = FleetScenario::new(6, 11);
    scenario.workers = workers;
    scenario
}

fn traced_fleet_json(workers: usize) -> String {
    let tracer = Tracer::new();
    Workflow::with_defaults()
        .with_tracer(tracer.clone())
        .simulate_fleet(&golden_scenario(workers))
        .expect("fleet simulation");
    tracer.drain().to_json()
}

#[test]
fn fleet_trace_is_byte_identical_across_worker_counts() {
    let serial = traced_fleet_json(1);
    assert_eq!(serial, traced_fleet_json(2), "1 vs 2 workers");
    assert_eq!(serial, traced_fleet_json(8), "1 vs 8 workers");
}

#[test]
fn fleet_trace_is_byte_identical_across_runs() {
    assert_eq!(traced_fleet_json(4), traced_fleet_json(4));
}

#[test]
fn fleet_trace_matches_checked_in_golden() {
    common::assert_golden(&traced_fleet_json(2), "golden/fleet_trace.json");
}

#[test]
fn chrome_trace_is_derived_deterministically() {
    let chrome = |workers: usize| {
        let tracer = Tracer::new();
        Workflow::with_defaults()
            .with_tracer(tracer.clone())
            .simulate_fleet(&golden_scenario(workers))
            .expect("fleet simulation");
        tracer.drain().to_chrome_json()
    };
    let serial = chrome(1);
    assert_eq!(serial, chrome(8));
    assert!(serial.contains("\"traceEvents\""));
}
