//! Serving-tier integration tests: same-seed runs are byte-identical
//! (including across inference worker counts), model snapshots
//! round-trip through their text format without disturbing a single
//! byte of the report, overload sheds requests instead of stalling the
//! stream, and the CI smoke scenario (`serve --requests 64 --seed 7`)
//! is pinned against a checked-in golden report.

use eda_cloud::core::{ServeScenario, Workflow, WorkflowPlanner};
use eda_cloud::gcn::ModelConfig;
use eda_cloud::serve::{ModelSnapshot, RequestOutcome, ServeConfig, ServeReport, Server};

mod common;

fn seeded_snapshot(seed: u64) -> ModelSnapshot {
    ModelSnapshot::seeded(&ModelConfig::fast(), seed)
}

fn run(scenario: &ServeScenario, snapshot: &ModelSnapshot) -> (ServeReport, Vec<RequestOutcome>) {
    Workflow::with_defaults()
        .serve(scenario, snapshot)
        .expect("serving run")
}

#[test]
fn same_seed_reports_are_byte_identical() {
    let scenario = ServeScenario::new(32, 42);
    let snapshot = seeded_snapshot(42);
    let (a, a_out) = run(&scenario, &snapshot);
    let (b, b_out) = run(&scenario, &snapshot);
    assert_eq!(a.to_json(), b.to_json(), "same seed must replay exactly");
    assert_eq!(a_out, b_out);
}

#[test]
fn inference_worker_count_cannot_change_the_report() {
    let snapshot = seeded_snapshot(9);
    let mut scenario = ServeScenario::new(24, 9);
    scenario.workers = 1;
    let (serial, serial_out) = run(&scenario, &snapshot);
    for workers in [2usize, 8] {
        scenario.workers = workers;
        let (parallel, parallel_out) = run(&scenario, &snapshot);
        assert_eq!(
            serial.to_json(),
            parallel.to_json(),
            "stage-indexed join makes the fan-out invisible ({workers} workers)"
        );
        assert_eq!(serial_out, parallel_out);
    }
}

#[test]
fn snapshot_text_round_trip_preserves_the_report() {
    let scenario = ServeScenario::new(24, 5);
    let snapshot = seeded_snapshot(5);
    let reloaded = ModelSnapshot::from_text(&snapshot.to_text()).expect("canonical text parses");
    let (original, _) = run(&scenario, &snapshot);
    let (roundtrip, _) = run(&scenario, &reloaded);
    assert_eq!(
        original.to_json(),
        roundtrip.to_json(),
        "snapshot serialization must not perturb any prediction"
    );
}

#[test]
fn overload_sheds_requests_instead_of_stalling() {
    let mut scenario = ServeScenario::new(128, 7);
    scenario.rate_per_sec = 5_000.0;
    let workflow = Workflow::with_defaults();
    let requests = workflow.serve_workload(&scenario);
    let config = ServeConfig {
        max_batch: 4,
        queue_capacity: 8,
        ..ServeConfig::default()
    };
    let server = Server::new(
        seeded_snapshot(7),
        Box::new(WorkflowPlanner::new(workflow.clone())),
        config,
    );
    let (report, outcomes) = server.run(scenario.seed, &requests).expect("overloaded run");
    assert!(report.counters.shed > 0, "burst must shed load");
    assert_eq!(
        report.counters.shed + report.counters.completed,
        report.counters.requests,
        "every request is either served or shed, never lost"
    );
    assert!(outcomes
        .iter()
        .any(|o| matches!(o, RequestOutcome::Shed { .. })));
}

/// Golden report for the CI smoke scenario
/// (`serve --requests 64 --seed 7 --json`). The serving tier's output
/// is a pure function of the scenario and the snapshot — independent
/// of worker count, build profile, and platform — so the comparison is
/// byte for byte. Regenerate with `UPDATE_GOLDEN=1 cargo test --test
/// serve_service` if a deliberate engine change shifts it.
#[test]
fn golden_report_for_seed_7() {
    let scenario = ServeScenario::new(64, 7);
    let (report, _) = run(&scenario, &seeded_snapshot(7));
    common::assert_golden(&report.to_json(), "golden/serve_report.json");
}
