//! Property-based tests over the core substrates.

use eda_cloud::flow::{ExecContext, Recipe, Synthesizer};
use eda_cloud::gcn::{Matrix, SparseMatrix};
use eda_cloud::mckp::{baselines, Choice, Problem, Solver, Stage};
use eda_cloud::netlist::{formats, generators, Aig};
use proptest::prelude::*;

fn bits(v: u64, w: u32) -> Vec<bool> {
    (0..w).map(|i| (v >> i) & 1 == 1).collect()
}

fn to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generated ripple adder matches machine arithmetic for any
    /// operands at any width.
    #[test]
    fn adder_matches_u64(w in 2u32..12, a in 0u64..4096, b in 0u64..4096) {
        let a = a & ((1 << w) - 1);
        let b = b & ((1 << w) - 1);
        let aig = generators::adder(w);
        let mut inputs = bits(a, w);
        inputs.extend(bits(b, w));
        let out = aig.simulate(&inputs).expect("arity");
        prop_assert_eq!(to_u64(&out), a + b);
    }

    /// The array multiplier matches machine arithmetic.
    #[test]
    fn multiplier_matches_u64(w in 2u32..8, a in 0u64..256, b in 0u64..256) {
        let a = a & ((1 << w) - 1);
        let b = b & ((1 << w) - 1);
        let aig = generators::multiplier(w);
        let mut inputs = bits(a, w);
        inputs.extend(bits(b, w));
        let out = aig.simulate(&inputs).expect("arity");
        prop_assert_eq!(to_u64(&out), a * b);
    }

    /// Word-parallel simulation agrees with scalar simulation on random
    /// designs and patterns.
    #[test]
    fn word_sim_matches_scalar(seed in 0u64..500, gates in 20u32..120) {
        let aig = generators::ctrl(seed, gates);
        let n = aig.input_count();
        let words: Vec<u64> = (0..n).map(|i| seed.wrapping_mul(i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let word_out = aig.simulate_words(&words).expect("arity");
        for bit in [0usize, 17, 63] {
            let scalar_in: Vec<bool> = words.iter().map(|w| (w >> bit) & 1 == 1).collect();
            let scalar_out = aig.simulate(&scalar_in).expect("arity");
            for (wo, so) in word_out.iter().zip(&scalar_out) {
                prop_assert_eq!((wo >> bit) & 1 == 1, *so);
            }
        }
    }

    /// AAG round-trip preserves structure and function for random
    /// control-logic designs.
    #[test]
    fn aag_roundtrip(seed in 0u64..300, gates in 10u32..80) {
        let aig = generators::ctrl(seed, gates);
        let text = formats::write_aag(&aig);
        let back = formats::read_aag(&text).expect("parse own output");
        prop_assert_eq!(back.and_count(), aig.and_count());
        prop_assert_eq!(back.input_count(), aig.input_count());
        let inputs: Vec<bool> = (0..aig.input_count()).map(|i| (seed >> (i % 60)) & 1 == 1).collect();
        prop_assert_eq!(back.simulate(&inputs).expect("sim"), aig.simulate(&inputs).expect("sim"));
    }

    /// Every synthesis recipe preserves the function of random designs
    /// (checked against 8 random vectors; the synthesizer also verifies
    /// internally).
    #[test]
    fn synthesis_preserves_function(seed in 0u64..60) {
        let aig = generators::ctrl(seed, 80);
        let recipes = Recipe::standard_suite();
        let recipe = &recipes[(seed as usize) % recipes.len()];
        let ctx = ExecContext::with_vcpus(1);
        let (netlist, _) = Synthesizer::new()
            .run(&aig, recipe, &ctx)
            .expect("synthesis succeeds");
        for k in 0..8u64 {
            let inputs: Vec<bool> = (0..aig.input_count())
                .map(|i| (seed.wrapping_add(k).wrapping_mul(0x2545_F491_4F6C_DD1D) >> (i % 60)) & 1 == 1)
                .collect();
            prop_assert_eq!(
                netlist.simulate(&inputs).expect("netlist sim"),
                aig.simulate(&inputs).expect("aig sim")
            );
        }
    }

    /// The MCKP dynamic program is optimal: it matches exhaustive search
    /// on random instances (and agrees on feasibility).
    #[test]
    fn mckp_dp_is_optimal(
        seed in 0u64..400,
        stages in 2usize..5,
        choices in 2usize..5,
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            s >> 33
        };
        let problem = Problem::new(
            (0..stages)
                .map(|i| {
                    Stage::new(
                        format!("s{i}"),
                        (0..choices)
                            .map(|j| {
                                Choice::new(
                                    format!("c{j}"),
                                    10 + next() % 90,
                                    0.01 + (next() % 100) as f64 / 100.0,
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
        .expect("valid problem");
        let budget = 30 + next() % 300;
        let dp = Solver::new().solve_min_cost(&problem, budget);
        let brute = baselines::exhaustive_min_cost(&problem, budget);
        prop_assert_eq!(dp.is_some(), brute.is_some());
        if let (Some(dp), Some(brute)) = (dp, brute) {
            prop_assert!(dp.total_runtime_secs <= budget);
            prop_assert!((dp.total_cost_usd - brute.total_cost_usd).abs() < 1e-9,
                "dp {} vs brute {}", dp.total_cost_usd, brute.total_cost_usd);
        }
    }

    /// Sparse × dense equals dense × dense for random sparse matrices.
    #[test]
    fn spmm_matches_dense(rows in 1usize..8, cols in 1usize..8, seed in 0u64..200) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            ((s >> 33) % 1000) as f64 / 250.0 - 2.0
        };
        // Random sparse A (keep ~40% density) and dense X.
        let mut triplets = Vec::new();
        let mut dense_a = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                let v = next();
                if v > 0.4 {
                    triplets.push((r as u32, c as u32, v));
                    dense_a.set(r, c, v);
                }
            }
        }
        let a = SparseMatrix::from_triplets(rows, cols, &triplets);
        let x_cols = 3;
        let mut x = Matrix::zeros(cols, x_cols);
        for r in 0..cols {
            for c in 0..x_cols {
                x.set(r, c, next());
            }
        }
        let sparse = a.matmul(&x);
        let dense = dense_a.matmul(&x);
        for r in 0..rows {
            for c in 0..x_cols {
                prop_assert!((sparse.get(r, c) - dense.get(r, c)).abs() < 1e-9);
            }
        }
    }

    /// Structural hashing keeps AIGs canonical: rebuilding any design
    /// through `and2` never grows the node count.
    #[test]
    fn strash_never_grows(seed in 0u64..200) {
        let aig = generators::ctrl(seed, 100);
        let mut rebuilt = Aig::new("rebuilt");
        let mut map = Vec::with_capacity(aig.node_count());
        for node in aig.nodes() {
            let lit = match node {
                eda_cloud::netlist::AigNode::Const0 => eda_cloud::netlist::Lit::FALSE,
                eda_cloud::netlist::AigNode::Pi(_) => rebuilt.add_pi(),
                eda_cloud::netlist::AigNode::And(a, b) => {
                    let la: eda_cloud::netlist::Lit = map[a.node() as usize];
                    let lb: eda_cloud::netlist::Lit = map[b.node() as usize];
                    rebuilt.and2(
                        la.complement_if(a.is_complemented()),
                        lb.complement_if(b.is_complemented()),
                    )
                }
            };
            map.push(lit);
        }
        prop_assert!(rebuilt.and_count() <= aig.and_count());
    }
}
