//! Runtime prediction: train the per-stage GCNs on a generated corpus
//! and predict the runtime of an *unseen* design — the paper's Problem 2
//! as a downstream user would exercise it.
//!
//! ```text
//! cargo run --example runtime_prediction --release
//! ```

use eda_cloud::core::dataset::{DatasetBuilder, DatasetConfig};
use eda_cloud::core::predict::StagePredictors;
use eda_cloud::core::Workflow;
use eda_cloud::flow::{ExecContext, Placer, Recipe, StageKind, Synthesizer};
use eda_cloud::gcn::{GraphSample, Trainer};
use eda_cloud::netlist::{generators, DesignGraph};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let workflow = Workflow::with_defaults();

    // 1. Corpus: a handful of design families under several synthesis
    //    recipes (a slice of the paper's 330-netlist dataset).
    let mut config = DatasetConfig::smoke();
    config.families = vec![
        "adder".into(),
        "multiplier".into(),
        "parity".into(),
        "alu".into(),
        "max".into(),
        "gray2bin".into(),
    ];
    config.sizes = vec![4, 8];
    config.recipes = 4;
    eprintln!("building a {}-netlist corpus ...", config.netlist_count());
    let datasets = DatasetBuilder::new(&workflow).build(&config)?;

    // 2. Train one GCN per stage (fast recipe for the example).
    eprintln!("training per-stage predictors ...");
    let predictors = StagePredictors::train(&datasets, &Trainer::fast())?;
    for kind in StageKind::ALL {
        let r = &predictors.stage(kind).report;
        println!(
            "{:<9} test error {:.1}%  (accuracy {:.1}%)",
            kind.to_string(),
            100.0 * r.mean_error,
            100.0 * r.accuracy()
        );
    }

    // 3. Predict a design the corpus has never seen: a comparator.
    let unseen = generators::comparator(12);
    let ctx = ExecContext::with_vcpus(1);
    let (netlist, _) = Synthesizer::new()
        .with_verification(false)
        .run(&unseen, &Recipe::balanced(), &ctx)?;
    let aig_sample = GraphSample::new(&DesignGraph::from_aig(&unseen), [1.0; 4]);
    let nl_sample = GraphSample::new(&DesignGraph::from_netlist(&netlist), [1.0; 4]);
    let predicted = predictors.predict_design(&aig_sample, &nl_sample);

    println!("\npredicted runtimes for unseen `{}`:", unseen.name());
    for sr in &predicted {
        println!(
            "  {:<9} {:>8.3}s @1v  {:>8.3}s @2v  {:>8.3}s @4v  {:>8.3}s @8v",
            sr.kind.to_string(),
            sr.runtimes_secs[0],
            sr.runtimes_secs[1],
            sr.runtimes_secs[2],
            sr.runtimes_secs[3]
        );
    }

    // 4. Compare against ground truth (run the actual flow).
    let (placement, place_rep) = Placer::new().run(&netlist, &ctx)?;
    let (_, route_rep) =
        eda_cloud::flow::Router::new().run(&netlist, &placement, &ctx)?;
    println!(
        "\nmeasured @1v: placement {:.3}s (predicted {:.3}s), routing {:.3}s (predicted {:.3}s)",
        place_rep.runtime_secs,
        predicted[1].runtimes_secs[0],
        route_rep.runtime_secs,
        predicted[2].runtimes_secs[0],
    );
    Ok(())
}
