//! Quickstart: run the full EDA-on-cloud workflow on one design.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! Steps mirror the paper's Figure 1: generate a design, characterize
//! the four flow stages on the recommended instance families, then pick
//! the cheapest deployment that meets a deadline.

use eda_cloud::core::{CharacterizationConfig, StageRuntimes, Workflow};
use eda_cloud::netlist::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A design: the AES-like OpenPiton composite (a few thousand
    //    cells once synthesized).
    let design = generators::openpiton_design("aes").expect("built-in design");
    println!("design: {design}");

    // 2. Characterize synthesis / placement / routing / STA at 1-8
    //    vCPUs on each stage's recommended instance family.
    let workflow = Workflow::with_defaults();
    let report = workflow.characterize_design(&design, &CharacterizationConfig::paper())?;
    println!("\nper-stage runtimes (simulated seconds):");
    for stage in &report.stages {
        let times: Vec<String> = stage
            .runs
            .iter()
            .map(|r| format!("{:.2}s@{}v", r.report.runtime_secs, r.vcpus))
            .collect();
        println!("  {:<9} on {:<16} {}", stage.kind.to_string(), stage.family, times.join("  "));
    }

    // 3. Optimize the deployment under a deadline: 25% slack over the
    //    fastest possible schedule.
    let runtimes: Vec<StageRuntimes> = report
        .stages
        .iter()
        .map(|s| {
            let mut runtimes_secs = [0.0; 4];
            for (k, run) in s.runs.iter().take(4).enumerate() {
                runtimes_secs[k] = run.report.runtime_secs;
            }
            StageRuntimes {
                kind: s.kind,
                runtimes_secs,
            }
        })
        .collect();
    let problem = workflow.deployment_problem(&runtimes)?;
    let deadline = (problem.min_total_runtime() as f64 * 1.25).round() as u64;
    let plan = workflow
        .plan_deployment(&runtimes, deadline)?
        .expect("a 25%-slack deadline is always feasible");

    println!("\ndeployment plan for a {deadline}s deadline:");
    for stage in &plan.stages {
        println!(
            "  {:<9} -> {:<10} ({} vCPUs): {}s, ${:.4}",
            stage.kind.to_string(),
            stage.instance,
            stage.vcpus,
            stage.runtime_secs,
            stage.cost_usd
        );
    }
    println!(
        "total: {}s, ${:.4}  (saves {:.1}% vs over-provisioning)",
        plan.total_runtime_secs,
        plan.total_cost_usd,
        100.0 * plan.savings.saving_vs_over
    );
    Ok(())
}
