//! Deadline planner: sweep tapeout deadlines for a design and show how
//! the optimizer trades money for time — the paper's Problem 3 from an
//! EDA team's point of view ("we must finish the flow by Friday; what is
//! the cheapest set of machines?").
//!
//! ```text
//! cargo run --example deadline_planner --release
//! cargo run --example deadline_planner --release -- fpu
//! ```

use eda_cloud::core::report::render_table;
use eda_cloud::core::{CharacterizationConfig, StageRuntimes, Workflow};
use eda_cloud::netlist::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "aes".to_owned());
    let design = generators::openpiton_design(&name)
        .unwrap_or_else(|| panic!("unknown design `{name}`"));
    println!("planning deployments for `{name}`");

    let workflow = Workflow::with_defaults();
    let report = workflow.characterize_design(&design, &CharacterizationConfig::paper())?;
    let runtimes: Vec<StageRuntimes> = report
        .stages
        .iter()
        .map(|s| {
            let mut runtimes_secs = [0.0; 4];
            for (k, run) in s.runs.iter().take(4).enumerate() {
                runtimes_secs[k] = run.report.runtime_secs;
            }
            StageRuntimes {
                kind: s.kind,
                runtimes_secs,
            }
        })
        .collect();

    let problem = workflow.deployment_problem(&runtimes)?;
    let min_total = problem.min_total_runtime();
    println!("fastest possible flow: {min_total}s\n");

    let mut rows = Vec::new();
    for rel in [0.9, 1.0, 1.1, 1.3, 1.6, 2.0, 3.0] {
        let deadline = (min_total as f64 * rel).round() as u64;
        match workflow.plan_deployment(&runtimes, deadline)? {
            Some(plan) => {
                let machines: Vec<String> = plan
                    .stages
                    .iter()
                    .map(|s| s.instance.clone())
                    .collect();
                rows.push(vec![
                    format!("{deadline}"),
                    format!("{}", plan.total_runtime_secs),
                    format!("{:.4}", plan.total_cost_usd),
                    machines.join(", "),
                ]);
            }
            None => rows.push(vec![
                format!("{deadline}"),
                "NA".into(),
                "NA".into(),
                "deadline cannot be met — add slack or shard the flow".into(),
            ]),
        }
    }
    println!(
        "{}",
        render_table(
            &["deadline (s)", "runtime (s)", "cost ($)", "machines (syn, place, route, sta)"],
            &rows
        )
    );
    Ok(())
}
