//! Design-space exploration with horizontal scaling — the motivation in
//! the paper's introduction: "horizontal scaling by launching more
//! compute servers allows EDA teams to complete a highly-parallelizable
//! compute job in less time".
//!
//! This example sweeps synthesis recipes for one design across a fleet
//! of simulated VMs, compares wall-clock and cost for fleet sizes 1-8,
//! and prices the same fleet on the spot market.
//!
//! ```text
//! cargo run --example design_space_exploration --release
//! ```

use eda_cloud::cloud::{Catalog, Provisioner, SpotMarket};
use eda_cloud::core::report::render_table;
use eda_cloud::flow::{ExecContext, Recipe, StageKind, Synthesizer};
use eda_cloud::netlist::generators;
use eda_cloud::tech::Library;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let design = generators::openpiton_design("fpu").expect("built-in design");
    let recipes = Recipe::standard_suite();
    println!(
        "exploring {} synthesis recipes for `{}`",
        recipes.len(),
        design.name()
    );

    // Run every recipe once (simulated runtime on a 2-vCPU machine) and
    // record quality of results.
    let catalog = Catalog::aws_like();
    let instance = catalog.instance("m5.large")?;
    let workflow = eda_cloud::core::Workflow::with_defaults();
    let ctx: ExecContext = workflow.exec_context(StageKind::Synthesis, instance.vcpus);
    let synthesizer = Synthesizer::new().with_verification(false);
    let lib = Library::synthetic_14nm();

    let mut results = Vec::new();
    for recipe in &recipes {
        let (netlist, report) = synthesizer.run(&design, recipe, &ctx)?;
        let stats = netlist.stats(&lib);
        results.push((recipe.name().to_owned(), report.runtime_secs, stats));
    }
    results.sort_by(|a, b| a.2.area_um2.total_cmp(&b.2.area_um2));
    let best = &results[0];
    println!(
        "\nbest recipe by area: `{}` ({:.1} µm², depth {})\n",
        best.0, best.2.area_um2, best.2.depth
    );

    // Horizontal scaling: a fleet of identical VMs each takes a slice of
    // the recipe sweep; wall-clock is the slowest slice, cost is the sum
    // of per-second-billed VMs (boot time included).
    let total_job_secs: f64 = results.iter().map(|r| r.1).sum();
    let mut rows = Vec::new();
    for fleet in [1usize, 2, 4, 8] {
        let mut cloud = Provisioner::new(*catalog.pricing());
        // Round-robin the recipes over the fleet.
        let mut slices = vec![0.0f64; fleet];
        for (i, r) in results.iter().enumerate() {
            slices[i % fleet] += r.1;
        }
        let mut cost = 0.0;
        let mut wall: f64 = 0.0;
        for &slice in &slices {
            let vm = cloud.launch(instance.clone());
            let record = cloud.run_job(vm, slice)?;
            cost += record.cost_usd;
            wall = wall.max(slice + 30.0); // boot
        }
        let spot = catalog
            .pricing()
            .expected_spot_cost_usd(instance, total_job_secs / fleet as f64, &SpotMarket::typical())
            * fleet as f64;
        rows.push(vec![
            format!("{fleet}"),
            format!("{wall:.0}"),
            format!("{cost:.4}"),
            format!("{spot:.4}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["fleet size", "wall-clock (s)", "on-demand ($)", "expected spot ($)"],
            &rows
        )
    );
    println!(
        "horizontal scaling cuts wall-clock nearly linearly at almost\n\
         constant on-demand cost; spot pricing cuts cost a further ~70%\n\
         for these short independent jobs."
    );
    Ok(())
}
