//! Characterize a single design like the paper's Section III-A: counter
//! signatures (branch misses, cache misses, AVX share) and vCPU scaling
//! for each of the four EDA applications.
//!
//! ```text
//! cargo run --example characterize_design --release               # aes
//! cargo run --example characterize_design --release -- l2_bank
//! ```

use eda_cloud::core::report::{pct, render_table};
use eda_cloud::core::{recommendation_notes, CharacterizationConfig, Workflow};
use eda_cloud::netlist::generators;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "aes".to_owned());
    let design = generators::openpiton_design(&name)
        .unwrap_or_else(|| panic!("unknown design `{name}`; available: {:?}", generators::OPENPITON_NAMES));

    let workflow = Workflow::with_defaults();
    let report = workflow.characterize_design(&design, &CharacterizationConfig::paper())?;
    println!(
        "characterization of `{}` ({} cells after synthesis)\n",
        report.design, report.cells
    );

    let mut rows = Vec::new();
    for stage in &report.stages {
        let r1 = &stage.runs.first().expect("swept").report;
        let speedup = stage.speedups().last().copied().unwrap_or(1.0);
        rows.push(vec![
            stage.kind.to_string(),
            pct(r1.counters.branch_miss_rate()),
            pct(r1.counters.perf_cache_miss_rate()),
            pct(r1.counters.avx_share()),
            format!("{:.2}x", speedup),
            stage.family.clone(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["stage", "br-miss", "cache-miss", "AVX share", "speedup@8", "recommended family"],
            &rows
        )
    );

    println!("recommendations:");
    for stage in &report.stages {
        println!("  {:<9} {}", stage.kind.to_string(), recommendation_notes(stage.kind));
    }
    Ok(())
}
