//! The sharded multi-region coordinator: a conservative lookahead
//! barrier over independent per-region event loops.
//!
//! # Why the merged timeline is byte-identical at any fan-out
//!
//! Each window starts at `t`, the minimum pending event time across
//! all regions, and runs to `horizon = t + lookahead`. Within the
//! window every region processes only its own events — the [`Outbox`]
//! rejects any cross-region send with latency below the lookahead, so
//! nothing sent inside a window can be observed inside that same
//! window. Regions are therefore *independent* between barriers: the
//! coordinator may advance them on one thread or eight, grouped into
//! one shard or one-per-region, and each region's state at the horizon
//! is the same bytes.
//!
//! At the barrier the coordinator collects every outbox, sorts the
//! envelopes by the total order `(send_time_us, src_region, seq)`, and
//! delivers them one by one on the coordinator thread. Sorting erases
//! the only nondeterminism fan-out could introduce (collection order),
//! so delivery order — and with it every downstream sequence number —
//! is a pure function of the simulation inputs.

use crate::message::{Envelope, Outbox};
use crate::time::checked_add_us;
use crate::{EngineError, EngineFaults, NoEngineFaults};
use std::sync::Arc;

/// One shard of work for a window: the base region index of the
/// chunk, the chunk of regions, and their sequence cursors.
type ShardChunk<'a, S> = (usize, &'a mut [S], &'a mut [u64]);

/// One region's event loop, driven by the coordinator.
pub trait RegionShard: Send {
    /// The cross-region message type.
    type Msg: Send;

    /// Fire time of the region's earliest pending event, `None` when
    /// the region is quiescent.
    fn next_time(&self) -> Option<u64>;

    /// Process every local event with `time < horizon_us`, sending any
    /// cross-region traffic through `outbox`.
    fn advance(
        &mut self,
        horizon_us: u64,
        outbox: &mut Outbox<Self::Msg>,
    ) -> Result<(), EngineError>;

    /// Accept a message; the region must not act on it before
    /// `envelope.deliver_at_us` (schedule it as a local event there).
    fn deliver(&mut self, envelope: Envelope<Self::Msg>) -> Result<(), EngineError>;
}

/// Cross-shard message accounting, tracked by the coordinator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Envelopes regions handed to their outboxes.
    pub sent: u64,
    /// Envelopes delivered to their destination region.
    pub delivered: u64,
    /// Envelopes a fault hook dropped (never delivered, accounted).
    pub dropped: u64,
    /// Delivered envelopes a fault hook pushed later.
    pub delayed: u64,
    /// Delivered envelopes held back by a partition until its heal
    /// time.
    pub held: u64,
}

/// The coordinator: owns the regions, runs the barrier loop.
pub struct ShardedSim<S: RegionShard> {
    regions: Vec<S>,
    lookahead_us: u64,
    faults: Arc<dyn EngineFaults>,
    next_seq: Vec<u64>,
    stats: MessageStats,
    windows: u64,
}

impl<S: RegionShard> ShardedSim<S> {
    /// A coordinator over `regions` with the given lookahead window.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when `regions` is empty or the
    /// lookahead is zero (a zero window would never make progress
    /// past simultaneous events).
    pub fn new(regions: Vec<S>, lookahead_us: u64) -> Result<Self, EngineError> {
        Self::with_faults(regions, lookahead_us, Arc::new(NoEngineFaults))
    }

    /// [`ShardedSim::new`] with fault hooks on the message path.
    pub fn with_faults(
        regions: Vec<S>,
        lookahead_us: u64,
        faults: Arc<dyn EngineFaults>,
    ) -> Result<Self, EngineError> {
        if regions.is_empty() {
            return Err(EngineError::InvalidConfig("sharded sim needs at least one region"));
        }
        if lookahead_us == 0 {
            return Err(EngineError::InvalidConfig("lookahead window must be positive"));
        }
        let next_seq = vec![0; regions.len()];
        Ok(Self { regions, lookahead_us, faults, next_seq, stats: MessageStats::default(), windows: 0 })
    }

    /// The lookahead window, µs — also the minimum legal cross-region
    /// latency.
    #[must_use]
    pub fn lookahead_us(&self) -> u64 {
        self.lookahead_us
    }

    /// Run to quiescence: barrier windows until no region has a
    /// pending event. `workers` bounds the threads used per window;
    /// `shards` groups regions into execution containers. Neither
    /// affects the result — that is the point — both are clamped to
    /// sane ranges rather than rejected.
    pub fn run(&mut self, workers: usize, shards: usize) -> Result<(), EngineError> {
        let shard_count = shards.clamp(1, self.regions.len());
        let workers = workers.clamp(1, shard_count);
        loop {
            let Some(t) = self.regions.iter().filter_map(RegionShard::next_time).min() else {
                return Ok(());
            };
            let horizon = checked_add_us(t, self.lookahead_us)?;
            let mut envelopes = self.advance_window(horizon, workers, shard_count)?;
            envelopes.sort_by_key(Envelope::merge_key);
            self.deliver_all(envelopes)?;
            self.windows += 1;
        }
    }

    /// Advance every region to `horizon` and collect their outboxes.
    fn advance_window(
        &mut self,
        horizon: u64,
        workers: usize,
        shard_count: usize,
    ) -> Result<Vec<Envelope<S::Msg>>, EngineError> {
        let lookahead = self.lookahead_us;
        let chunk = self.regions.len().div_ceil(shard_count);
        if workers <= 1 {
            // Serial fast path: same code shape as a one-thread scope.
            let mut all = Vec::new();
            for (index, region) in self.regions.iter_mut().enumerate() {
                let mut outbox = Outbox::new(index as u32, lookahead, self.next_seq[index]);
                region.advance(horizon, &mut outbox)?;
                self.next_seq[index] = outbox.next_seq();
                all.extend(outbox.into_envelopes());
            }
            return Ok(all);
        }
        // Shards are contiguous chunks of regions; each worker thread
        // takes shards round-robin. Grouping is invisible in the result
        // because regions only read/write their own state this side of
        // the barrier.
        let shards_iter = self
            .regions
            .chunks_mut(chunk)
            .zip(self.next_seq.chunks_mut(chunk))
            .enumerate()
            .map(|(i, (regions, seqs))| (i * chunk, regions, seqs));
        let mut groups: Vec<Vec<ShardChunk<'_, S>>> = (0..workers).map(|_| Vec::new()).collect();
        for (j, shard) in shards_iter.enumerate() {
            groups[j % workers].push(shard);
        }
        let mut all = Vec::new();
        std::thread::scope(|scope| -> Result<(), EngineError> {
            let mut handles = Vec::with_capacity(workers);
            for group in groups {
                handles.push(scope.spawn(move || -> Result<Vec<Envelope<S::Msg>>, EngineError> {
                    let mut sent = Vec::new();
                    for (base, regions, seqs) in group {
                        for (k, region) in regions.iter_mut().enumerate() {
                            let mut outbox =
                                Outbox::new((base + k) as u32, lookahead, seqs[k]);
                            region.advance(horizon, &mut outbox)?;
                            seqs[k] = outbox.next_seq();
                            sent.extend(outbox.into_envelopes());
                        }
                    }
                    Ok(sent)
                }));
            }
            for handle in handles {
                all.extend(handle.join().expect("shard worker panicked")?);
            }
            Ok(())
        })?;
        Ok(all)
    }

    /// Deliver merged envelopes in canonical order, applying fault
    /// hooks. Runs on the coordinator thread only.
    fn deliver_all(&mut self, envelopes: Vec<Envelope<S::Msg>>) -> Result<(), EngineError> {
        for mut env in envelopes {
            self.stats.sent += 1;
            let (src, dst, seq) = (env.src_region, env.dst_region, env.seq);
            if self.faults.drop_message(src, dst, seq) {
                self.stats.dropped += 1;
                continue;
            }
            let extra = self.faults.message_extra_delay_us(src, dst, seq);
            if extra > 0 {
                self.stats.delayed += 1;
                env.deliver_at_us = checked_add_us(env.deliver_at_us, extra)?;
            }
            if let Some(heal) = self.faults.partition_heal_us(src, dst, env.send_time_us) {
                if heal > env.deliver_at_us {
                    self.stats.held += 1;
                    env.deliver_at_us = heal;
                }
            }
            let dst_index = dst as usize;
            if dst_index >= self.regions.len() {
                return Err(EngineError::UnknownRegion {
                    region: dst,
                    regions: self.regions.len(),
                });
            }
            self.regions[dst_index].deliver(env)?;
            self.stats.delivered += 1;
        }
        Ok(())
    }

    /// Message accounting so far.
    #[must_use]
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// Barrier windows executed so far.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The regions, in index order.
    #[must_use]
    pub fn regions(&self) -> &[S] {
        &self.regions
    }

    /// Consume the coordinator, returning the regions in index order.
    #[must_use]
    pub fn into_regions(self) -> Vec<S> {
        self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventHeap;

    /// A token-passing region: each delivery schedules a local event
    /// that forwards the token to the next region, `hops` times.
    struct Ring {
        id: u32,
        regions: u32,
        heap: EventHeap<u64>, // remaining hops
        log: Vec<(u64, u64)>, // (time, remaining hops)
    }

    impl RegionShard for Ring {
        type Msg = u64;

        fn next_time(&self) -> Option<u64> {
            self.heap.peek_time()
        }

        fn advance(&mut self, horizon_us: u64, outbox: &mut Outbox<u64>) -> Result<(), EngineError> {
            while self.heap.peek_time().is_some_and(|t| t < horizon_us) {
                let (t, hops) = self.heap.pop().expect("peeked");
                self.log.push((t, hops));
                if hops > 0 {
                    outbox.send(t, (self.id + 1) % self.regions, 1_000, hops - 1)?;
                }
            }
            Ok(())
        }

        fn deliver(&mut self, envelope: Envelope<u64>) -> Result<(), EngineError> {
            self.heap.push(envelope.deliver_at_us, envelope.payload);
            Ok(())
        }
    }

    fn ring(regions: u32) -> Vec<Ring> {
        (0..regions)
            .map(|id| {
                let mut heap = EventHeap::new();
                if id == 0 {
                    heap.push(0, 8u64); // 8 hops around the ring
                }
                Ring { id, regions, heap, log: Vec::new() }
            })
            .collect()
    }

    fn run_ring(regions: u32, workers: usize, shards: usize) -> (Vec<Vec<(u64, u64)>>, MessageStats) {
        let mut sim = ShardedSim::new(ring(regions), 1_000).expect("valid");
        sim.run(workers, shards).expect("runs");
        let stats = sim.stats();
        (sim.into_regions().into_iter().map(|r| r.log).collect(), stats)
    }

    #[test]
    fn token_ring_terminates_and_conserves_messages() {
        let (logs, stats) = run_ring(3, 1, 1);
        let total: usize = logs.iter().map(Vec::len).sum();
        assert_eq!(total, 9, "the token is observed hops+1 times");
        assert_eq!(stats.sent, 8);
        assert_eq!(stats.delivered, 8);
        assert_eq!(stats.dropped, 0);
    }

    #[test]
    fn fan_out_and_sharding_are_invisible() {
        let baseline = run_ring(4, 1, 1);
        for (workers, shards) in [(1, 4), (2, 2), (2, 4), (8, 4), (8, 1)] {
            assert_eq!(run_ring(4, workers, shards), baseline, "workers={workers} shards={shards}");
        }
    }

    #[test]
    fn zero_lookahead_and_empty_topologies_are_rejected() {
        assert!(matches!(
            ShardedSim::<Ring>::new(Vec::new(), 10),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardedSim::new(ring(2), 0),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    struct DelayAll;
    impl EngineFaults for DelayAll {
        fn message_extra_delay_us(&self, _src: u32, _dst: u32, seq: u64) -> u64 {
            if seq.is_multiple_of(2) {
                5_000
            } else {
                0
            }
        }
        fn drop_message(&self, src: u32, _dst: u32, seq: u64) -> bool {
            // Sequence numbers are per source region: region 1's
            // second send is the token's fifth hop.
            src == 1 && seq == 1
        }
    }

    #[test]
    fn fault_hooks_delay_and_drop_with_accounting() {
        let mut sim = ShardedSim::with_faults(ring(3), 1_000, Arc::new(DelayAll)).expect("valid");
        sim.run(1, 1).expect("runs");
        let stats = sim.stats();
        // The token dies on its fifth hop: r0, r1, r2, r0, then r1's
        // second send is dropped.
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.delivered, 4);
        assert!(stats.delayed >= 1, "even-seq messages were delayed");
        // Faulty runs stay deterministic at any fan-out.
        let rerun = |workers, shards| {
            let mut sim =
                ShardedSim::with_faults(ring(3), 1_000, Arc::new(DelayAll)).expect("valid");
            sim.run(workers, shards).expect("runs");
            (sim.stats(), sim.into_regions().into_iter().map(|r| r.log).collect::<Vec<_>>())
        };
        assert_eq!(rerun(1, 1), rerun(8, 3));
    }
}
