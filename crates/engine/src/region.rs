//! The multi-region workload: tenant job streams, per-region service
//! slots behind fair-share admission, and all three cross-region
//! traffic kinds — job migration, staged model-rollout waves, and
//! replicated cache invalidations — riding the sharded substrate.
//!
//! Every region is a [`RegionShard`]: an event heap, a
//! [`FairShare`]-fronted run queue ordered by stride tag, a bank of
//! service slots, and a replicated design cache. The simulation is a
//! pure function of `(config, jobs, faults)`; the folded
//! [`RegionReport`] renders to byte-stable JSON, so worker- and
//! shard-count invariance is checked with `diff`.

use crate::message::{Envelope, Outbox};
use crate::metrics::Histogram;
use crate::sharded::{MessageStats, RegionShard, ShardedSim};
use crate::time::checked_add_us;
use crate::{AdmitRejection, EngineError, EngineFaults, EventHeap, FairShare, TenantPolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Arc;

/// Latency histogram bucket edges, µs (job arrival → completion).
const LATENCY_EDGES_US: [f64; 7] =
    [10_000.0, 50_000.0, 100_000.0, 500_000.0, 1_000_000.0, 5_000_000.0, 10_000_000.0];

/// Cross-region traffic histogram bucket edges, µs (send → delivery).
const TRAFFIC_EDGES_US: [f64; 5] = [50_000.0, 100_000.0, 200_000.0, 500_000.0, 1_000_000.0];

/// How to run a multi-region simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSimConfig {
    /// Seed for the synthetic workload.
    pub seed: u64,
    /// Number of regions.
    pub regions: u32,
    /// Number of tenants sharing every region.
    pub tenants: u32,
    /// Jobs in the synthetic workload.
    pub jobs: u64,
    /// Service slots per region.
    pub servers_per_region: u32,
    /// Mean job service time, µs.
    pub mean_service_us: u64,
    /// Mean inter-arrival gap, µs (0 = all jobs arrive at once).
    pub mean_gap_us: u64,
    /// Distinct cacheable design keys.
    pub designs: u64,
    /// Percent of jobs that update their design (completing one
    /// broadcasts a cache invalidation to every other region), 0–100.
    pub update_pct: u32,
    /// Conservative lookahead window, µs.
    pub lookahead_us: u64,
    /// Cross-region message latency, µs; must be ≥ the lookahead.
    pub inter_region_latency_us: u64,
    /// Local queue depth at which a fresh arrival is migrated to the
    /// next region instead of queued.
    pub migrate_threshold: u32,
    /// Run-queue capacity per region (fair-share total).
    pub queue_capacity: usize,
    /// Per-tenant hard quota on queued jobs per region.
    pub tenant_quota: u32,
    /// Fair-share weights, one per tenant; empty = all ones.
    pub tenant_weights: Vec<u64>,
    /// Model-rollout waves to stage through the regions.
    pub rollout_waves: u32,
    /// Gap between wave starts, µs.
    pub wave_interval_us: u64,
}

impl Default for RegionSimConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            regions: 3,
            tenants: 4,
            jobs: 200,
            servers_per_region: 2,
            mean_service_us: 40_000,
            mean_gap_us: 5_000,
            designs: 16,
            update_pct: 25,
            lookahead_us: 50_000,
            inter_region_latency_us: 60_000,
            migrate_threshold: 12,
            queue_capacity: 32,
            tenant_quota: 16,
            tenant_weights: Vec::new(),
            rollout_waves: 2,
            wave_interval_us: 200_000,
        }
    }
}

impl RegionSimConfig {
    /// Check every structural constraint the simulation relies on.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.regions == 0 {
            return Err(EngineError::InvalidConfig("region sim needs at least one region"));
        }
        if self.tenants == 0 {
            return Err(EngineError::InvalidConfig("region sim needs at least one tenant"));
        }
        if self.servers_per_region == 0 {
            return Err(EngineError::InvalidConfig("regions need at least one service slot"));
        }
        if self.mean_service_us == 0 {
            return Err(EngineError::InvalidConfig("mean service time must be positive"));
        }
        if self.designs == 0 {
            return Err(EngineError::InvalidConfig("the design pool cannot be empty"));
        }
        if self.update_pct > 100 {
            return Err(EngineError::InvalidConfig("update percentage must be in 0..=100"));
        }
        if self.lookahead_us == 0 {
            return Err(EngineError::InvalidConfig("lookahead window must be positive"));
        }
        if self.inter_region_latency_us < self.lookahead_us {
            return Err(EngineError::InvalidConfig(
                "cross-region latency must be at least the lookahead window",
            ));
        }
        if self.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig("queue capacity must be positive"));
        }
        if self.tenant_quota == 0 {
            return Err(EngineError::InvalidConfig("tenant quota must be positive"));
        }
        if !self.tenant_weights.is_empty() {
            if self.tenant_weights.len() != self.tenants as usize {
                return Err(EngineError::InvalidConfig(
                    "tenant weights must match the tenant count",
                ));
            }
            if self.tenant_weights.contains(&0) {
                return Err(EngineError::InvalidConfig("tenant weights must be positive"));
            }
        }
        Ok(())
    }

    /// The per-tenant policies this config implies.
    fn policies(&self) -> Vec<TenantPolicy> {
        (0..self.tenants as usize)
            .map(|t| TenantPolicy {
                weight: self.tenant_weights.get(t).copied().unwrap_or(1),
                max_queued: self.tenant_quota,
            })
            .collect()
    }
}

/// One job in the multi-region workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionJob {
    /// Arrival time at the home region, µs.
    pub arrival_us: u64,
    /// Home region.
    pub region: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Service time, µs (halved on a warm design cache).
    pub service_us: u64,
    /// Design key (the cache key).
    pub design: u64,
    /// Whether completing this job invalidates the design's cached
    /// result in every other region.
    pub update: bool,
}

/// The seeded synthetic workload for `config`.
pub fn synthetic_region_jobs(config: &RegionSimConfig) -> Result<Vec<RegionJob>, EngineError> {
    config.validate()?;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5EED_0E61_0E5C_u64);
    let mut t = 0u64;
    let mut jobs = Vec::with_capacity(config.jobs as usize);
    for _ in 0..config.jobs {
        if config.mean_gap_us > 0 {
            t = checked_add_us(t, rng.gen_range(0..=config.mean_gap_us * 2))?;
        }
        let service_lo = (config.mean_service_us / 2).max(1);
        let service_hi = (config.mean_service_us * 3).div_ceil(2).max(service_lo + 1);
        jobs.push(RegionJob {
            arrival_us: t,
            region: rng.gen_range(0..config.regions),
            tenant: rng.gen_range(0..config.tenants),
            service_us: rng.gen_range(service_lo..service_hi),
            design: rng.gen_range(0..config.designs),
            update: rng.gen_range(0u32..100) < config.update_pct,
        });
    }
    Ok(jobs)
}

/// A job as it moves through queues and across regions.
#[derive(Debug, Clone, Copy)]
struct QueuedJob {
    /// Global workload ordinal — the deterministic tie-breaker.
    ord: u64,
    tenant: u32,
    design: u64,
    service_us: u64,
    arrival_us: u64,
    update: bool,
    /// Set when the job has already been migrated once; migrated jobs
    /// never bounce again.
    migrated: bool,
}

/// Cross-region message payloads.
#[derive(Debug, Clone, Copy)]
enum RegionMsg {
    /// A job forwarded from an overloaded region.
    Migrate(QueuedJob),
    /// The staged model-rollout wave, forwarded region by region.
    Rollout { version: u32 },
    /// A replicated cache invalidation for one design.
    Invalidate { design: u64 },
}

/// Local events inside one region.
#[derive(Debug, Clone, Copy)]
enum RegionEvent {
    /// A job arriving at its home region.
    Arrival(QueuedJob),
    /// The wave origin firing in region 0.
    Wave { version: u32 },
    /// A cross-region message reaching its delivery time.
    Deliver { send_time_us: u64, msg: RegionMsg },
    /// A service slot finishing a job.
    Done { tenant: u32, tag: u64, design: u64, arrival_us: u64, update: bool },
}

/// Per-region outcome counters for the report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionCounters {
    /// Jobs that arrived at this region as their home.
    pub submitted: u64,
    /// Jobs admitted into the run queue (home or migrated-in).
    pub admitted: u64,
    /// Jobs served to completion here.
    pub served: u64,
    /// Jobs rejected by a tenant quota / share bound.
    pub quota_rejected: u64,
    /// Jobs shed because the whole queue was full.
    pub shed: u64,
    /// Fresh arrivals forwarded to the next region under overload.
    pub migrated_out: u64,
    /// Migrated jobs accepted from another region.
    pub migrated_in: u64,
    /// Jobs served from a warm design cache.
    pub cache_hits: u64,
    /// Cache invalidations applied from other regions.
    pub invalidations_applied: u64,
    /// Model-rollout waves applied.
    pub waves_applied: u64,
    /// Model version after the last applied wave.
    pub final_version: u32,
    /// Time of the last completion in this region, µs.
    pub makespan_us: u64,
}

/// Per-tenant usage folded across regions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Fair-share weight.
    pub weight: u64,
    /// Jobs the tenant submitted (workload-wide).
    pub submitted: u64,
    /// Jobs admitted across regions.
    pub admitted: u64,
    /// Jobs served across regions.
    pub served: u64,
    /// Quota rejections across regions.
    pub quota_rejected: u64,
    /// Capacity rejections across regions.
    pub shed: u64,
}

/// One region's full state.
struct RegionState {
    id: u32,
    regions: u32,
    latency_us: u64,
    migrate_threshold: u32,
    heap: EventHeap<RegionEvent>,
    fair: FairShare,
    queue: BTreeMap<(u64, u64), QueuedJob>,
    slots_free: u32,
    cache: BTreeSet<u64>,
    counters: RegionCounters,
    latency_hist: Histogram,
    traffic_hist: Histogram,
}

impl RegionState {
    fn new(id: u32, config: &RegionSimConfig) -> Result<Self, EngineError> {
        Ok(Self {
            id,
            regions: config.regions,
            latency_us: config.inter_region_latency_us,
            migrate_threshold: config.migrate_threshold,
            heap: EventHeap::new(),
            fair: FairShare::new(config.policies(), config.queue_capacity)?,
            queue: BTreeMap::new(),
            slots_free: config.servers_per_region,
            cache: BTreeSet::new(),
            counters: RegionCounters::default(),
            latency_hist: Histogram::new(LATENCY_EDGES_US.to_vec()),
            traffic_hist: Histogram::new(TRAFFIC_EDGES_US.to_vec()),
        })
    }

    /// Admit (or reject) a job, migrating fresh arrivals away when the
    /// local queue is already deep.
    fn accept(
        &mut self,
        now: u64,
        mut job: QueuedJob,
        outbox: &mut Outbox<RegionMsg>,
        fresh_arrival: bool,
    ) -> Result<(), EngineError> {
        let deep = self.queue.len() >= self.migrate_threshold as usize;
        if fresh_arrival && deep && !job.migrated && self.regions > 1 {
            job.migrated = true;
            let next = (self.id + 1) % self.regions;
            outbox.send(now, next, self.latency_us, RegionMsg::Migrate(job))?;
            self.counters.migrated_out += 1;
            return Ok(());
        }
        match self.fair.try_admit(job.tenant) {
            Ok(tag) => {
                self.counters.admitted += 1;
                self.queue.insert((tag, job.ord), job);
                self.pump(now)
            }
            Err(AdmitRejection::QuotaExceeded { .. }) => {
                self.counters.quota_rejected += 1;
                Ok(())
            }
            Err(AdmitRejection::CapacityExhausted { .. }) => {
                self.counters.shed += 1;
                Ok(())
            }
        }
    }

    /// Start queued jobs on free slots, in ascending stride-tag order.
    fn pump(&mut self, now: u64) -> Result<(), EngineError> {
        while self.slots_free > 0 {
            let Some((&(tag, ord), _)) = self.queue.first_key_value() else {
                break;
            };
            let job = self.queue.remove(&(tag, ord)).expect("key just observed");
            self.slots_free -= 1;
            let mut service = job.service_us.max(1);
            if self.cache.contains(&job.design) {
                self.counters.cache_hits += 1;
                service = (service / 2).max(1);
            }
            let done_at = checked_add_us(now, service)?;
            self.heap.push(
                done_at,
                RegionEvent::Done {
                    tenant: job.tenant,
                    tag,
                    design: job.design,
                    arrival_us: job.arrival_us,
                    update: job.update,
                },
            );
        }
        Ok(())
    }

    /// Apply a rollout wave locally and forward it to the next region
    /// in the staged chain.
    fn apply_wave(
        &mut self,
        now: u64,
        version: u32,
        outbox: &mut Outbox<RegionMsg>,
    ) -> Result<(), EngineError> {
        self.counters.waves_applied += 1;
        self.counters.final_version = version;
        // A new model version invalidates every replicated result.
        self.cache.clear();
        if self.id + 1 < self.regions {
            outbox.send(now, self.id + 1, self.latency_us, RegionMsg::Rollout { version })?;
        }
        Ok(())
    }

    fn handle(
        &mut self,
        now: u64,
        event: RegionEvent,
        outbox: &mut Outbox<RegionMsg>,
    ) -> Result<(), EngineError> {
        match event {
            RegionEvent::Arrival(job) => {
                self.counters.submitted += 1;
                self.accept(now, job, outbox, true)
            }
            RegionEvent::Wave { version } => self.apply_wave(now, version, outbox),
            RegionEvent::Deliver { send_time_us, msg } => {
                self.traffic_hist.record((now - send_time_us) as f64);
                match msg {
                    RegionMsg::Migrate(job) => {
                        self.counters.migrated_in += 1;
                        self.accept(now, job, outbox, false)
                    }
                    RegionMsg::Rollout { version } => self.apply_wave(now, version, outbox),
                    RegionMsg::Invalidate { design } => {
                        self.counters.invalidations_applied += 1;
                        self.cache.remove(&design);
                        Ok(())
                    }
                }
            }
            RegionEvent::Done { tenant, tag, design, arrival_us, update } => {
                self.slots_free += 1;
                self.fair.on_serve(tenant, tag);
                self.counters.served += 1;
                self.counters.makespan_us = self.counters.makespan_us.max(now);
                self.latency_hist.record((now - arrival_us) as f64);
                self.cache.insert(design);
                if update {
                    // Replicate the invalidation to every other region.
                    for r in 0..self.regions {
                        if r != self.id {
                            outbox.send(now, r, self.latency_us, RegionMsg::Invalidate { design })?;
                        }
                    }
                }
                self.pump(now)
            }
        }
    }
}

impl RegionShard for RegionState {
    type Msg = RegionMsg;

    fn next_time(&self) -> Option<u64> {
        self.heap.peek_time()
    }

    fn advance(
        &mut self,
        horizon_us: u64,
        outbox: &mut Outbox<RegionMsg>,
    ) -> Result<(), EngineError> {
        while self.heap.peek_time().is_some_and(|t| t < horizon_us) {
            let (t, event) = self.heap.pop().expect("peeked above");
            self.handle(t, event, outbox)?;
        }
        Ok(())
    }

    fn deliver(&mut self, envelope: Envelope<RegionMsg>) -> Result<(), EngineError> {
        self.heap.push(
            envelope.deliver_at_us,
            RegionEvent::Deliver { send_time_us: envelope.send_time_us, msg: envelope.payload },
        );
        Ok(())
    }
}

/// The folded multi-region run report. Renders to byte-stable JSON —
/// identical at any worker or shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionReport {
    /// The workload seed.
    pub seed: u64,
    /// Per-region counters, indexed by region id.
    pub regions: Vec<RegionCounters>,
    /// Per-tenant usage folded across regions, indexed by tenant id.
    pub tenants: Vec<TenantUsage>,
    /// Cross-shard message accounting.
    pub messages: MessageStats,
    /// Barrier windows the coordinator executed.
    pub windows: u64,
    /// Last completion time across regions, µs.
    pub makespan_us: u64,
    /// Job latency distribution (arrival → completion), µs.
    pub latency_hist: Histogram,
    /// Cross-region traffic latency distribution (send → delivery), µs.
    pub traffic_hist: Histogram,
}

impl RegionReport {
    /// Render as a single JSON object with fixed key order — two
    /// reports are equal iff their JSON is byte-identical.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let sum = |f: fn(&RegionCounters) -> u64| self.regions.iter().map(f).sum::<u64>();
        let _ = write!(
            s,
            "\"totals\":{{\"submitted\":{},\"admitted\":{},\"served\":{},\"quota_rejected\":{},\
             \"shed\":{},\"migrated\":{},\"cache_hits\":{},\"invalidations\":{},\"waves\":{}}},",
            sum(|c| c.submitted),
            sum(|c| c.admitted),
            sum(|c| c.served),
            sum(|c| c.quota_rejected),
            sum(|c| c.shed),
            sum(|c| c.migrated_out),
            sum(|c| c.cache_hits),
            sum(|c| c.invalidations_applied),
            sum(|c| c.waves_applied),
        );
        let m = &self.messages;
        let _ = write!(
            s,
            "\"messages\":{{\"sent\":{},\"delivered\":{},\"dropped\":{},\"delayed\":{},\
             \"held\":{}}},",
            m.sent, m.delivered, m.dropped, m.delayed, m.held
        );
        let _ = write!(s, "\"windows\":{},", self.windows);
        let _ = write!(s, "\"makespan_us\":{},", self.makespan_us);
        s.push_str("\"per_region\":[");
        for (i, c) in self.regions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"region\":{i},\"submitted\":{},\"admitted\":{},\"served\":{},\
                 \"quota_rejected\":{},\"shed\":{},\"migrated_out\":{},\"migrated_in\":{},\
                 \"cache_hits\":{},\"invalidations_applied\":{},\"waves_applied\":{},\
                 \"final_version\":{},\"makespan_us\":{}}}",
                c.submitted,
                c.admitted,
                c.served,
                c.quota_rejected,
                c.shed,
                c.migrated_out,
                c.migrated_in,
                c.cache_hits,
                c.invalidations_applied,
                c.waves_applied,
                c.final_version,
                c.makespan_us,
            );
        }
        s.push_str("],\"per_tenant\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tenant\":{i},\"weight\":{},\"submitted\":{},\"admitted\":{},\"served\":{},\
                 \"quota_rejected\":{},\"shed\":{}}}",
                t.weight, t.submitted, t.admitted, t.served, t.quota_rejected, t.shed,
            );
        }
        s.push_str("],");
        let _ = write!(s, "\"latency_hist\":{},", self.latency_hist.to_json());
        let _ = write!(s, "\"traffic_hist\":{}", self.traffic_hist.to_json());
        s.push('}');
        s
    }
}

/// The multi-region simulation entry points.
pub struct RegionSim;

impl RegionSim {
    /// Run the seeded synthetic workload for `config` at the given
    /// fan-out. `workers` and `shards` shape execution only — the
    /// report is byte-identical for any values.
    pub fn run(
        config: &RegionSimConfig,
        workers: usize,
        shards: usize,
    ) -> Result<RegionReport, EngineError> {
        let jobs = synthetic_region_jobs(config)?;
        Self::run_with(config, &jobs, Arc::new(crate::NoEngineFaults), workers, shards)
    }

    /// Run an explicit workload under fault hooks.
    pub fn run_with(
        config: &RegionSimConfig,
        jobs: &[RegionJob],
        faults: Arc<dyn EngineFaults>,
        workers: usize,
        shards: usize,
    ) -> Result<RegionReport, EngineError> {
        config.validate()?;
        let mut regions = (0..config.regions)
            .map(|id| RegionState::new(id, config))
            .collect::<Result<Vec<_>, _>>()?;
        for (ord, job) in jobs.iter().enumerate() {
            if job.region >= config.regions {
                return Err(EngineError::InvalidConfig("job names a region outside the topology"));
            }
            if job.tenant >= config.tenants {
                return Err(EngineError::InvalidConfig("job names a tenant outside the table"));
            }
            regions[job.region as usize].heap.push(
                job.arrival_us,
                RegionEvent::Arrival(QueuedJob {
                    ord: ord as u64,
                    tenant: job.tenant,
                    design: job.design % config.designs,
                    service_us: job.service_us,
                    arrival_us: job.arrival_us,
                    update: job.update,
                    migrated: false,
                }),
            );
        }
        // Rollout waves originate in region 0 and stage outward.
        for wave in 0..config.rollout_waves {
            let at = config
                .wave_interval_us
                .checked_mul(u64::from(wave) + 1)
                .ok_or(EngineError::Time("wave start overflows the microsecond clock"))?;
            regions[0].heap.push(at, RegionEvent::Wave { version: wave + 1 });
        }
        let mut sim = ShardedSim::with_faults(regions, config.lookahead_us, faults)?;
        sim.run(workers, shards)?;
        let stats = sim.stats();
        let windows = sim.windows();
        let regions = sim.into_regions();

        let mut tenants =
            vec![TenantUsage::default(); config.tenants as usize];
        for (t, usage) in tenants.iter_mut().enumerate() {
            usage.weight = config.tenant_weights.get(t).copied().unwrap_or(1);
        }
        for job in jobs {
            tenants[job.tenant as usize].submitted += 1;
        }
        let mut latency_hist = Histogram::new(LATENCY_EDGES_US.to_vec());
        let mut traffic_hist = Histogram::new(TRAFFIC_EDGES_US.to_vec());
        let mut makespan_us = 0u64;
        let mut counters = Vec::with_capacity(regions.len());
        for region in &regions {
            for (t, c) in region.fair.counters().iter().enumerate() {
                tenants[t].admitted += c.admitted;
                tenants[t].served += c.served;
                tenants[t].quota_rejected += c.quota_rejected;
                tenants[t].shed += c.capacity_rejected;
            }
            latency_hist.merge(&region.latency_hist);
            traffic_hist.merge(&region.traffic_hist);
            makespan_us = makespan_us.max(region.counters.makespan_us);
            counters.push(region.counters);
        }
        Ok(RegionReport {
            seed: config.seed,
            regions: counters,
            tenants,
            messages: stats,
            windows,
            makespan_us,
            latency_hist,
            traffic_hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates_and_runs() {
        let report = RegionSim::run(&RegionSimConfig::default(), 1, 1).expect("runs");
        let submitted: u64 = report.regions.iter().map(|c| c.submitted).sum();
        assert_eq!(submitted, 200);
        let served: u64 = report.regions.iter().map(|c| c.served).sum();
        let quota: u64 = report.regions.iter().map(|c| c.quota_rejected).sum();
        let shed: u64 = report.regions.iter().map(|c| c.shed).sum();
        assert_eq!(served + quota + shed, submitted, "every job reaches a terminal outcome");
        assert!(report.messages.sent > 0, "cross-region traffic flows");
        assert_eq!(report.messages.sent, report.messages.delivered + report.messages.dropped);
        assert!(report.regions.iter().all(|c| c.final_version == 2), "both waves landed");
    }

    #[test]
    fn report_is_byte_identical_across_workers_and_shards() {
        let config = RegionSimConfig::default();
        let baseline = RegionSim::run(&config, 1, 1).expect("runs").to_json();
        for (workers, shards) in [(2, 1), (2, 3), (8, 3), (8, 1), (1, 3)] {
            let json = RegionSim::run(&config, workers, shards).expect("runs").to_json();
            assert_eq!(baseline, json, "workers={workers} shards={shards}");
        }
    }

    #[test]
    fn quota_bounds_a_bursting_tenant() {
        // Tenant 0 floods region 0 at t=0; tenants 1..3 trickle in.
        // The fair-share bound keeps tenant 0 from monopolizing the
        // queue and the rejection counters prove enforcement.
        let config = RegionSimConfig {
            regions: 1,
            tenants: 3,
            migrate_threshold: u32::MAX, // isolate admission from migration
            queue_capacity: 12,
            tenant_quota: 16, // higher than the share bound: the weighted share binds
            tenant_weights: vec![1, 1, 2],
            rollout_waves: 0,
            ..RegionSimConfig::default()
        };
        let mut jobs = Vec::new();
        for i in 0..60u64 {
            jobs.push(RegionJob {
                arrival_us: 0,
                region: 0,
                tenant: 0,
                service_us: 50_000,
                design: i % 4,
                update: false,
            });
        }
        for i in 0..6u64 {
            jobs.push(RegionJob {
                arrival_us: 1_000 + i,
                region: 0,
                tenant: 1 + (i % 2) as u32,
                service_us: 50_000,
                design: i % 4,
                update: false,
            });
        }
        let report = RegionSim::run_with(
            &config,
            &jobs,
            Arc::new(crate::NoEngineFaults),
            1,
            1,
        )
        .expect("runs");
        let t0 = &report.tenants[0];
        // Share bound for tenant 0: capacity 12 * weight 1 / Σ4 = 3.
        assert!(t0.quota_rejected > 0, "the burst hits the quota: {t0:?}");
        assert_eq!(t0.submitted, 60);
        assert!(
            t0.admitted <= 3 + t0.served,
            "tenant 0 never holds more than its share: {t0:?}"
        );
        // The trickling tenants were not starved by the burst.
        assert_eq!(report.tenants[1].quota_rejected, 0, "{:?}", report.tenants[1]);
        assert_eq!(report.tenants[2].quota_rejected, 0, "{:?}", report.tenants[2]);
        assert_eq!(report.tenants[1].served, report.tenants[1].submitted);
        assert_eq!(report.tenants[2].served, report.tenants[2].submitted);
    }

    #[test]
    fn migration_moves_overload_and_conserves_jobs() {
        let config = RegionSimConfig {
            regions: 2,
            migrate_threshold: 2,
            queue_capacity: 64,
            tenant_quota: 64,
            rollout_waves: 0,
            update_pct: 0,
            ..RegionSimConfig::default()
        };
        // Flood region 0 only.
        let jobs: Vec<RegionJob> = (0..40)
            .map(|i| RegionJob {
                arrival_us: i * 100,
                region: 0,
                tenant: (i % 4) as u32,
                service_us: 80_000,
                design: i % 8,
                update: false,
            })
            .collect();
        let report =
            RegionSim::run_with(&config, &jobs, Arc::new(crate::NoEngineFaults), 1, 1)
                .expect("runs");
        assert!(report.regions[0].migrated_out > 0, "overload migrates");
        assert_eq!(report.regions[0].migrated_out, report.regions[1].migrated_in);
        let served: u64 = report.regions.iter().map(|c| c.served).sum();
        let rejected: u64 =
            report.regions.iter().map(|c| c.quota_rejected + c.shed).sum();
        assert_eq!(served + rejected, 40, "migration loses no jobs");
        assert!(report.regions[1].served > 0, "the neighbor absorbed work");
    }

    #[test]
    fn waves_stage_region_by_region_in_order() {
        let config = RegionSimConfig {
            jobs: 0,
            rollout_waves: 3,
            ..RegionSimConfig::default()
        };
        let report = RegionSim::run_with(
            &config,
            &[],
            Arc::new(crate::NoEngineFaults),
            1,
            1,
        )
        .expect("runs");
        for c in &report.regions {
            assert_eq!(c.waves_applied, 3);
            assert_eq!(c.final_version, 3);
        }
        // Each wave crosses regions-1 hops.
        assert_eq!(report.messages.sent, u64::from(3 * (config.regions - 1)));
    }

    #[test]
    fn json_shape_is_stable() {
        let report = RegionSim::run(&RegionSimConfig { jobs: 20, ..Default::default() }, 1, 1)
            .expect("runs");
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.starts_with("{\"seed\":7,\"totals\":{\"submitted\":20,"));
        assert!(json.contains("\"per_region\":[{\"region\":0,"));
        assert!(json.contains("\"per_tenant\":[{\"tenant\":0,\"weight\":1,"));
        assert!(json.ends_with('}'));
    }
}
