//! Deterministic discrete-event simulation substrate for the EDA
//! cloud stack.
//!
//! Extracted from `crates/fleet` and generalized: the fleet simulator
//! proved that a `(time_us, seq)`-keyed event heap plus seeded RNG
//! streams makes an entire simulation a pure function of its inputs;
//! this crate makes that core reusable and scales it across regions.
//!
//! The pieces, bottom up:
//!
//! 1. [`time`] — checked simulated-time arithmetic. Every float→µs
//!    conversion and clock addition returns a typed [`EngineError`]
//!    instead of the silent casts/wraps that reorder event heaps.
//! 2. [`EventHeap`] — the `(time_us, seq)` priority queue: ascending
//!    time, push-order ties, sequence counter owned by the heap.
//! 3. [`metrics`] — byte-stable [`Histogram`]/[`Samples`]/[`fmt_f64`]
//!    shared by every deterministic JSON report in the workspace.
//! 4. [`ShardedSim`] — N independent [`RegionShard`] event loops
//!    advancing under a conservative lookahead barrier, exchanging
//!    [`Envelope`]s merged in `(send_time_us, region_id, seq)` order.
//!    The merged timeline is byte-identical at any worker count and
//!    any shard count; [`EngineFaults`] hooks bend the message path
//!    (delay, partition, drop) without breaking that contract.
//! 5. [`FairShare`] — per-tenant quotas and weighted fair-share
//!    admission (stride scheduling over integer virtual time).
//! 6. [`RegionSim`] — the multi-region workload built from all of the
//!    above: tenant job streams, migration, staged rollout waves,
//!    replicated cache invalidations, and a byte-stable
//!    [`RegionReport`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod fair;
mod faults;
mod heap;
mod message;
pub mod metrics;
mod region;
mod sharded;
pub mod time;

pub use error::EngineError;
pub use fair::{AdmitRejection, FairShare, TenantCounters, TenantPolicy};
pub use faults::{EngineFaults, NoEngineFaults};
pub use heap::EventHeap;
pub use message::{Envelope, Outbox};
pub use metrics::{fmt_f64, Histogram, Samples};
pub use region::{
    synthetic_region_jobs, RegionCounters, RegionJob, RegionReport, RegionSim, RegionSimConfig,
    TenantUsage,
};
pub use sharded::{MessageStats, RegionShard, ShardedSim};
