//! Engine errors.
//!
//! Every failure mode is typed and carries a `&'static str` or the
//! offending values, so downstream crates (fleet, serve, simtest) can
//! map engine errors into their own error enums without allocating and
//! without losing the original diagnosis.

use std::error::Error;
use std::fmt;

/// Errors raised by the simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A configuration value is unusable (zero regions, empty tenant
    /// table, lookahead of zero, ...).
    InvalidConfig(&'static str),
    /// A simulated-time conversion or addition left the representable
    /// range — the typed replacement for silent `u64` wraparound.
    Time(&'static str),
    /// A cross-shard message addressed a region outside the topology.
    UnknownRegion {
        /// The destination region the message named.
        region: u32,
        /// How many regions the topology actually has.
        regions: usize,
    },
    /// A cross-shard send declared a latency below the lookahead
    /// window. Delivering it would land inside the current window and
    /// break the conservative barrier, so the send is rejected at the
    /// source instead of corrupting determinism at the destination.
    LookaheadViolation {
        /// The latency the sender asked for, µs.
        latency_us: u64,
        /// The minimum latency the barrier permits, µs.
        min_latency_us: u64,
    },
}

impl EngineError {
    /// The static diagnosis for config/time errors; a stable string for
    /// the structured variants.
    #[must_use]
    pub fn message(&self) -> &'static str {
        match self {
            EngineError::InvalidConfig(msg) | EngineError::Time(msg) => msg,
            EngineError::UnknownRegion { .. } => "message addressed an unknown region",
            EngineError::LookaheadViolation { .. } => {
                "cross-shard latency is below the lookahead window"
            }
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(what) => write!(f, "invalid engine configuration: {what}"),
            EngineError::Time(what) => write!(f, "simulated-time error: {what}"),
            EngineError::UnknownRegion { region, regions } => {
                write!(f, "message addressed region {region} but only {regions} regions exist")
            }
            EngineError::LookaheadViolation { latency_us, min_latency_us } => write!(
                f,
                "cross-shard latency {latency_us}µs is below the {min_latency_us}µs lookahead \
                 window"
            ),
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_stable() {
        assert_eq!(EngineError::Time("clock overflow").message(), "clock overflow");
        assert_eq!(EngineError::InvalidConfig("no regions").message(), "no regions");
        let e = EngineError::UnknownRegion { region: 9, regions: 3 };
        assert!(e.to_string().contains("region 9"));
        let e = EngineError::LookaheadViolation { latency_us: 5, min_latency_us: 100 };
        assert!(e.to_string().contains("5µs"));
        assert!(e.to_string().contains("100µs"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<EngineError>();
    }
}
