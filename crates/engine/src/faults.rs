//! Fault hooks on the cross-shard message path.
//!
//! The coordinator consults these at the delivery barrier, so injected
//! faults bend *when* (or whether) a message arrives without ever
//! touching region state directly. Implementations must be pure
//! functions of their arguments — the same `(src, dst, seq, time)`
//! must always get the same answer — or determinism across worker
//! counts is lost. `crates/simtest` adapts its canonical fault plans
//! to this trait.

/// Hooks consulted for every cross-shard envelope at the barrier.
pub trait EngineFaults: Send + Sync {
    /// Extra delivery delay for this message, µs (0 = none). Applied
    /// on top of the envelope's own latency, so it can only push
    /// delivery later — never inside the lookahead window.
    fn message_extra_delay_us(&self, _src: u32, _dst: u32, _seq: u64) -> u64 {
        0
    }

    /// If a partition covers this `src → dst` link at the message's
    /// send time, the time the link heals; the message is held and
    /// delivered at the heal time (when that is later than its own
    /// delivery time).
    fn partition_heal_us(&self, _src: u32, _dst: u32, _send_time_us: u64) -> Option<u64> {
        None
    }

    /// Drop the message entirely. Dropped messages are counted in
    /// [`MessageStats::dropped`] — the cross-shard conservation checker
    /// accepts a loss only when it is accounted here.
    ///
    /// [`MessageStats::dropped`]: crate::MessageStats::dropped
    fn drop_message(&self, _src: u32, _dst: u32, _seq: u64) -> bool {
        false
    }
}

/// The default: no faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEngineFaults;

impl EngineFaults for NoEngineFaults {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_transparent() {
        let f = NoEngineFaults;
        assert_eq!(f.message_extra_delay_us(0, 1, 2), 0);
        assert_eq!(f.partition_heal_us(0, 1, 2), None);
        assert!(!f.drop_message(0, 1, 2));
    }
}
