//! Checked simulated-time arithmetic.
//!
//! The substrate's clock is integer microseconds in a `u64`. Every
//! conversion from wall-second floats and every addition on the clock
//! goes through these helpers, because the raw alternatives fail
//! silently in ways that scramble an event heap: `as u64` casts NaN
//! and negatives to 0, pins overlarge values to `u64::MAX`, and plain
//! `+` wraps. Each helper returns a typed [`EngineError::Time`]
//! instead.

use crate::EngineError;

/// Microseconds per second, as the float conversion factor.
pub const MICROS_PER_SEC: f64 = 1e6;

/// Largest microsecond value convertible from `f64` without the
/// saturating-cast cliff: beyond 2^63, `as u64` silently pins to
/// `u64::MAX` and event times stop being meaningful.
pub const MAX_US: f64 = 9.2e18;

/// Convert seconds to integer microseconds (rounding to nearest),
/// rejecting values a saturating `as` cast would silently mangle: NaN
/// (casts to 0), negatives (cast to 0), and times beyond the
/// microsecond clock's range (pin to `u64::MAX`, reordering the event
/// heap).
pub fn secs_to_us(secs: f64) -> Result<u64, EngineError> {
    if !secs.is_finite() || secs < 0.0 {
        return Err(EngineError::Time("time must be finite and >= 0"));
    }
    let us = (secs * MICROS_PER_SEC).round();
    if us > MAX_US {
        return Err(EngineError::Time("time overflows the microsecond clock"));
    }
    Ok(us as u64)
}

/// [`secs_to_us`] with ceiling rounding — for readiness deadlines,
/// where rounding down would schedule an event before the thing it
/// waits on.
pub fn secs_to_us_ceil(secs: f64) -> Result<u64, EngineError> {
    if !secs.is_finite() || secs < 0.0 {
        return Err(EngineError::Time("time must be finite and >= 0"));
    }
    let us = (secs * MICROS_PER_SEC).ceil();
    if us > MAX_US {
        return Err(EngineError::Time("time overflows the microsecond clock"));
    }
    Ok(us as u64)
}

/// Microseconds back to seconds (exact for any time the clock can
/// reach within `f64`'s 53-bit mantissa, ~285 simulated years).
#[must_use]
pub fn us_to_secs(us: u64) -> f64 {
    us as f64 / MICROS_PER_SEC
}

/// Saturating seconds→µs conversion for soft windows where clamping is
/// the *intended* semantics (an autoscaler's look-back horizon): NaN
/// and negatives clamp to 0, overlarge values pin to the clock's top.
/// Event times must never go through here — use [`secs_to_us`].
#[must_use]
pub fn saturating_secs_to_us(secs: f64) -> u64 {
    let clamped = if secs.is_finite() { secs.max(0.0) } else { 0.0 };
    let us = (clamped * MICROS_PER_SEC).round();
    if us > MAX_US {
        MAX_US as u64
    } else {
        us as u64
    }
}

/// A planned duration of whole seconds in microseconds, or an error
/// when the multiply would wrap `u64` (a >292-millennium stage is a
/// bad plan, not a schedulable event).
pub fn secs_to_duration_us(runtime_secs: u64) -> Result<u64, EngineError> {
    runtime_secs
        .checked_mul(1_000_000)
        .ok_or(EngineError::Time("stage runtime overflows the microsecond clock"))
}

/// Advance the clock: `now + delta`, or a typed error instead of the
/// silent wraparound that would reorder the event heap.
pub fn checked_add_us(now: u64, delta_us: u64) -> Result<u64, EngineError> {
    now.checked_add(delta_us)
        .ok_or(EngineError::Time("time overflows the microsecond clock"))
}

/// Scale a duration by an integer percentage (`us * pct / 100`),
/// checked against `u64` wrap.
pub fn scale_us_pct(us: u64, pct: u64) -> Result<u64, EngineError> {
    us.checked_mul(pct)
        .map(|v| v / 100)
        .ok_or(EngineError::Time("scaled duration overflows the microsecond clock"))
}

/// A fractional offset into a duration: `duration * fraction`,
/// rejecting NaN/out-of-range fractions and offsets beyond the clock
/// instead of letting the cast collapse them to 0 or `u64::MAX`.
pub fn fraction_of_us(duration_us: u64, fraction: f64) -> Result<u64, EngineError> {
    if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
        return Err(EngineError::Time("fraction must be finite and in [0, 1]"));
    }
    let offset = duration_us as f64 * fraction;
    if !offset.is_finite() || !(0.0..=MAX_US).contains(&offset) {
        return Err(EngineError::Time("fractional offset overflows the microsecond clock"));
    }
    Ok(offset as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_to_us_rejects_the_cast_cliffs() {
        assert_eq!(secs_to_us(1.5), Ok(1_500_000));
        assert_eq!(secs_to_us(0.0), Ok(0));
        assert!(secs_to_us(f64::NAN).is_err(), "NaN must not cast to 0");
        assert!(secs_to_us(-1.0).is_err(), "negative must not cast to 0");
        assert!(secs_to_us(f64::INFINITY).is_err());
        assert!(secs_to_us(1e20).is_err(), "beyond the clock must not saturate");
    }

    #[test]
    fn ceil_variant_rounds_up() {
        assert_eq!(secs_to_us_ceil(0.0000001), Ok(1));
        assert_eq!(secs_to_us_ceil(1.0), Ok(1_000_000));
        assert!(secs_to_us_ceil(-0.5).is_err());
        assert!(secs_to_us_ceil(1e20).is_err());
    }

    #[test]
    fn round_trip_is_exact_in_range() {
        for us in [0u64, 1, 999_999, 1_000_000, 86_400_000_000] {
            assert_eq!(secs_to_us(us_to_secs(us)), Ok(us));
        }
    }

    #[test]
    fn saturating_conversion_clamps_instead_of_erroring() {
        assert_eq!(saturating_secs_to_us(1.5), 1_500_000);
        assert_eq!(saturating_secs_to_us(-3.0), 0);
        assert_eq!(saturating_secs_to_us(f64::NAN), 0);
        assert_eq!(saturating_secs_to_us(1e20), MAX_US as u64);
    }

    #[test]
    fn duration_and_addition_report_overflow() {
        assert_eq!(secs_to_duration_us(2), Ok(2_000_000));
        assert!(secs_to_duration_us(u64::MAX).is_err());
        assert_eq!(checked_add_us(5, 7), Ok(12));
        assert!(checked_add_us(u64::MAX, 1).is_err());
    }

    #[test]
    fn percentage_scaling_is_checked() {
        assert_eq!(scale_us_pct(1_000, 150), Ok(1_500));
        assert_eq!(scale_us_pct(1_000, 100), Ok(1_000));
        assert!(scale_us_pct(u64::MAX, 200).is_err());
    }

    #[test]
    fn fractional_offsets_reject_bad_fractions() {
        assert_eq!(fraction_of_us(1_000_000, 0.5), Ok(500_000));
        assert_eq!(fraction_of_us(1_000_000, 0.0), Ok(0));
        assert_eq!(fraction_of_us(1_000_000, 1.0), Ok(1_000_000));
        assert!(fraction_of_us(1_000_000, f64::NAN).is_err());
        assert!(fraction_of_us(1_000_000, -0.1).is_err());
        assert!(fraction_of_us(1_000_000, 1.1).is_err());
        assert!(fraction_of_us(u64::MAX, 1.0).is_err(), "offset past the clock is rejected");
    }
}
