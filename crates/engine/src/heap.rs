//! The `(time_us, seq)` event heap — the deterministic core extracted
//! from the fleet simulator.
//!
//! Events pop in ascending time order; equal times pop in push order,
//! because every push stamps a monotone sequence number. That single
//! rule is what makes a whole simulation a pure function of its
//! inputs: no hash-map iteration order, no thread interleaving, no
//! wall clock ever decides which of two simultaneous events runs
//! first.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled event: fire time, tie-breaking sequence, payload.
struct Entry<E> {
    t: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest (t, seq).
        (other.t, other.seq).cmp(&(self.t, self.seq))
    }
}

/// A deterministic event queue keyed by `(time_us, seq)`.
///
/// The sequence counter lives inside the heap — callers cannot forget
/// to stamp it, reuse it across heaps, or tick it out of order, which
/// is exactly the class of bug the extraction retires.
pub struct EventHeap<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventHeap<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventHeap<E> {
    /// An empty heap with the sequence counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedule `event` at `t` microseconds. Events pushed at the same
    /// time pop in push order.
    pub fn push(&mut self, t: u64, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { t, seq, event });
    }

    /// Remove and return the earliest `(time, event)` pair.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        self.heap.pop().map(|e| (e.t, e.event))
    }

    /// Fire time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.t)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events ever pushed (the sequence counter).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut heap = EventHeap::new();
        heap.push(30, "c");
        heap.push(10, "a");
        heap.push(20, "b");
        assert_eq!(heap.peek_time(), Some(10));
        assert_eq!(heap.pop(), Some((10, "a")));
        assert_eq!(heap.pop(), Some((20, "b")));
        assert_eq!(heap.pop(), Some((30, "c")));
        assert_eq!(heap.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_push_order() {
        let mut heap = EventHeap::new();
        for label in ["first", "second", "third", "fourth"] {
            heap.push(100, label);
        }
        let order: Vec<_> = std::iter::from_fn(|| heap.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, ["first", "second", "third", "fourth"]);
    }

    #[test]
    fn sequence_counter_survives_drains() {
        let mut heap = EventHeap::new();
        heap.push(1, ());
        heap.push(2, ());
        assert_eq!(heap.pushes(), 2);
        let _ = heap.pop();
        let _ = heap.pop();
        assert!(heap.is_empty());
        // New pushes keep counting up: a drained heap must not recycle
        // sequence numbers, or a later same-time push could jump ahead.
        heap.push(5, ());
        assert_eq!(heap.pushes(), 3);
        assert_eq!(heap.len(), 1);
    }
}
