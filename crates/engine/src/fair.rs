//! Per-tenant quotas and weighted fair-share admission.
//!
//! # The math
//!
//! Admission is stride scheduling over integer virtual time. Each
//! tenant has a weight `w` and a stride `STRIDE_SCALE / w`; admitting
//! one unit of work stamps it with the tenant's current *pass* tag and
//! advances the pass by the stride. Serving in ascending tag order
//! then interleaves tenants in proportion to their weights: over any
//! backlogged interval, a tenant with twice the weight receives twice
//! the service, and the per-unit bound on the deviation from ideal
//! weighted fairness is one stride. A tenant that goes idle re-enters
//! at the global virtual time (the tag of the last served unit), so
//! idleness is not bankable credit.
//!
//! Quotas bound *queued* work per tenant before tags even matter: an
//! admit is rejected when the tenant already has
//! `min(policy.max_queued, share_bound)` units queued, where
//! `share_bound = max(1, capacity * w / Σw)` is the tenant's weighted
//! share of the queue. Under an overload burst a misbehaving tenant
//! therefore cannot occupy more than its share of the queue, and every
//! rejection is counted per tenant — the counters the acceptance test
//! asserts.
//!
//! Everything is integer arithmetic on explicit state; admission order
//! in equals decision order out, on any machine.

use crate::EngineError;

/// Fixed-point scale for stride tags. With 32 fractional bits, a
/// weight-1 tenant admits ~2^32 units before tags near `u64::MAX` —
/// far beyond any run the workspace performs.
const STRIDE_SCALE: u64 = 1 << 32;

/// One tenant's admission policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Fair-share weight (service proportion under contention).
    pub weight: u64,
    /// Hard cap on this tenant's queued units, before the weighted
    /// share bound is applied on top.
    pub max_queued: u32,
}

/// Per-tenant admission accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Units admitted into the queue.
    pub admitted: u64,
    /// Units rejected by the per-tenant quota / share bound.
    pub quota_rejected: u64,
    /// Units rejected because the whole queue was full.
    pub capacity_rejected: u64,
    /// Units served (dequeued).
    pub served: u64,
}

/// Why an admit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitRejection {
    /// The tenant is at its quota or weighted share bound.
    QuotaExceeded {
        /// The rejected tenant.
        tenant: u32,
        /// Units the tenant had queued.
        queued: u32,
        /// The bound that was hit.
        bound: u32,
    },
    /// The queue as a whole is full.
    CapacityExhausted {
        /// The rejected tenant.
        tenant: u32,
        /// Total queued units across tenants.
        depth: usize,
        /// The queue capacity.
        capacity: usize,
    },
}

/// Weighted fair-share admission state for one queue.
#[derive(Debug, Clone)]
pub struct FairShare {
    policies: Vec<TenantPolicy>,
    total_weight: u64,
    capacity: usize,
    queued: Vec<u32>,
    total_queued: usize,
    pass: Vec<u64>,
    virtual_time: u64,
    counters: Vec<TenantCounters>,
}

impl FairShare {
    /// Admission state over `policies` (one per tenant) and a total
    /// queue capacity.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] on an empty tenant table, a zero
    /// weight, a zero quota, or a zero capacity.
    pub fn new(policies: Vec<TenantPolicy>, capacity: usize) -> Result<Self, EngineError> {
        if policies.is_empty() {
            return Err(EngineError::InvalidConfig("fair share needs at least one tenant"));
        }
        if capacity == 0 {
            return Err(EngineError::InvalidConfig("fair share needs a positive capacity"));
        }
        if policies.iter().any(|p| p.weight == 0) {
            return Err(EngineError::InvalidConfig("tenant weights must be positive"));
        }
        if policies.iter().any(|p| p.max_queued == 0) {
            return Err(EngineError::InvalidConfig("tenant quotas must be positive"));
        }
        let total_weight: u64 = policies.iter().map(|p| p.weight).sum();
        let n = policies.len();
        Ok(Self {
            policies,
            total_weight,
            capacity,
            queued: vec![0; n],
            total_queued: 0,
            pass: vec![0; n],
            virtual_time: 0,
            counters: vec![TenantCounters::default(); n],
        })
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.policies.len()
    }

    /// The effective per-tenant queue bound:
    /// `min(max_queued, max(1, capacity * weight / Σweights))`.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range — tenant ids are caller
    /// state, not input data.
    #[must_use]
    pub fn share_bound(&self, tenant: u32) -> u32 {
        let policy = &self.policies[tenant as usize];
        let share = (self.capacity as u64 * policy.weight / self.total_weight).max(1);
        policy.max_queued.min(u32::try_from(share).unwrap_or(u32::MAX))
    }

    /// Try to admit one unit for `tenant`; on success returns the
    /// stride tag that orders it against other tenants' work.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range.
    pub fn try_admit(&mut self, tenant: u32) -> Result<u64, AdmitRejection> {
        let t = tenant as usize;
        assert!(t < self.policies.len(), "tenant {tenant} out of range");
        if self.total_queued >= self.capacity {
            self.counters[t].capacity_rejected += 1;
            return Err(AdmitRejection::CapacityExhausted {
                tenant,
                depth: self.total_queued,
                capacity: self.capacity,
            });
        }
        let bound = self.share_bound(tenant);
        if self.queued[t] >= bound {
            self.counters[t].quota_rejected += 1;
            return Err(AdmitRejection::QuotaExceeded { tenant, queued: self.queued[t], bound });
        }
        // An idle tenant re-enters at the global virtual time instead
        // of its stale pass — idleness earns no retroactive credit.
        let tag = if self.queued[t] == 0 {
            self.pass[t].max(self.virtual_time)
        } else {
            self.pass[t]
        };
        self.pass[t] = tag + STRIDE_SCALE / self.policies[t].weight;
        self.queued[t] += 1;
        self.total_queued += 1;
        self.counters[t].admitted += 1;
        Ok(tag)
    }

    /// Account one served unit for `tenant`, advancing the global
    /// virtual time to its `tag`.
    ///
    /// # Panics
    ///
    /// Panics when `tenant` is out of range or has nothing queued —
    /// both are caller bugs, not input conditions.
    pub fn on_serve(&mut self, tenant: u32, tag: u64) {
        let t = tenant as usize;
        assert!(self.queued[t] > 0, "tenant {tenant} has nothing queued");
        self.queued[t] -= 1;
        self.total_queued -= 1;
        self.counters[t].served += 1;
        self.virtual_time = self.virtual_time.max(tag);
    }

    /// Units currently queued for `tenant`.
    #[must_use]
    pub fn queued(&self, tenant: u32) -> u32 {
        self.queued[tenant as usize]
    }

    /// Total queued units across tenants.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.total_queued
    }

    /// Per-tenant accounting, indexed by tenant id.
    #[must_use]
    pub fn counters(&self) -> &[TenantCounters] {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(weights: &[u64], max_queued: u32, capacity: usize) -> FairShare {
        let policies =
            weights.iter().map(|&weight| TenantPolicy { weight, max_queued }).collect();
        FairShare::new(policies, capacity).expect("valid")
    }

    #[test]
    fn constructor_rejects_degenerate_configs() {
        assert!(FairShare::new(Vec::new(), 4).is_err());
        assert!(FairShare::new(vec![TenantPolicy { weight: 0, max_queued: 1 }], 4).is_err());
        assert!(FairShare::new(vec![TenantPolicy { weight: 1, max_queued: 0 }], 4).is_err());
        assert!(FairShare::new(vec![TenantPolicy { weight: 1, max_queued: 1 }], 0).is_err());
    }

    #[test]
    fn share_bound_is_weighted_and_floored() {
        let fair = pool(&[3, 1], 100, 8);
        assert_eq!(fair.share_bound(0), 6); // 8 * 3/4
        assert_eq!(fair.share_bound(1), 2); // 8 * 1/4
        let tiny = pool(&[1, 1000], 100, 4);
        assert_eq!(tiny.share_bound(0), 1, "every tenant keeps at least one slot");
    }

    #[test]
    fn quota_bounds_a_flooding_tenant() {
        let mut fair = pool(&[1, 1], 100, 10);
        let mut admitted = 0;
        for _ in 0..50 {
            if fair.try_admit(0).is_ok() {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 5, "tenant 0 is capped at its half share");
        assert_eq!(fair.counters()[0].quota_rejected, 45);
        // The other tenant's share is untouched by the burst.
        for _ in 0..5 {
            assert!(fair.try_admit(1).is_ok());
        }
        assert_eq!(fair.counters()[1].quota_rejected, 0);
        assert_eq!(fair.depth(), 10);
        // Now the queue is full: further admits are capacity rejections.
        assert!(matches!(
            fair.try_admit(1),
            Err(AdmitRejection::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn tags_interleave_in_weight_proportion() {
        let mut fair = pool(&[2, 1], 100, 100);
        // Backlog both tenants, then serve in ascending tag order.
        let mut tagged: Vec<(u64, u32)> = Vec::new();
        for _ in 0..6 {
            tagged.push((fair.try_admit(0).expect("admit"), 0));
        }
        for _ in 0..3 {
            tagged.push((fair.try_admit(1).expect("admit"), 1));
        }
        tagged.sort();
        let first_six: Vec<u32> = tagged.iter().take(6).map(|&(_, t)| t).collect();
        let t0 = first_six.iter().filter(|&&t| t == 0).count();
        assert_eq!(t0, 4, "weight-2 tenant gets 2/3 of early service: {first_six:?}");
    }

    #[test]
    fn idle_tenants_earn_no_retroactive_credit() {
        let mut fair = pool(&[1, 1], 100, 100);
        // Tenant 0 runs alone for a while.
        for _ in 0..10 {
            let tag = fair.try_admit(0).expect("admit");
            fair.on_serve(0, tag);
        }
        // Tenant 1 wakes: its first tag starts at the current virtual
        // time, not at zero, so it cannot monopolize the queue to
        // "catch up".
        let tag1 = fair.try_admit(1).expect("admit");
        let tag0 = fair.try_admit(0).expect("admit");
        assert!(tag1 >= tag0.saturating_sub(STRIDE_SCALE), "no catch-up burst: {tag1} vs {tag0}");
    }

    #[test]
    fn determinism_is_trivial_but_pinned() {
        let run = || {
            let mut fair = pool(&[2, 3, 1], 4, 12);
            let mut log = Vec::new();
            for i in 0..40u32 {
                log.push(fair.try_admit(i % 3).map_err(|_| ()));
                if i % 5 == 4 {
                    // Serve the oldest queued unit of tenant i%3 if any.
                    let t = i % 3;
                    if fair.queued(t) > 0 {
                        fair.on_serve(t, u64::from(i));
                    }
                }
            }
            (log, fair.counters().to_vec())
        };
        assert_eq!(run(), run());
    }
}
