//! Cross-shard messages and the per-window outbox.
//!
//! A region never touches another region's state directly; everything
//! that crosses a region boundary travels as an [`Envelope`] stamped
//! with `(send_time_us, src_region, seq)` — the deterministic merge
//! key. The [`Outbox`] is the only way to mint envelopes, and it
//! enforces the conservative-barrier contract at the source: a
//! cross-shard latency below the lookahead window is rejected, because
//! delivering inside the current window would make the receiving
//! region's timeline depend on which shard ran first.

use crate::time::checked_add_us;
use crate::EngineError;

/// One cross-shard message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Simulated time the source region sent it, µs.
    pub send_time_us: u64,
    /// The sending region.
    pub src_region: u32,
    /// Monotone per-source sequence number — with `src_region`, a
    /// globally unique identity.
    pub seq: u64,
    /// The receiving region.
    pub dst_region: u32,
    /// Earliest simulated time the destination may observe it, µs
    /// (`send_time_us + latency`; fault hooks may only push it later).
    pub deliver_at_us: u64,
    /// The message itself.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// The deterministic merge key: envelopes from every shard are
    /// delivered in ascending `(send_time_us, src_region, seq)` order,
    /// which is total because `(src_region, seq)` never repeats.
    #[must_use]
    pub fn merge_key(&self) -> (u64, u32, u64) {
        (self.send_time_us, self.src_region, self.seq)
    }
}

/// A region's send buffer for one barrier window.
///
/// Constructed by the coordinator with the region's persistent
/// sequence cursor, handed to [`RegionShard::advance`], and drained at
/// the barrier.
///
/// [`RegionShard::advance`]: crate::RegionShard::advance
#[derive(Debug)]
pub struct Outbox<M> {
    src_region: u32,
    min_latency_us: u64,
    next_seq: u64,
    pending: Vec<Envelope<M>>,
}

impl<M> Outbox<M> {
    /// An empty outbox for `src_region`, continuing its sequence
    /// numbering at `next_seq` and enforcing `min_latency_us` (the
    /// coordinator's lookahead window) on every send.
    #[must_use]
    pub fn new(src_region: u32, min_latency_us: u64, next_seq: u64) -> Self {
        Self { src_region, min_latency_us, next_seq, pending: Vec::new() }
    }

    /// Send `payload` to `dst_region`, arriving `latency_us` after
    /// `send_time_us`. Returns the assigned sequence number.
    ///
    /// # Errors
    ///
    /// [`EngineError::LookaheadViolation`] when the latency is below
    /// the lookahead window; [`EngineError::Time`] when the delivery
    /// time overflows the clock.
    pub fn send(
        &mut self,
        send_time_us: u64,
        dst_region: u32,
        latency_us: u64,
        payload: M,
    ) -> Result<u64, EngineError> {
        if latency_us < self.min_latency_us {
            return Err(EngineError::LookaheadViolation {
                latency_us,
                min_latency_us: self.min_latency_us,
            });
        }
        let deliver_at_us = checked_add_us(send_time_us, latency_us)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Envelope {
            send_time_us,
            src_region: self.src_region,
            seq,
            dst_region,
            deliver_at_us,
            payload,
        });
        Ok(seq)
    }

    /// The sequence cursor after this window's sends (the coordinator
    /// persists it for the next window).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of buffered envelopes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing was sent this window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drain the buffered envelopes.
    #[must_use]
    pub fn into_envelopes(self) -> Vec<Envelope<M>> {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_stamp_monotone_sequences_and_delivery_times() {
        let mut outbox: Outbox<&str> = Outbox::new(2, 100, 7);
        assert!(outbox.is_empty());
        assert_eq!(outbox.send(1_000, 0, 150, "a"), Ok(7));
        assert_eq!(outbox.send(1_000, 1, 100, "b"), Ok(8));
        assert_eq!(outbox.next_seq(), 9);
        assert_eq!(outbox.len(), 2);
        let envs = outbox.into_envelopes();
        assert_eq!(envs[0].merge_key(), (1_000, 2, 7));
        assert_eq!(envs[0].deliver_at_us, 1_150);
        assert_eq!(envs[1].dst_region, 1);
    }

    #[test]
    fn latency_below_lookahead_is_rejected_at_the_source() {
        let mut outbox: Outbox<()> = Outbox::new(0, 100, 0);
        let err = outbox.send(5, 1, 99, ()).unwrap_err();
        assert_eq!(err, EngineError::LookaheadViolation { latency_us: 99, min_latency_us: 100 });
        assert!(outbox.is_empty(), "a rejected send buffers nothing");
    }

    #[test]
    fn delivery_time_overflow_is_typed() {
        let mut outbox: Outbox<()> = Outbox::new(0, 0, 0);
        assert!(matches!(outbox.send(u64::MAX, 1, 1, ()), Err(EngineError::Time(_))));
    }
}
