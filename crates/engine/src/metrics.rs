//! Shared deterministic metrics primitives: fixed-bucket histograms,
//! running samples, and the fixed-precision float rendering every
//! byte-stable JSON report in the workspace uses.
//!
//! Moved here from `crates/fleet` so serve/lifecycle/engine reports
//! stop reaching into the fleet crate for a histogram; fleet re-exports
//! [`Histogram`] for source compatibility.

use serde::{Deserialize, Serialize};

/// A histogram over fixed, caller-chosen bucket edges. A value lands in
/// the first bucket whose upper edge is `>=` the value; values beyond
/// the last edge land in the overflow bucket, so `counts` has
/// `edges.len() + 1` entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram over ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must ascend"
        );
        let counts = vec![0; edges.len() + 1];
        Self { edges, counts }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let bucket = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[bucket] += 1;
    }

    /// Fold another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different edges — merging
    /// incompatible bucketings silently would corrupt every report
    /// built from the merge.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.edges, other.edges, "merged histograms must share bucket edges");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Bucket upper edges.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Render as `{"edges":[...],"counts":[...]}` with the same fixed
    /// float formatting as every workspace report ([`fmt_f64`]) —
    /// byte-stable, so other crates can embed histograms in their own
    /// deterministic JSON documents.
    #[must_use]
    pub fn to_json(&self) -> String {
        let edges: Vec<String> = self.edges.iter().map(|e| fmt_f64(*e)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"edges\":[{}],\"counts\":[{}]}}",
            edges.join(","),
            counts.join(",")
        )
    }
}

/// Fixed-precision float rendering for byte-stable JSON reports (6
/// decimal places covers sub-cent costs and microsecond-rounded
/// latencies).
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

/// Running scalar samples; turned into mean/percentile statistics for
/// reports.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Arithmetic mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Nearest-rank percentile (`q` in `[0, 1]`); 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![10.0, 100.0]);
        for v in [5.0, 10.0, 11.0, 250.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.to_json(), "{\"edges\":[10.000000,100.000000],\"counts\":[2,1,1]}");
    }

    #[test]
    #[should_panic(expected = "must ascend")]
    fn histogram_rejects_unsorted_edges() {
        let _ = Histogram::new(vec![10.0, 5.0]);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = Histogram::new(vec![10.0]);
        let mut b = Histogram::new(vec![10.0]);
        a.record(5.0);
        b.record(5.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[2, 1]);
    }

    #[test]
    #[should_panic(expected = "share bucket edges")]
    fn histogram_merge_rejects_mismatched_edges() {
        let mut a = Histogram::new(vec![10.0]);
        a.merge(&Histogram::new(vec![20.0]));
    }

    #[test]
    fn samples_statistics() {
        let mut s = Samples::default();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.95), 0.0);
        assert!(s.is_empty());
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.len(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.5), 2.0);
        assert_eq!(s.percentile(0.95), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn fmt_is_fixed_precision() {
        assert_eq!(fmt_f64(1.25), "1.250000");
        assert_eq!(fmt_f64(0.0), "0.000000");
    }
}
