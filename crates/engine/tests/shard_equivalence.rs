//! Property tests for the sharded coordinator: when a workload sends
//! no cross-shard traffic, sharded execution is equivalent to running
//! each region as its own single-region simulation — and the merged
//! report is byte-identical at every worker and shard count.

use eda_cloud_engine::{synthetic_region_jobs, RegionJob, RegionSim, RegionSimConfig};
use proptest::prelude::*;

/// A config whose workload cannot generate cross-shard messages: no
/// migration (threshold is never reached), no design updates (so no
/// replicated invalidations), and no rollout waves.
fn isolated_config(seed: u64, regions: u32, tenants: u32, jobs: u64) -> RegionSimConfig {
    RegionSimConfig {
        seed,
        regions,
        tenants,
        jobs,
        migrate_threshold: u32::MAX,
        update_pct: 0,
        rollout_waves: 0,
        ..RegionSimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded execution of an isolated workload is byte-identical to
    /// single-shard execution, for every worker/shard fan-out.
    #[test]
    fn multi_shard_equals_single_shard_without_cross_traffic(
        seed in 0u64..1_000,
        regions in 2u32..5,
        tenants in 1u32..5,
        jobs in 1u64..120,
    ) {
        let config = isolated_config(seed, regions, tenants, jobs);
        let baseline = RegionSim::run(&config, 1, 1).expect("single shard runs");
        prop_assert_eq!(baseline.messages.sent, 0, "workload must be cross-shard silent");
        for (workers, shards) in [(1usize, regions as usize), (4, 2), (4, regions as usize)] {
            let sharded = RegionSim::run(&config, workers, shards).expect("sharded runs");
            prop_assert_eq!(
                baseline.to_json(),
                sharded.to_json(),
                "workers={} shards={}", workers, shards
            );
        }
    }

    /// Each region of an isolated multi-region run behaves exactly like
    /// a standalone single-region simulation fed only its own jobs.
    #[test]
    fn isolated_regions_match_standalone_single_region_runs(
        seed in 0u64..1_000,
        regions in 2u32..4,
        jobs in 1u64..100,
    ) {
        let config = isolated_config(seed, regions, 3, jobs);
        let all_jobs = synthetic_region_jobs(&config).expect("workload");
        let combined = RegionSim::run(&config, 1, regions as usize).expect("combined runs");
        for r in 0..regions {
            let local: Vec<RegionJob> = all_jobs
                .iter()
                .filter(|j| j.region == r)
                .map(|j| RegionJob { region: 0, ..*j })
                .collect();
            let solo_config = RegionSimConfig { regions: 1, ..config.clone() };
            let solo = RegionSim::run_with(
                &solo_config,
                &local,
                std::sync::Arc::new(eda_cloud_engine::NoEngineFaults),
                1,
                1,
            )
            .expect("standalone region runs");
            prop_assert_eq!(
                combined.regions[r as usize],
                solo.regions[0],
                "region {} diverged from its standalone twin", r
            );
        }
    }
}
