//! Property tests for the EDF admission queue: deadline ordering,
//! ordinal tie-breaks, and shed-at-capacity behavior hold for every
//! seeded workload, not just the unit-test examples.

use eda_cloud_gcn::GraphSample;
use eda_cloud_netlist::{generators, DesignGraph};
use eda_cloud_serve::{AdmissionQueue, RequestKind, ServeDesign, ServeError, ServeRequest};
use proptest::prelude::*;
use std::sync::Arc;

fn request(ordinal: u64, deadline_us: u64) -> ServeRequest {
    let g = DesignGraph::from_aig(&generators::adder(3));
    let view = || GraphSample::new(&g, [1.0; 4]);
    ServeRequest {
        ordinal,
        arrival_us: 0,
        deadline_us,
        kind: RequestKind::Predict,
        design: Arc::new(ServeDesign::new("d", view(), view())),
        upload: None,
    }
}

prop_compose! {
    /// A batch of distinct-ordinal requests with clustered deadlines
    /// (many ties, the interesting regime for the tie-break).
    fn workload()(count in 1usize..40, spread in 1u64..8) -> Vec<(u64, u64)> {
        let mut rng = proptest::test_runner::TestRng::for_test("queue_properties::workload");
        (0..count as u64).map(|ordinal| (ordinal, rng.below(spread) * 100)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_are_sorted_by_deadline_then_ordinal(batch in workload()) {
        let mut queue = AdmissionQueue::new(64);
        for &(ordinal, deadline_us) in &batch {
            queue.try_admit(request(ordinal, deadline_us)).expect("capacity 64 fits the batch");
        }
        let mut popped = Vec::new();
        while let Some(r) = queue.pop() {
            popped.push((r.deadline_us, r.ordinal));
        }
        prop_assert_eq!(popped.len(), batch.len(), "every admitted request pops exactly once");
        let mut expected: Vec<(u64, u64)> =
            batch.iter().map(|&(o, d)| (d, o)).collect();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected, "EDF order with ordinal tie-break");
    }

    #[test]
    fn capacity_sheds_exactly_the_overflow(
        capacity in 1usize..16,
        extra in 0usize..16,
    ) {
        let mut queue = AdmissionQueue::new(capacity);
        let total = capacity + extra;
        let mut shed = Vec::new();
        for ordinal in 0..total as u64 {
            // Later requests carry earlier deadlines: urgency must NOT
            // let them displace already-admitted work.
            let deadline_us = 10_000 - ordinal * 10;
            match queue.try_admit(request(ordinal, deadline_us)) {
                Ok(()) => {}
                Err(ServeError::Overloaded { ordinal: o, queue_depth, capacity: c }) => {
                    prop_assert_eq!(o, ordinal, "the arriving request is the one shed");
                    prop_assert_eq!(queue_depth, capacity);
                    prop_assert_eq!(c, capacity);
                    shed.push(ordinal);
                }
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }
        prop_assert_eq!(shed.len(), extra, "exactly the overflow is shed");
        prop_assert_eq!(queue.len(), capacity, "the queue sits at capacity");
        prop_assert_eq!(
            shed,
            ((capacity as u64)..(total as u64)).collect::<Vec<_>>(),
            "admission is strictly first-come once full"
        );
        // Draining still yields EDF order over the survivors.
        let mut last = None;
        let mut drained = 0usize;
        while let Some(r) = queue.pop() {
            if let Some(prev) = last {
                prop_assert!((r.deadline_us, r.ordinal) > prev);
            }
            last = Some((r.deadline_us, r.ordinal));
            drained += 1;
        }
        prop_assert_eq!(drained, capacity, "shed requests never reappear");
    }

    #[test]
    fn interleaved_admits_and_pops_preserve_urgency(seed_ops in 2u64..2000) {
        // Alternate admissions with pops; every pop must return the
        // minimum (deadline, ordinal) key present at that instant.
        let mut queue = AdmissionQueue::new(8);
        let mut model: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
        let mut x = seed_ops;
        for ordinal in 0..24u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            let deadline_us = (x >> 33) % 500;
            match queue.try_admit(request(ordinal, deadline_us)) {
                Ok(()) => {
                    model.insert((deadline_us, ordinal));
                }
                Err(_) => prop_assert_eq!(model.len(), 8, "sheds only at capacity"),
            }
            if x % 3 == 0 {
                let popped = queue.pop().map(|r| (r.deadline_us, r.ordinal));
                prop_assert_eq!(popped, model.pop_first(), "pop returns the most urgent entry");
            }
        }
        prop_assert_eq!(queue.len(), model.len());
    }
}
