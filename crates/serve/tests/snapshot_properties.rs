//! Property tests hardening `ModelSnapshot::from_text`.
//!
//! Snapshots cross a trust boundary — they are loaded from text a
//! registry or operator hands us — so the parser must turn every
//! malformed, truncated, or poisoned document into a typed
//! [`ServeError`], never a panic, and a document that does parse must
//! reproduce the canonical bytes it came from.

use eda_cloud_gcn::ModelConfig;
use eda_cloud_serve::{ModelSnapshot, ServeError};
use proptest::prelude::*;
use proptest::sample::select;

fn canonical() -> String {
    ModelSnapshot::seeded(&ModelConfig::fast(), 7).to_text()
}

prop_compose! {
    /// A random slice boundary of the canonical document (in chars so
    /// we never split a UTF-8 sequence; the format is ASCII anyway).
    fn truncation()(fraction in 0.0f64..1.0) -> usize {
        let len = canonical().len();
        ((fraction * len as f64) as usize).min(len.saturating_sub(1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncated_documents_are_typed_errors(cut in truncation()) {
        let text = canonical();
        let result = ModelSnapshot::from_text(&text[..cut]);
        prop_assert!(
            matches!(result, Err(ServeError::Snapshot { .. })),
            "truncation at {cut} must be a typed snapshot error"
        );
    }

    #[test]
    fn poisoned_values_are_typed_errors(
        line_pick in 0usize..64,
        poison in select(vec!["NaN", "nan", "inf", "-inf", "infinity", "1e999", "-1e999"]),
    ) {
        // Replace one weight value on a tensor line with a value that
        // parses as f64 but is non-finite (or overflows to infinity).
        let text = canonical();
        let tensor_lines: Vec<usize> = text
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains(".w ") || l.contains(".b "))
            .map(|(i, _)| i)
            .collect();
        let target = tensor_lines[line_pick % tensor_lines.len()];
        let poisoned: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i != target {
                    return format!("{l}\n");
                }
                let mut parts: Vec<String> = l.split(' ').map(str::to_owned).collect();
                let last = parts.len() - 1;
                parts[last] = poison.to_owned();
                format!("{}\n", parts.join(" "))
            })
            .collect();
        let result = ModelSnapshot::from_text(&poisoned);
        prop_assert!(
            matches!(result, Err(ServeError::Snapshot { .. })),
            "poison `{poison}` on line {target} must be a typed error"
        );
    }

    #[test]
    fn corrupted_lines_never_panic(
        line_pick in 0usize..512,
        garbage in select(vec![
            "", " ", "stage synthesis", "end sta", "gcn0.w", "gcn0.w 2 2",
            "gcn0.w -1 -1 0.0", "gcn_dims", "fc_dim x", "lorem ipsum",
            "gcn0.w 18446744073709551615 2 1.0",
        ]),
    ) {
        // Overwrite an arbitrary line with structural garbage; the
        // parser may accept documents where the line was redundant, but
        // must never panic, and any accepted document must re-serialize.
        let text = canonical();
        let total = text.lines().count();
        let target = line_pick % total;
        let corrupted: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| format!("{}\n", if i == target { garbage } else { l }))
            .collect();
        if let Ok(snapshot) = ModelSnapshot::from_text(&corrupted) {
            let _ = snapshot.to_text();
        }
    }

    #[test]
    fn single_bit_flips_are_typed_errors(position in 0.0f64..1.0, bit in 0u32..7) {
        // The checksum footer makes every single-byte corruption
        // detectable: FNV-1a's per-byte step is bijective, so two
        // documents differing in one byte can never share a digest.
        // Flips land on bits 0-6 to keep the document valid UTF-8
        // (the canonical format is pure ASCII).
        let text = canonical();
        let index = ((position * text.len() as f64) as usize).min(text.len() - 1);
        let mut bytes = text.into_bytes();
        bytes[index] ^= 1 << bit;
        let corrupted = String::from_utf8(bytes).expect("ASCII stays UTF-8 below bit 7");
        let result = ModelSnapshot::from_text(&corrupted);
        prop_assert!(
            result.is_err(),
            "flipping bit {bit} of byte {index} must be rejected, got Ok"
        );
    }

    #[test]
    fn truncation_after_any_newline_is_a_typed_error(position in 0.0f64..1.0) {
        // Cutting at a line boundary produces a structurally plausible
        // prefix — exactly what a partial download looks like. The
        // parser must still reject it (missing sections or missing
        // checksum), never panic or accept.
        let text = canonical();
        let newlines: Vec<usize> =
            text.bytes().enumerate().filter(|&(_, b)| b == b'\n').map(|(i, _)| i).collect();
        let pick = ((position * newlines.len() as f64) as usize).min(newlines.len() - 1);
        let cut = newlines[pick] + 1;
        if cut == text.len() {
            return; // The full document parses; nothing was truncated.
        }
        let result = ModelSnapshot::from_text(&text[..cut]);
        prop_assert!(
            matches!(result, Err(ServeError::Snapshot { .. })),
            "truncation after newline {pick} must be a typed snapshot error"
        );
    }

    #[test]
    fn random_bytes_never_panic(seed_a in 0u64..u64::MAX, lines in 1usize..20) {
        // Arbitrary printable garbage, sometimes under a valid header.
        let mut state = seed_a | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for with_header in [false, true] {
            let mut doc = String::new();
            if with_header {
                doc.push_str("eda-serve-snapshot v1\n");
            }
            for _ in 0..lines {
                let n = (next() % 24) as usize;
                for _ in 0..n {
                    doc.push(char::from(b' ' + (next() % 95) as u8));
                }
                doc.push('\n');
            }
            let _ = ModelSnapshot::from_text(&doc);
        }
    }
}

#[test]
fn parse_roundtrip_reproduces_canonical_bytes() {
    let text = canonical();
    let parsed = ModelSnapshot::from_text(&text).expect("canonical text parses");
    assert_eq!(parsed.to_text(), text);
}
