//! The joint recipe × VM planning hook.
//!
//! The serving tier stays free of any dependency on the recipe
//! subsystem: it only defines the question ("which recipe *and* which
//! VM shape, for this design, under this deadline?") as a trait over
//! plain types. The production implementation — hybrid predictor over
//! a candidate recipe set feeding the knapsack — lives in
//! `eda-cloud-core`, next to the other workflow glue.

use crate::{ServeDesign, ServeError};

/// The joint answer for one request: a recipe plus a per-stage VM
/// shape, with the planned totals.
#[derive(Debug, Clone, PartialEq)]
pub struct RecipePlanSummary {
    /// Canonical key of the chosen recipe.
    pub recipe: String,
    /// vCPUs per stage (synthesis, placement, routing, STA).
    pub vcpus: [u32; 4],
    /// Planned end-to-end runtime, seconds.
    pub total_runtime_secs: u64,
    /// Planned total cost, USD.
    pub total_cost_usd: f64,
    /// The predictor's synthesis-runtime forecast for the chosen
    /// recipe, milliseconds at 1/2/4/8 vCPUs.
    pub predicted_synth_ms: [u64; 4],
}

/// Strategy for answering [`crate::RequestKind::PlanRecipe`] requests.
///
/// Implementations must be pure functions of their inputs so a served
/// stream replays byte-identically at any worker count.
pub trait RecipePlanner {
    /// Produce a joint plan, `Ok(None)` when no candidate fits the
    /// deadline.
    ///
    /// `stage_secs` is the GCN's per-stage runtime matrix for the
    /// design (stage-major, vCPU-minor at 1/2/4/8) — the planner
    /// typically keeps the non-synthesis rows and substitutes its own
    /// per-recipe synthesis forecasts.
    ///
    /// # Errors
    ///
    /// Implementation-defined planning failures, surfaced as
    /// [`ServeError::Plan`] by convention.
    fn plan_recipe(
        &self,
        design: &ServeDesign,
        stage_secs: &[[f64; 4]; 4],
        deadline_secs: u64,
    ) -> Result<Option<RecipePlanSummary>, ServeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A planner stub is object-safe and can be boxed.
    struct Fixed;
    impl RecipePlanner for Fixed {
        fn plan_recipe(
            &self,
            _design: &ServeDesign,
            _stage_secs: &[[f64; 4]; 4],
            deadline_secs: u64,
        ) -> Result<Option<RecipePlanSummary>, ServeError> {
            Ok(Some(RecipePlanSummary {
                recipe: "balanced".into(),
                vcpus: [4, 4, 4, 4],
                total_runtime_secs: deadline_secs / 2,
                total_cost_usd: 1.0,
                predicted_synth_ms: [4, 3, 2, 2],
            }))
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let planner: Box<dyn RecipePlanner> = Box::new(Fixed);
        let pool = crate::design_pool();
        let plan = planner
            .plan_recipe(&pool[0], &[[1.0; 4]; 4], 100)
            .expect("plan")
            .expect("feasible");
        assert_eq!(plan.total_runtime_secs, 50);
    }
}
