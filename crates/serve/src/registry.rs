//! Versioned model snapshots and the registry that serves them.
//!
//! A [`ModelSnapshot`] bundles the four per-stage runtime predictors
//! (synthesis / placement / routing / STA, mirroring the paper's
//! one-GCN-per-application setup) into one serializable unit. The text
//! format embeds each predictor's canonical weight document
//! (`eda_cloud_gcn::RuntimePredictor::save_weights`) between
//! `stage <name>` / `end <name>` delimiters under an
//! `eda-serve-snapshot v1` header — byte-stable, so equal snapshots
//! serialize to equal bytes and a save → load round trip reproduces
//! bit-identical predictions.
//!
//! The [`ModelRegistry`] keys snapshots by name and monotonically
//! increasing version, the way a production server rolls models
//! forward without dropping in-flight traffic pinned to an older
//! version.

use crate::ServeError;
use eda_cloud_gcn::{GraphBatch, ModelConfig, QuantizedPredictor, RuntimePredictor};
use std::collections::BTreeMap;

/// Stage names in flow order; index-aligned with every `[T; 4]` that
/// crosses this crate's API (predictions, plans, service stages).
pub const STAGE_NAMES: [&str; 4] = ["synthesis", "placement", "routing", "sta"];

/// FNV-1a 64-bit hash — the snapshot-text checksum primitive. Each
/// byte step `h' = (h ^ b) * p` multiplies by an odd prime, which is a
/// bijection on `u64` per input byte, so any single-byte substitution
/// (in particular any single-bit flip) changes the digest.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Split the next `\n`-terminated line off `rest`, tracking byte
/// position (unlike `str::lines`) so the checksum footer can hash the
/// exact preceding bytes.
fn next_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    if rest.is_empty() {
        return None;
    }
    match rest.find('\n') {
        Some(idx) => {
            let line = &rest[..idx];
            *rest = &rest[idx + 1..];
            Some(line)
        }
        None => {
            let line = *rest;
            *rest = "";
            Some(line)
        }
    }
}

/// The four per-stage predictors, frozen for serving.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Synthesis model (consumes the AIG view of a design).
    pub synthesis: RuntimePredictor,
    /// Placement model (consumes the netlist view).
    pub placement: RuntimePredictor,
    /// Routing model.
    pub routing: RuntimePredictor,
    /// STA model.
    pub sta: RuntimePredictor,
}

impl ModelSnapshot {
    /// Bundle four trained predictors in [`STAGE_NAMES`] order.
    #[must_use]
    pub fn new(
        synthesis: RuntimePredictor,
        placement: RuntimePredictor,
        routing: RuntimePredictor,
        sta: RuntimePredictor,
    ) -> Self {
        Self {
            synthesis,
            placement,
            routing,
            sta,
        }
    }

    /// A snapshot of four freshly initialized (untrained) predictors —
    /// deterministic per `(config, seed)`, giving benches and smoke
    /// runs a fast stand-in with the exact serving code path of a
    /// trained model.
    #[must_use]
    pub fn seeded(config: &ModelConfig, seed: u64) -> Self {
        let mut models =
            (0..4u64).map(|k| RuntimePredictor::new(config, seed.wrapping_add(k * 0x9E37)));
        let (s, p, r, t) = (
            models.next().expect("stage"),
            models.next().expect("stage"),
            models.next().expect("stage"),
            models.next().expect("stage"),
        );
        Self::new(s, p, r, t)
    }

    /// The predictor for stage index `k` (see [`STAGE_NAMES`]).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    #[must_use]
    pub fn stage(&self, k: usize) -> &RuntimePredictor {
        match k {
            0 => &self.synthesis,
            1 => &self.placement,
            2 => &self.routing,
            3 => &self.sta,
            _ => panic!("stage index {k} out of range"),
        }
    }

    /// Serialize to the canonical `eda-serve-snapshot v1` text format.
    ///
    /// The document ends with a `checksum <16 hex digits>` footer — an
    /// FNV-1a 64 digest of every preceding byte — so storage-level bit
    /// rot is detected at load instead of silently serving a corrupt
    /// model.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("eda-serve-snapshot v1\n");
        for (k, name) in STAGE_NAMES.iter().enumerate() {
            out.push_str(&format!("stage {name}\n"));
            out.push_str(&self.stage(k).save_weights());
            out.push_str(&format!("end {name}\n"));
        }
        out.push_str(&format!("checksum {:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parse a document produced by [`ModelSnapshot::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snapshot`] on a bad header, missing or
    /// misordered stage delimiters, malformed embedded weights, or a
    /// missing/mismatched `checksum` footer. The checksum is verified
    /// after the structural parse, so structural corruption keeps its
    /// precise message while any surviving bit flip is still rejected.
    pub fn from_text(text: &str) -> Result<Self, ServeError> {
        let err = |m: String| ServeError::Snapshot { message: m };
        let mut rest = text;
        if next_line(&mut rest) != Some("eda-serve-snapshot v1") {
            return Err(err("unknown header".into()));
        }
        let mut stages = Vec::with_capacity(4);
        for name in STAGE_NAMES {
            let open = next_line(&mut rest).unwrap_or_default();
            if open != format!("stage {name}") {
                return Err(err(format!("expected `stage {name}`, found `{open}`")));
            }
            let close = format!("end {name}");
            let mut doc = String::new();
            loop {
                let Some(line) = next_line(&mut rest) else {
                    return Err(err(format!("missing `{close}`")));
                };
                if line == close {
                    break;
                }
                doc.push_str(line);
                doc.push('\n');
            }
            stages.push(RuntimePredictor::load_weights(&doc)?);
        }
        let body_len = text.len() - rest.len();
        let footer = next_line(&mut rest).ok_or_else(|| err("missing `checksum` footer".into()))?;
        let Some(hex) = footer.strip_prefix("checksum ") else {
            return Err(err(format!(
                "expected `checksum <16 hex digits>`, found `{footer}`"
            )));
        };
        if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(err(format!("malformed checksum `{hex}`")));
        }
        let stated = u64::from_str_radix(hex, 16).expect("validated hex");
        if !rest.is_empty() {
            return Err(err("trailing content after checksum footer".into()));
        }
        let computed = fnv1a64(&text.as_bytes()[..body_len]);
        if stated != computed {
            return Err(err(format!(
                "checksum mismatch: stated {stated:016x}, computed {computed:016x}"
            )));
        }
        let mut stages = stages.into_iter();
        let (s, p, r, t) = (
            stages.next().expect("stage"),
            stages.next().expect("stage"),
            stages.next().expect("stage"),
            stages.next().expect("stage"),
        );
        Ok(Self::new(s, p, r, t))
    }

    /// Batched prediction over every stage: `secs[i][k]` is the
    /// saturated `[1, 2, 4, 8]`-vCPU runtime vector of design `i` for
    /// stage `k`. `aig` and `netlist` are the two graph views of the
    /// same designs, index-aligned; synthesis reads the AIG batch, the
    /// other three stages the netlist batch. `workers > 1` fans the
    /// four independent stage forwards over scoped threads — results
    /// are joined by stage index, so the output is bit-identical at
    /// every worker count.
    #[must_use]
    pub fn predict_batches(
        &self,
        aig: &GraphBatch,
        netlist: &GraphBatch,
        workers: usize,
    ) -> Vec<[[f64; 4]; 4]> {
        assert_eq!(aig.len(), netlist.len(), "views must be index-aligned");
        if aig.is_empty() {
            return Vec::new();
        }
        let run_stage = |k: usize| -> Vec<[f64; 4]> {
            let batch = if k == 0 { aig } else { netlist };
            self.stage(k).predict_secs_batch(batch)
        };
        fan_out_stages(&run_stage, aig.len(), workers)
    }
}

/// Run the four independent per-stage forwards, optionally over scoped
/// threads, and join the results **by stage index** — the canonical
/// commit order that keeps the output bit-identical at every worker
/// count. Shared by the float and int8 snapshot types.
fn fan_out_stages<F>(run_stage: &F, len: usize, workers: usize) -> Vec<[[f64; 4]; 4]>
where
    F: Fn(usize) -> Vec<[f64; 4]> + Sync,
{
    let mut per_stage: Vec<Option<Vec<[f64; 4]>>> = vec![None, None, None, None];
    let w = workers.clamp(1, 4);
    if w == 1 {
        for (k, slot) in per_stage.iter_mut().enumerate() {
            *slot = Some(run_stage(k));
        }
    } else {
        let results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w)
                .map(|t| {
                    scope.spawn(move || {
                        (t..4)
                            .step_by(w)
                            .map(|k| (k, run_stage(k)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("stage worker"))
                .collect::<Vec<_>>()
        });
        for (k, secs) in results {
            per_stage[k] = Some(secs);
        }
    }
    let per_stage: Vec<Vec<[f64; 4]>> = per_stage
        .into_iter()
        .map(|s| s.expect("all stages ran"))
        .collect();
    (0..len)
        .map(|i| {
            [
                per_stage[0][i],
                per_stage[1][i],
                per_stage[2][i],
                per_stage[3][i],
            ]
        })
        .collect()
}

/// The four per-stage predictors, quantized to int8 for serving (see
/// [`eda_cloud_gcn::QuantizedPredictor`]). Versioned alongside float
/// snapshots in the [`ModelRegistry`] via [`ServingSnapshot`], so a
/// lifecycle controller can canary a quantized candidate head-to-head
/// against its float primary on the same request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedSnapshot {
    /// Synthesis model (consumes the AIG view of a design).
    pub synthesis: QuantizedPredictor,
    /// Placement model (consumes the netlist view).
    pub placement: QuantizedPredictor,
    /// Routing model.
    pub routing: QuantizedPredictor,
    /// STA model.
    pub sta: QuantizedPredictor,
}

impl QuantizedSnapshot {
    /// Quantize every stage of a float snapshot. Deterministic: the
    /// same float snapshot always produces the same int8 snapshot.
    #[must_use]
    pub fn quantize(snapshot: &ModelSnapshot) -> Self {
        Self {
            synthesis: QuantizedPredictor::quantize(&snapshot.synthesis),
            placement: QuantizedPredictor::quantize(&snapshot.placement),
            routing: QuantizedPredictor::quantize(&snapshot.routing),
            sta: QuantizedPredictor::quantize(&snapshot.sta),
        }
    }

    /// Reconstruct a float snapshot from the dequantized weights — the
    /// warm start used when retraining from a quantized base.
    #[must_use]
    pub fn dequantize(&self) -> ModelSnapshot {
        ModelSnapshot::new(
            self.synthesis.dequantize(),
            self.placement.dequantize(),
            self.routing.dequantize(),
            self.sta.dequantize(),
        )
    }

    /// The predictor for stage index `k` (see [`STAGE_NAMES`]).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 4`.
    #[must_use]
    pub fn stage(&self, k: usize) -> &QuantizedPredictor {
        match k {
            0 => &self.synthesis,
            1 => &self.placement,
            2 => &self.routing,
            3 => &self.sta,
            _ => panic!("stage index {k} out of range"),
        }
    }

    /// Serialize to the canonical `eda-serve-snapshot v2-int8` text
    /// format: the same stage-delimited, checksummed layout as
    /// [`ModelSnapshot::to_text`], embedding each stage's
    /// `gcn-runtime-predictor-q8 v1` weight document.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("eda-serve-snapshot v2-int8\n");
        for (k, name) in STAGE_NAMES.iter().enumerate() {
            out.push_str(&format!("stage {name}\n"));
            out.push_str(&self.stage(k).save_weights());
            out.push_str(&format!("end {name}\n"));
        }
        out.push_str(&format!("checksum {:016x}\n", fnv1a64(out.as_bytes())));
        out
    }

    /// Parse a document produced by [`QuantizedSnapshot::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snapshot`] on a bad header, missing or
    /// misordered stage delimiters, malformed embedded weights, or a
    /// missing/mismatched `checksum` footer.
    pub fn from_text(text: &str) -> Result<Self, ServeError> {
        let err = |m: String| ServeError::Snapshot { message: m };
        let mut rest = text;
        if next_line(&mut rest) != Some("eda-serve-snapshot v2-int8") {
            return Err(err("unknown header".into()));
        }
        let mut stages = Vec::with_capacity(4);
        for name in STAGE_NAMES {
            let open = next_line(&mut rest).unwrap_or_default();
            if open != format!("stage {name}") {
                return Err(err(format!("expected `stage {name}`, found `{open}`")));
            }
            let close = format!("end {name}");
            let mut doc = String::new();
            loop {
                let Some(line) = next_line(&mut rest) else {
                    return Err(err(format!("missing `{close}`")));
                };
                if line == close {
                    break;
                }
                doc.push_str(line);
                doc.push('\n');
            }
            stages.push(QuantizedPredictor::load_weights(&doc)?);
        }
        let body_len = text.len() - rest.len();
        let footer = next_line(&mut rest).ok_or_else(|| err("missing `checksum` footer".into()))?;
        let Some(hex) = footer.strip_prefix("checksum ") else {
            return Err(err(format!(
                "expected `checksum <16 hex digits>`, found `{footer}`"
            )));
        };
        if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(err(format!("malformed checksum `{hex}`")));
        }
        let stated = u64::from_str_radix(hex, 16).expect("validated hex");
        if !rest.is_empty() {
            return Err(err("trailing content after checksum footer".into()));
        }
        let computed = fnv1a64(&text.as_bytes()[..body_len]);
        if stated != computed {
            return Err(err(format!(
                "checksum mismatch: stated {stated:016x}, computed {computed:016x}"
            )));
        }
        let mut stages = stages.into_iter();
        let (s, p, r, t) = (
            stages.next().expect("stage"),
            stages.next().expect("stage"),
            stages.next().expect("stage"),
            stages.next().expect("stage"),
        );
        Ok(Self {
            synthesis: s,
            placement: p,
            routing: r,
            sta: t,
        })
    }

    /// Batched prediction over every stage — same contract and worker
    /// invariance as [`ModelSnapshot::predict_batches`], running the
    /// int8 kernels.
    #[must_use]
    pub fn predict_batches(
        &self,
        aig: &GraphBatch,
        netlist: &GraphBatch,
        workers: usize,
    ) -> Vec<[[f64; 4]; 4]> {
        assert_eq!(aig.len(), netlist.len(), "views must be index-aligned");
        if aig.is_empty() {
            return Vec::new();
        }
        let run_stage = |k: usize| -> Vec<[f64; 4]> {
            let batch = if k == 0 { aig } else { netlist };
            self.stage(k).predict_secs_batch(batch)
        };
        fan_out_stages(&run_stage, aig.len(), workers)
    }
}

/// A snapshot in either numeric format, as stored and served by the
/// [`ModelRegistry`]: the float predictors a trainer produces, or
/// their int8 quantized replica. Everything downstream of the registry
/// — the server, the lifecycle controller's canary router — dispatches
/// through this enum, so a quantized candidate flows through the exact
/// code path of a float one.
#[derive(Debug, Clone)]
pub enum ServingSnapshot {
    /// Full-precision `f64` predictors.
    Float(ModelSnapshot),
    /// Int8 fixed-point predictors.
    Int8(QuantizedSnapshot),
}

impl From<ModelSnapshot> for ServingSnapshot {
    fn from(s: ModelSnapshot) -> Self {
        ServingSnapshot::Float(s)
    }
}

impl From<QuantizedSnapshot> for ServingSnapshot {
    fn from(s: QuantizedSnapshot) -> Self {
        ServingSnapshot::Int8(s)
    }
}

impl ServingSnapshot {
    /// Whether this is the int8 variant.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        matches!(self, ServingSnapshot::Int8(_))
    }

    /// The float snapshot, if this is the float variant.
    #[must_use]
    pub fn as_float(&self) -> Option<&ModelSnapshot> {
        match self {
            ServingSnapshot::Float(s) => Some(s),
            ServingSnapshot::Int8(_) => None,
        }
    }

    /// The quantized snapshot, if this is the int8 variant.
    #[must_use]
    pub fn as_int8(&self) -> Option<&QuantizedSnapshot> {
        match self {
            ServingSnapshot::Float(_) => None,
            ServingSnapshot::Int8(s) => Some(s),
        }
    }

    /// A float snapshot in either case: a clone of the float variant,
    /// or the dequantized reconstruction of the int8 one — the warm
    /// start a retraining loop needs regardless of what is deployed.
    #[must_use]
    pub fn to_float(&self) -> ModelSnapshot {
        match self {
            ServingSnapshot::Float(s) => s.clone(),
            ServingSnapshot::Int8(s) => s.dequantize(),
        }
    }

    /// Dispatching [`ModelSnapshot::predict_batches`] /
    /// [`QuantizedSnapshot::predict_batches`].
    #[must_use]
    pub fn predict_batches(
        &self,
        aig: &GraphBatch,
        netlist: &GraphBatch,
        workers: usize,
    ) -> Vec<[[f64; 4]; 4]> {
        match self {
            ServingSnapshot::Float(s) => s.predict_batches(aig, netlist, workers),
            ServingSnapshot::Int8(s) => s.predict_batches(aig, netlist, workers),
        }
    }

    /// Serialize to the variant's canonical text format; the header
    /// line identifies the variant for [`ServingSnapshot::from_text`].
    #[must_use]
    pub fn to_text(&self) -> String {
        match self {
            ServingSnapshot::Float(s) => s.to_text(),
            ServingSnapshot::Int8(s) => s.to_text(),
        }
    }

    /// Parse either snapshot format, dispatching on the header line.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Snapshot`] for an unknown header or any
    /// error of the variant parser.
    pub fn from_text(text: &str) -> Result<Self, ServeError> {
        if text.starts_with("eda-serve-snapshot v1\n") {
            Ok(ServingSnapshot::Float(ModelSnapshot::from_text(text)?))
        } else if text.starts_with("eda-serve-snapshot v2-int8\n") {
            Ok(ServingSnapshot::Int8(QuantizedSnapshot::from_text(text)?))
        } else {
            Err(ServeError::Snapshot {
                message: "unknown header".into(),
            })
        }
    }
}

/// Canary rollout state for one named model: the candidate version and
/// the deterministic routing fraction (every `every`-th request ordinal
/// goes to the candidate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryState {
    /// Candidate snapshot version.
    pub version: u32,
    /// Route ordinals where `ordinal % every == 0` to the candidate.
    pub every: u64,
}

/// Named, versioned snapshot store. Publishing bumps the version;
/// lookups resolve either the latest or a pinned version. Each name
/// also tracks a **primary** version (what baseline traffic sees) and
/// an optional **canary** — a candidate version receiving a
/// deterministic slice of requests until it is promoted or rolled back.
#[derive(Debug, Clone, Default)]
pub struct ModelRegistry {
    models: BTreeMap<String, Vec<ServingSnapshot>>,
    primary: BTreeMap<String, u32>,
    canary: BTreeMap<String, CanaryState>,
}

impl ModelRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Store a snapshot under `name`; returns its version (1-based,
    /// monotonically increasing per name). The first publish under a
    /// name becomes its primary; later publishes leave the primary
    /// untouched until an explicit [`ModelRegistry::promote`]. Accepts
    /// a float [`ModelSnapshot`], an int8 [`QuantizedSnapshot`], or a
    /// [`ServingSnapshot`] directly.
    pub fn publish(
        &mut self,
        name: impl Into<String>,
        snapshot: impl Into<ServingSnapshot>,
    ) -> u32 {
        let name = name.into();
        let versions = self.models.entry(name.clone()).or_default();
        versions.push(snapshot.into());
        let version = versions.len() as u32;
        self.primary.entry(name).or_insert(version);
        version
    }

    /// The newest snapshot under `name` and its version.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if nothing was published
    /// under `name`.
    pub fn latest(&self, name: &str) -> Result<(u32, &ServingSnapshot), ServeError> {
        let versions = self
            .models
            .get(name)
            .filter(|v| !v.is_empty())
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_owned(),
            })?;
        Ok((versions.len() as u32, versions.last().expect("non-empty")))
    }

    /// A pinned `(name, version)` snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if the name or version does
    /// not exist.
    pub fn get(&self, name: &str, version: u32) -> Result<&ServingSnapshot, ServeError> {
        self.models
            .get(name)
            .and_then(|v| v.get(version.checked_sub(1)? as usize))
            .ok_or_else(|| ServeError::UnknownModel {
                name: format!("{name}@v{version}"),
            })
    }

    /// Registered model names in sorted order.
    #[must_use]
    pub fn names(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// The primary snapshot under `name` and its version — what
    /// baseline (non-canary) traffic is served from.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if nothing was published
    /// under `name`.
    pub fn primary(&self, name: &str) -> Result<(u32, &ServingSnapshot), ServeError> {
        let version = *self
            .primary
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel {
                name: name.to_owned(),
            })?;
        Ok((version, self.get(name, version)?))
    }

    /// Start a canary: route every `every`-th request ordinal under
    /// `name` to snapshot `version`. Replaces any in-flight canary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if `name@version` does not
    /// exist, or [`ServeError::Snapshot`] if `every == 0` or the
    /// candidate is already the primary.
    pub fn set_canary(&mut self, name: &str, version: u32, every: u64) -> Result<(), ServeError> {
        if every == 0 {
            return Err(ServeError::Snapshot {
                message: "canary `every` must be > 0".into(),
            });
        }
        let _ = self.get(name, version)?;
        let (primary_version, _) = self.primary(name)?;
        if version == primary_version {
            return Err(ServeError::Snapshot {
                message: format!("{name}@v{version} is already primary"),
            });
        }
        self.canary
            .insert(name.to_owned(), CanaryState { version, every });
        Ok(())
    }

    /// The in-flight canary for `name`, if any.
    #[must_use]
    pub fn canary(&self, name: &str) -> Option<CanaryState> {
        self.canary.get(name).copied()
    }

    /// Abort the canary for `name` (rollback); baseline traffic was
    /// never moved, so this only stops the candidate's request slice.
    /// Returns the aborted state, or `None` if no canary was in flight.
    pub fn clear_canary(&mut self, name: &str) -> Option<CanaryState> {
        self.canary.remove(name)
    }

    /// Promote `version` to primary for `name`, clearing any canary.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if `name@version` does not
    /// exist.
    pub fn promote(&mut self, name: &str, version: u32) -> Result<(), ServeError> {
        let _ = self.get(name, version)?;
        self.primary.insert(name.to_owned(), version);
        self.canary.remove(name);
        Ok(())
    }

    /// Resolve the snapshot serving request `ordinal` under `name`:
    /// the canary candidate when one is in flight and
    /// `ordinal % every == 0`, the primary otherwise. Deterministic in
    /// `ordinal`, so the same request stream always splits the same way.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::UnknownModel`] if nothing was published
    /// under `name`.
    pub fn route(&self, name: &str, ordinal: u64) -> Result<(u32, &ServingSnapshot), ServeError> {
        if let Some(state) = self.canary.get(name) {
            if ordinal.is_multiple_of(state.every) {
                return Ok((state.version, self.get(name, state.version)?));
            }
        }
        self.primary(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_gcn::GraphSample;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample() -> GraphSample {
        let g = DesignGraph::from_aig(&generators::adder(4));
        GraphSample::new(&g, [1.0; 4])
    }

    #[test]
    fn snapshot_text_roundtrip_is_bit_identical() {
        let snap = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
        let text = snap.to_text();
        let loaded = ModelSnapshot::from_text(&text).expect("parses");
        assert_eq!(
            loaded.to_text(),
            text,
            "canonical bytes survive the round trip"
        );
        let s = sample();
        for k in 0..4 {
            assert_eq!(
                loaded.stage(k).predict_log(&s),
                snap.stage(k).predict_log(&s),
                "stage {k} predictions must be bit-identical"
            );
        }
    }

    #[test]
    fn snapshot_rejects_malformed_documents() {
        assert!(ModelSnapshot::from_text("nonsense").is_err());
        let snap = ModelSnapshot::seeded(&ModelConfig::fast(), 1);
        let text = snap.to_text();
        let truncated = &text[..text.len() / 2];
        assert!(ModelSnapshot::from_text(truncated).is_err());
        let swapped = text.replace("stage placement", "stage routing");
        let e = ModelSnapshot::from_text(&swapped).unwrap_err();
        assert!(e.to_string().contains("placement"), "{e}");
    }

    #[test]
    fn snapshot_checksum_footer_guards_the_document() {
        let snap = ModelSnapshot::seeded(&ModelConfig::fast(), 2);
        let text = snap.to_text();
        assert!(text.ends_with('\n'));
        let footer = text.lines().last().expect("non-empty");
        assert!(
            footer.starts_with("checksum "),
            "canonical text ends with the footer: {footer}"
        );

        // Missing footer, corrupted footer, and trailing bytes are all
        // typed errors.
        let without = text
            .strip_suffix(&format!("{footer}\n"))
            .expect("footer is last");
        let e = ModelSnapshot::from_text(without).unwrap_err();
        assert!(e.to_string().contains("checksum"), "{e}");
        let e = ModelSnapshot::from_text(&format!("{text}extra\n")).unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        let zeroed = text.replace(footer, "checksum 0000000000000000");
        let e = ModelSnapshot::from_text(&zeroed).unwrap_err();
        assert!(e.to_string().contains("mismatch"), "{e}");

        // A digit substitution in the body (which still parses as a
        // number) is caught by the digest even though the structure is
        // intact.
        let body_end = text.len() - footer.len() - 1;
        let digit = text[..body_end]
            .rfind(['1', '2', '3'])
            .expect("a digit exists");
        let mut flipped = text.into_bytes();
        flipped[digit] = if flipped[digit] == b'1' { b'7' } else { b'1' };
        let flipped = String::from_utf8(flipped).expect("ascii-safe edit");
        assert!(
            ModelSnapshot::from_text(&flipped).is_err(),
            "bit rot must not load"
        );
    }

    #[test]
    fn registry_versions_and_lookups() {
        let mut reg = ModelRegistry::new();
        assert!(reg.latest("prod").is_err());
        let v1 = reg.publish("prod", ModelSnapshot::seeded(&ModelConfig::fast(), 1));
        let v2 = reg.publish("prod", ModelSnapshot::seeded(&ModelConfig::fast(), 2));
        assert_eq!((v1, v2), (1, 2));
        let (latest, _) = reg.latest("prod").expect("published");
        assert_eq!(latest, 2);
        let s = sample();
        let pinned = reg
            .get("prod", 1)
            .expect("v1 kept")
            .as_float()
            .expect("float snapshot");
        let fresh = ModelSnapshot::seeded(&ModelConfig::fast(), 1);
        assert_eq!(
            pinned.stage(0).predict_log(&s),
            fresh.stage(0).predict_log(&s)
        );
        assert!(reg.get("prod", 3).is_err());
        assert!(reg.get("prod", 0).is_err());
        assert_eq!(reg.names(), vec!["prod"]);
    }

    #[test]
    fn canary_routing_promote_and_rollback() {
        let mut reg = ModelRegistry::new();
        reg.publish("prod", ModelSnapshot::seeded(&ModelConfig::fast(), 1));
        let v2 = reg.publish("prod", ModelSnapshot::seeded(&ModelConfig::fast(), 2));
        // First publish is primary; the second is not until promoted.
        assert_eq!(reg.primary("prod").expect("primary").0, 1);
        assert!(reg.canary("prod").is_none());

        // Invalid canaries are typed errors.
        assert!(reg.set_canary("prod", v2, 0).is_err());
        assert!(reg.set_canary("prod", 9, 4).is_err());
        assert!(
            reg.set_canary("prod", 1, 4).is_err(),
            "primary can't canary itself"
        );
        assert!(reg.set_canary("nope", 1, 4).is_err());

        reg.set_canary("prod", v2, 4).expect("canary starts");
        assert_eq!(
            reg.canary("prod"),
            Some(CanaryState {
                version: 2,
                every: 4
            })
        );
        // Deterministic split: multiples of `every` hit the candidate.
        for ordinal in 0..12u64 {
            let (version, _) = reg.route("prod", ordinal).expect("routes");
            assert_eq!(
                version,
                if ordinal % 4 == 0 { 2 } else { 1 },
                "ordinal {ordinal}"
            );
        }

        // Rollback: candidate slice stops, primary unchanged.
        let aborted = reg.clear_canary("prod").expect("was in flight");
        assert_eq!(aborted.version, 2);
        assert_eq!(reg.route("prod", 0).expect("routes").0, 1);

        // Promote: primary moves, canary (restarted first) clears.
        reg.set_canary("prod", v2, 4).expect("canary restarts");
        reg.promote("prod", v2).expect("promotes");
        assert_eq!(reg.primary("prod").expect("primary").0, 2);
        assert!(reg.canary("prod").is_none());
        assert_eq!(reg.route("prod", 3).expect("routes").0, 2);
        assert!(reg.promote("prod", 9).is_err());
    }

    #[test]
    fn batched_predictions_are_worker_invariant() {
        let snap = ModelSnapshot::seeded(&ModelConfig::fast(), 3);
        let samples: Vec<GraphSample> = ["adder", "parity", "max"]
            .iter()
            .map(|f| {
                let aig = generators::build_family(f, 5).expect("family");
                GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4])
            })
            .collect();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let batch = GraphBatch::pack(&refs);
        let one = snap.predict_batches(&batch, &batch, 1);
        for workers in [2usize, 4, 8] {
            assert_eq!(
                snap.predict_batches(&batch, &batch, workers),
                one,
                "workers {workers}"
            );
        }
        // And each row matches the unbatched per-stage prediction.
        for (i, s) in samples.iter().enumerate() {
            for (k, stage_pred) in one[i].iter().enumerate() {
                assert_eq!(*stage_pred, snap.stage(k).predict_secs(s));
            }
        }
    }

    #[test]
    fn quantized_snapshot_roundtrip_is_bit_identical() {
        let float = ModelSnapshot::seeded(&ModelConfig::fast(), 11);
        let snap = QuantizedSnapshot::quantize(&float);
        let text = snap.to_text();
        assert!(text.starts_with("eda-serve-snapshot v2-int8\n"));
        let loaded = QuantizedSnapshot::from_text(&text).expect("parses");
        assert_eq!(loaded, snap, "weights survive the round trip exactly");
        assert_eq!(
            loaded.to_text(),
            text,
            "canonical bytes survive the round trip"
        );
        let s = sample();
        for k in 0..4 {
            assert_eq!(
                loaded.stage(k).predict_log(&s),
                snap.stage(k).predict_log(&s),
                "stage {k} predictions must be bit-identical"
            );
        }
    }

    #[test]
    fn quantized_snapshot_rejects_malformed_documents() {
        assert!(QuantizedSnapshot::from_text("nonsense").is_err());
        let snap = QuantizedSnapshot::quantize(&ModelSnapshot::seeded(&ModelConfig::fast(), 4));
        let text = snap.to_text();
        assert!(QuantizedSnapshot::from_text(&text[..text.len() / 2]).is_err());
        let swapped = text.replace("stage placement", "stage routing");
        let e = QuantizedSnapshot::from_text(&swapped).unwrap_err();
        assert!(e.to_string().contains("placement"), "{e}");
        let footer = text.lines().last().expect("non-empty");
        let zeroed = text.replace(footer, "checksum 0000000000000000");
        let e = QuantizedSnapshot::from_text(&zeroed).unwrap_err();
        assert!(e.to_string().contains("mismatch"), "{e}");
        let e = QuantizedSnapshot::from_text(&format!("{text}extra\n")).unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
        // The float parser refuses the int8 header and vice versa.
        assert!(ModelSnapshot::from_text(&text).is_err());
        let float_text = ModelSnapshot::seeded(&ModelConfig::fast(), 4).to_text();
        assert!(QuantizedSnapshot::from_text(&float_text).is_err());
    }

    #[test]
    fn quantized_batched_predictions_are_worker_invariant() {
        let float = ModelSnapshot::seeded(&ModelConfig::fast(), 5);
        let snap = QuantizedSnapshot::quantize(&float);
        let samples: Vec<GraphSample> = ["adder", "parity", "multiplier"]
            .iter()
            .map(|f| {
                let aig = generators::build_family(f, 5).expect("family");
                GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4])
            })
            .collect();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let batch = GraphBatch::pack(&refs);
        let one = snap.predict_batches(&batch, &batch, 1);
        for workers in [2usize, 4, 8] {
            assert_eq!(
                snap.predict_batches(&batch, &batch, workers),
                one,
                "workers {workers}"
            );
        }
        for row in &one {
            for stage in row {
                assert!(stage.iter().all(|v| v.is_finite() && *v > 0.0));
            }
        }
    }

    #[test]
    fn serving_snapshot_dispatches_both_formats() {
        let float = ModelSnapshot::seeded(&ModelConfig::fast(), 6);
        let quant = QuantizedSnapshot::quantize(&float);
        let sf = ServingSnapshot::from(float.clone());
        let sq = ServingSnapshot::from(quant.clone());
        assert!(!sf.is_quantized() && sq.is_quantized());
        assert!(sf.as_float().is_some() && sf.as_int8().is_none());
        assert!(sq.as_int8().is_some() && sq.as_float().is_none());

        // Text round trip picks the right parser from the header.
        let back = ServingSnapshot::from_text(&sf.to_text()).expect("float parses");
        assert!(!back.is_quantized());
        assert_eq!(back.to_text(), sf.to_text());
        let back = ServingSnapshot::from_text(&sq.to_text()).expect("int8 parses");
        assert!(back.is_quantized());
        assert_eq!(back.to_text(), sq.to_text());
        assert!(ServingSnapshot::from_text("eda-serve-snapshot v9\n").is_err());

        // to_float: identity for floats, dequantize for int8 — and
        // re-quantizing the dequantized weights reproduces the codes.
        assert_eq!(sf.to_float().to_text(), float.to_text());
        assert_eq!(QuantizedSnapshot::quantize(&sq.to_float()), quant);

        // A registry holds both variants side by side.
        let mut reg = ModelRegistry::new();
        let v1 = reg.publish("prod", float);
        let v2 = reg.publish("prod", quant);
        assert!(!reg.get("prod", v1).expect("v1").is_quantized());
        assert!(reg.get("prod", v2).expect("v2").is_quantized());
    }
}
