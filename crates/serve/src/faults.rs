//! Trait-based fault hooks for the serving tier.
//!
//! The simtest harness (and any future chaos rig) injects faults
//! through this trait instead of patching the server: every hook is a
//! pure function of canonical request identity (the arrival ordinal),
//! never of wall-clock or thread schedule, so an injected fault plan
//! replays byte-identically at any worker count. The default
//! implementation of every hook is "no fault", and the server's
//! default hook object is [`NoServeFaults`], so production behavior is
//! unchanged unless a harness explicitly attaches hooks.

use std::sync::Arc;

/// Fault hooks consulted by [`crate::Server`] at deterministic
/// decision points in the serving loop.
pub trait ServeFaults: Send + Sync {
    /// Shed the arrival with this ordinal at admission even if the
    /// queue has room — an injected overload burst. The request is
    /// rejected exactly as a capacity shed (typed outcome, counted,
    /// traced), so conservation invariants still hold.
    fn force_shed(&self, ordinal: u64) -> bool {
        let _ = ordinal;
        false
    }

    /// Wipe the result cache immediately before admitting this
    /// ordinal — a cold-restart / cache-eviction-storm fault. Hit and
    /// miss counters survive the wipe.
    fn wipe_cache(&self, ordinal: u64) -> bool {
        let _ = ordinal;
        false
    }
}

/// The no-fault default: every hook answers "no".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoServeFaults;

impl ServeFaults for NoServeFaults {}

/// A shared, immutable hook object (hooks take `&self` so one plan can
/// be consulted from any number of runs concurrently).
pub type SharedServeFaults = Arc<dyn ServeFaults>;

/// Fault hooks on the ingestion path, consulted for every
/// [`crate::RequestKind::Ingest`] request by ordinal. Same contract as
/// [`ServeFaults`]: pure functions of canonical identity, so plans
/// replay byte-identically at any worker count.
pub trait IngestFaults: Send + Sync {
    /// Tear this ordinal's upload in transit (the server substitutes
    /// [`crate::UploadDoc::corrupted`] before consulting the ingest
    /// cache) — a corrupted-transfer fault. The torn document has its
    /// own fingerprint, so it is cached and judged on its own content.
    fn corrupt_upload(&self, ordinal: u64) -> bool {
        let _ = ordinal;
        false
    }

    /// Reject this ordinal's upload outright *without caching the
    /// rejection* — an ingest-flood control decision. The request
    /// completes quarantined; a later clean upload of the same content
    /// still ingests normally.
    fn flood(&self, ordinal: u64) -> bool {
        let _ = ordinal;
        false
    }
}

/// The no-fault default for the ingestion path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoIngestFaults;

impl IngestFaults for NoIngestFaults {}

/// A shared, immutable ingest hook object.
pub type SharedIngestFaults = Arc<dyn IngestFaults>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_inert() {
        let faults = NoServeFaults;
        assert!(!faults.force_shed(0));
        assert!(!faults.wipe_cache(0));
        let shared: SharedServeFaults = Arc::new(NoServeFaults);
        assert!(!shared.force_shed(123));
        let ingest: SharedIngestFaults = Arc::new(NoIngestFaults);
        assert!(!ingest.corrupt_upload(0));
        assert!(!ingest.flood(0));
    }
}
