//! Requests, designs, and the seeded synthetic workload.

use eda_cloud_fleet::poisson_arrivals;
use eda_cloud_gcn::GraphSample;
use eda_cloud_netlist::{generators, DesignGraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// A design as the server sees it: its two graph views plus a
/// structural fingerprint used as the result-cache key.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeDesign {
    /// Design name (diagnostic only; the fingerprint is the identity).
    pub name: String,
    /// AIG view, consumed by the synthesis predictor.
    pub aig: GraphSample,
    /// Netlist view, consumed by placement / routing / STA predictors.
    pub netlist: GraphSample,
    /// FNV-1a over the name and both views' node counts and features.
    pub fingerprint: u64,
}

impl ServeDesign {
    /// Build a design and fingerprint it.
    #[must_use]
    pub fn new(name: impl Into<String>, aig: GraphSample, netlist: GraphSample) -> Self {
        let name = name.into();
        let fingerprint = fingerprint_views(&name, &aig, &netlist);
        Self { name, aig, netlist, fingerprint }
    }
}

/// FNV-1a over the design name and the raw feature bytes of both graph
/// views — two designs collide only if they are structurally identical
/// under the GCN's featurization, in which case sharing a cached
/// prediction is exactly right.
fn fingerprint_views(name: &str, aig: &GraphSample, netlist: &GraphSample) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in name.bytes() {
        mix(byte);
    }
    for view in [aig, netlist] {
        mix(0xFF); // view separator
        for byte in (view.node_count() as u64).to_le_bytes() {
            mix(byte);
        }
        for v in view.features.data() {
            for byte in v.to_bits().to_le_bytes() {
                mix(byte);
            }
        }
    }
    h
}

/// An untrusted external design document as uploaded: raw text plus a
/// content fingerprint that keys the ingest cache. The server never
/// interprets the text itself — an attached [`crate::Ingestor`] does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UploadDoc {
    /// Client-supplied design name (diagnostic only).
    pub name: String,
    /// Interchange format tag (e.g. `"blif"`, `"verilog"`,
    /// `"bookshelf"`), forwarded to the ingestor untouched.
    pub format: String,
    /// The raw uploaded text.
    pub text: String,
    /// FNV-1a over the format tag and the raw bytes; two uploads share
    /// an ingest-cache entry only if they are byte-identical.
    pub fingerprint: u64,
}

impl UploadDoc {
    /// Wrap an upload and fingerprint its content.
    #[must_use]
    pub fn new(name: impl Into<String>, format: impl Into<String>, text: impl Into<String>) -> Self {
        let (name, format, text) = (name.into(), format.into(), text.into());
        let fingerprint = fingerprint_upload(&format, &text);
        Self { name, format, text, fingerprint }
    }

    /// A deterministically torn copy of this upload: the text cut at
    /// the midpoint (snapped forward to a char boundary), refingerprinted.
    /// Fault harnesses use this to model a corrupted transfer.
    #[must_use]
    pub fn corrupted(&self) -> Self {
        let mut cut = self.text.len() / 2;
        while cut < self.text.len() && !self.text.is_char_boundary(cut) {
            cut += 1;
        }
        Self::new(self.name.clone(), self.format.clone(), &self.text[..cut])
    }
}

/// FNV-1a over the format tag, a separator, and the raw upload bytes.
fn fingerprint_upload(format: &str, text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    for byte in format.bytes() {
        mix(byte);
    }
    mix(0xFF);
    for byte in text.bytes() {
        mix(byte);
    }
    h
}

/// What the caller wants back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Per-stage runtime predictions only.
    Predict,
    /// Predictions plus an MCKP deployment plan under a flow deadline.
    Plan {
        /// Total-flow-runtime budget handed to the knapsack, seconds.
        budget_secs: u64,
    },
    /// Predictions plus a joint recipe × VM plan: the recipe planner
    /// ranks a candidate recipe set with the hybrid predictor and
    /// hands the (recipe, stage-runtime) matrix to the knapsack.
    PlanRecipe {
        /// Total-flow-runtime deadline for the joint plan, seconds.
        deadline_secs: u64,
    },
    /// Parse, validate, and predict for the request's attached
    /// [`UploadDoc`]; the `design` field is ignored. Requires an
    /// [`crate::Ingestor`] on the server.
    Ingest,
}

/// One request in the stream.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Logical arrival ordinal — span identity and the queue tiebreak.
    pub ordinal: u64,
    /// Arrival time on the simulated clock, µs.
    pub arrival_us: u64,
    /// Absolute response deadline on the simulated clock, µs; earlier
    /// deadlines are served first.
    pub deadline_us: u64,
    /// Prediction only, or prediction + plan.
    pub kind: RequestKind,
    /// The design to predict for (shared — many requests may reference
    /// one pooled design).
    pub design: Arc<ServeDesign>,
    /// For [`RequestKind::Ingest`] requests, the uploaded document;
    /// `None` for every other kind.
    pub upload: Option<Arc<UploadDoc>>,
}

/// Synthetic open-loop workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of requests in the stream.
    pub requests: usize,
    /// Mean arrival rate, requests per second (Poisson process).
    pub rate_per_sec: f64,
    /// Seed for arrivals, design choice, deadlines, and request kinds.
    pub seed: u64,
    /// Response-deadline window after arrival, milliseconds (inclusive
    /// of `min`, exclusive of `max`).
    pub min_deadline_ms: u64,
    /// Upper edge of the deadline window, ms.
    pub max_deadline_ms: u64,
    /// Every `plan_every`-th draw (in expectation) asks for a plan; 0
    /// disables planning requests.
    pub plan_every: u64,
    /// Every `recipe_every`-th draw (in expectation) asks for a joint
    /// recipe × VM plan; 0 (the default) disables recipe requests and
    /// leaves the request stream byte-identical to earlier releases.
    pub recipe_every: u64,
    /// Every `ingest_every`-th draw (in expectation) is an upload of
    /// one of the documents handed to
    /// [`synthetic_requests_with_uploads`]; 0 (the default) disables
    /// ingest requests and draws nothing extra from the stream.
    pub ingest_every: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            requests: 64,
            rate_per_sec: 200.0,
            seed: 7,
            min_deadline_ms: 30,
            max_deadline_ms: 250,
            plan_every: 4,
            recipe_every: 0,
            ingest_every: 0,
        }
    }
}

/// Families × sizes backing the synthetic design pool. Small designs
/// keep the forward passes fast; the pool is larger than a typical
/// batch so both cache hits and misses occur.
const POOL_FAMILIES: [&str; 6] = ["adder", "parity", "comparator", "max", "gray2bin", "hamming"];
const POOL_SIZES: [u32; 3] = [4, 6, 8];

/// The deterministic design pool the synthetic workload draws from.
/// Both graph views are derived from the AIG (the standalone service
/// has no synthesis engine; `eda-cloud-core` substitutes real
/// synthesized netlist views when it acts as the traffic source).
#[must_use]
pub fn design_pool() -> Vec<Arc<ServeDesign>> {
    let mut pool = Vec::with_capacity(POOL_FAMILIES.len() * POOL_SIZES.len());
    for family in POOL_FAMILIES {
        for size in POOL_SIZES {
            let aig = generators::build_family(family, size).expect("known family");
            let graph = DesignGraph::from_aig(&aig);
            let view = || GraphSample::new(&graph, [1.0; 4]);
            pool.push(Arc::new(ServeDesign::new(
                format!("{family}{size}"),
                view(),
                view(),
            )));
        }
    }
    pool
}

/// Generate a seeded request stream over `pool`: Poisson arrivals at
/// `rate_per_sec`, uniform deadline windows, and a seeded Predict/Plan
/// mix. All randomness is drawn serially from one ChaCha8 stream, so
/// `(pool, config)` fully determines the stream.
///
/// # Panics
///
/// Panics if the pool is empty or the deadline window is empty.
#[must_use]
pub fn synthetic_requests(pool: &[Arc<ServeDesign>], config: &WorkloadConfig) -> Vec<ServeRequest> {
    synthetic_requests_with_uploads(pool, &[], config)
}

/// [`synthetic_requests`] plus an upload corpus: when
/// `config.ingest_every > 0` and `uploads` is non-empty, an expected
/// 1-in-`ingest_every` of the non-plan draws becomes a
/// [`RequestKind::Ingest`] carrying a seeded draw from `uploads`. With
/// the knob at its default 0 no extra randomness is drawn, so the
/// stream stays byte-identical to [`synthetic_requests`].
///
/// # Panics
///
/// Panics if the pool is empty or the deadline window is empty.
#[must_use]
pub fn synthetic_requests_with_uploads(
    pool: &[Arc<ServeDesign>],
    uploads: &[Arc<UploadDoc>],
    config: &WorkloadConfig,
) -> Vec<ServeRequest> {
    assert!(!pool.is_empty(), "design pool must not be empty");
    assert!(
        config.min_deadline_ms < config.max_deadline_ms,
        "deadline window must be non-empty"
    );
    let arrivals = poisson_arrivals(config.requests, config.rate_per_sec * 3600.0, config.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5E4E);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, arrival_secs)| {
            let arrival_us = (arrival_secs * 1e6).round() as u64;
            let design = pool[rng.gen_range(0..pool.len())].clone();
            let window_ms = rng.gen_range(config.min_deadline_ms..config.max_deadline_ms);
            let mut upload = None;
            let kind = if config.plan_every > 0 && rng.gen_range(0..config.plan_every) == 0 {
                RequestKind::Plan { budget_secs: rng.gen_range(6_000u64..20_000) }
            } else if config.recipe_every > 0 && rng.gen_range(0..config.recipe_every) == 0 {
                // Guarded by `recipe_every > 0` so the default stream
                // draws nothing extra and stays byte-identical.
                RequestKind::PlanRecipe { deadline_secs: rng.gen_range(6_000u64..20_000) }
            } else if config.ingest_every > 0
                && !uploads.is_empty()
                && rng.gen_range(0..config.ingest_every) == 0
            {
                // Same guard discipline as `recipe_every`.
                upload = Some(uploads[rng.gen_range(0..uploads.len())].clone());
                RequestKind::Ingest
            } else {
                RequestKind::Predict
            };
            ServeRequest {
                ordinal: i as u64,
                arrival_us,
                deadline_us: arrival_us + window_ms * 1_000,
                kind,
                design,
                upload,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_ordered() {
        let pool = design_pool();
        let config = WorkloadConfig::default();
        let a = synthetic_requests(&pool, &config);
        let b = synthetic_requests(&pool, &config);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ordinal, y.ordinal);
            assert_eq!(x.arrival_us, y.arrival_us);
            assert_eq!(x.deadline_us, y.deadline_us);
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.design.fingerprint, y.design.fingerprint);
        }
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(a.iter().all(|r| r.deadline_us > r.arrival_us));
        assert!(a.iter().any(|r| matches!(r.kind, RequestKind::Plan { .. })));
        assert!(a.iter().any(|r| r.kind == RequestKind::Predict));
    }

    #[test]
    fn recipe_requests_are_off_by_default_and_guarded() {
        let pool = design_pool();
        let default_stream = synthetic_requests(&pool, &WorkloadConfig::default());
        assert!(
            !default_stream
                .iter()
                .any(|r| matches!(r.kind, RequestKind::PlanRecipe { .. })),
            "recipe_every = 0 must draw nothing extra"
        );
        let config = WorkloadConfig { recipe_every: 2, ..WorkloadConfig::default() };
        let stream = synthetic_requests(&pool, &config);
        assert!(stream
            .iter()
            .any(|r| matches!(r.kind, RequestKind::PlanRecipe { .. })));
        // Deterministic under the new draw too.
        let again = synthetic_requests(&pool, &config);
        for (x, y) in stream.iter().zip(&again) {
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn ingest_requests_are_off_by_default_and_guarded() {
        let pool = design_pool();
        let uploads = vec![
            Arc::new(UploadDoc::new("a", "blif", ".model a\n.end\n")),
            Arc::new(UploadDoc::new("b", "verilog", "module b; endmodule\n")),
        ];
        let default_stream =
            synthetic_requests_with_uploads(&pool, &uploads, &WorkloadConfig::default());
        let plain = synthetic_requests(&pool, &WorkloadConfig::default());
        assert_eq!(default_stream.len(), plain.len());
        for (x, y) in default_stream.iter().zip(&plain) {
            assert_eq!(x.kind, y.kind, "ingest_every = 0 must draw nothing extra");
            assert_eq!(x.arrival_us, y.arrival_us);
            assert!(x.upload.is_none());
        }
        let config = WorkloadConfig { ingest_every: 2, ..WorkloadConfig::default() };
        let stream = synthetic_requests_with_uploads(&pool, &uploads, &config);
        let ingests: Vec<_> = stream.iter().filter(|r| r.kind == RequestKind::Ingest).collect();
        assert!(!ingests.is_empty(), "ingest_every = 2 over 64 requests draws some");
        assert!(ingests.iter().all(|r| r.upload.is_some()));
        let again = synthetic_requests_with_uploads(&pool, &uploads, &config);
        for (x, y) in stream.iter().zip(&again) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(
                x.upload.as_ref().map(|u| u.fingerprint),
                y.upload.as_ref().map(|u| u.fingerprint)
            );
        }
        // Without an upload corpus the knob is inert, not a panic.
        let bare = synthetic_requests_with_uploads(&pool, &[], &config);
        assert!(bare.iter().all(|r| r.kind != RequestKind::Ingest));
    }

    #[test]
    fn upload_fingerprints_separate_content_and_format() {
        let a = UploadDoc::new("x", "blif", ".model x\n");
        let same = UploadDoc::new("renamed", "blif", ".model x\n");
        assert_eq!(a.fingerprint, same.fingerprint, "name is diagnostic only");
        let other_text = UploadDoc::new("x", "blif", ".model y\n");
        assert_ne!(a.fingerprint, other_text.fingerprint);
        let other_format = UploadDoc::new("x", "verilog", ".model x\n");
        assert_ne!(a.fingerprint, other_format.fingerprint);
    }

    #[test]
    fn corrupted_uploads_are_torn_and_refingerprinted() {
        let doc = UploadDoc::new("x", "blif", ".model x\n.inputs a\n.outputs y\n.end\n");
        let torn = doc.corrupted();
        assert!(torn.text.len() < doc.text.len());
        assert_ne!(torn.fingerprint, doc.fingerprint);
        assert_eq!(doc.corrupted(), doc.corrupted(), "deterministic");
        // Multi-byte content never tears mid-char.
        let uni = UploadDoc::new("u", "blif", "désign—π");
        let _ = uni.corrupted(); // must not panic
    }

    #[test]
    fn different_seeds_differ() {
        let pool = design_pool();
        let a = synthetic_requests(&pool, &WorkloadConfig { seed: 1, ..Default::default() });
        let b = synthetic_requests(&pool, &WorkloadConfig { seed: 2, ..Default::default() });
        assert!(a.iter().zip(&b).any(|(x, y)| x.arrival_us != y.arrival_us));
    }

    #[test]
    fn fingerprints_separate_distinct_designs() {
        let pool = design_pool();
        let mut prints: Vec<u64> = pool.iter().map(|d| d.fingerprint).collect();
        prints.sort_unstable();
        prints.dedup();
        assert_eq!(prints.len(), pool.len(), "all pool designs distinct");
    }
}
