//! Deployment planning behind the serving API.
//!
//! The server itself is planner-agnostic: anything implementing
//! [`Planner`] can turn a design's per-stage runtime predictions into a
//! deployment plan. [`CostTablePlanner`] is the built-in
//! implementation — a flat hourly-rate table fed to the exact MCKP
//! solver — and `eda-cloud-core` adapts its catalog-backed
//! `Workflow::plan_deployment` to the same trait, so the service can
//! run standalone or on the full pricing model.

use crate::{ServeError, STAGE_NAMES};
use eda_cloud_mckp::{Choice, Objective, Solver, Stage};

/// The swept vCPU counts, index-aligned with every `[f64; 4]` runtime
/// vector in this crate.
pub const VCPUS: [u32; 4] = [1, 2, 4, 8];

/// A solved deployment: one vCPU size per stage plus the totals.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSummary {
    /// Selected vCPU count per stage, in [`STAGE_NAMES`] order.
    pub vcpus: [u32; 4],
    /// Total flow runtime of the selection, whole seconds.
    pub total_runtime_secs: u64,
    /// Total cost of the selection, USD.
    pub total_cost_usd: f64,
}

/// Turns per-stage runtime predictions into a deployment plan.
pub trait Planner {
    /// Plan a deployment for one design. `stage_secs[k]` holds stage
    /// `k`'s predicted runtimes at [`VCPUS`]; `budget_secs` bounds the
    /// total flow runtime. `Ok(None)` means no selection meets the
    /// budget.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Plan`] when the instance is malformed
    /// (e.g. non-finite costs from a corrupt rate table).
    fn plan(
        &self,
        stage_secs: &[[f64; 4]; 4],
        budget_secs: u64,
    ) -> Result<Option<PlanSummary>, ServeError>;
}

/// A planner pricing each stage from a flat hourly-rate table,
/// per-second billing, solved exactly with the MCKP dynamic program.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTablePlanner {
    /// `hourly_usd[k][j]`: hourly rate of stage `k` on `VCPUS[j]`.
    pub hourly_usd: [[f64; 4]; 4],
}

impl CostTablePlanner {
    /// AWS-shaped default rates: synthesis and STA on general-purpose
    /// prices, placement on memory-optimized, routing on
    /// compute-optimized — linear in vCPU count, like the m5/r5/c5
    /// ladders.
    #[must_use]
    pub fn aws_like() -> Self {
        let ladder = |base: f64| [base, base * 2.0, base * 4.0, base * 8.0];
        Self {
            hourly_usd: [
                ladder(0.096), // synthesis: m5-shaped
                ladder(0.126), // placement: r5-shaped
                ladder(0.085), // routing: c5-shaped
                ladder(0.096), // sta: m5-shaped
            ],
        }
    }
}

impl Planner for CostTablePlanner {
    fn plan(
        &self,
        stage_secs: &[[f64; 4]; 4],
        budget_secs: u64,
    ) -> Result<Option<PlanSummary>, ServeError> {
        let stages: Vec<Stage> = STAGE_NAMES
            .iter()
            .enumerate()
            .map(|(k, name)| {
                let choices = VCPUS
                    .iter()
                    .enumerate()
                    .map(|(j, &vcpus)| {
                        let secs = stage_secs[k][j].max(0.0);
                        // Per-second billing on the hourly rate; whole-
                        // second runtimes as the knapsack requires.
                        let cost = self.hourly_usd[k][j] * secs / 3600.0;
                        Choice::new(format!("{vcpus} vCPU"), secs.ceil() as u64, cost)
                    })
                    .collect();
                Stage::new(*name, choices)
            })
            .collect();
        let Some(selection) = Solver::new().solve_stages(&stages, budget_secs, Objective::MinCost)?
        else {
            return Ok(None);
        };
        let mut vcpus = [0u32; 4];
        for (k, &pick) in selection.picks.iter().enumerate() {
            vcpus[k] = VCPUS[pick];
        }
        Ok(Some(PlanSummary {
            vcpus,
            total_runtime_secs: selection.total_runtime_secs,
            total_cost_usd: selection.total_cost_usd,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table-I-shaped per-stage runtimes.
    fn paper_secs() -> [[f64; 4]; 4] {
        [
            [6100.0, 4342.0, 3449.0, 3352.0],
            [1206.0, 905.0, 644.0, 519.0],
            [10461.0, 5514.0, 2894.0, 1692.0],
            [183.0, 119.0, 90.0, 82.0],
        ]
    }

    #[test]
    fn loose_budget_buys_small_machines() {
        let planner = CostTablePlanner::aws_like();
        let plan = planner.plan(&paper_secs(), 100_000).expect("valid").expect("feasible");
        assert_eq!(plan.vcpus, [1, 1, 1, 1], "no deadline pressure, cheapest wins");
        assert!(plan.total_cost_usd > 0.0);
    }

    #[test]
    fn tight_budget_upgrades_and_impossible_is_none() {
        let planner = CostTablePlanner::aws_like();
        let tight = planner.plan(&paper_secs(), 5_700).expect("valid").expect("feasible");
        assert!(tight.vcpus.contains(&8), "tight deadline forces big machines");
        assert!(tight.total_runtime_secs <= 5_700);
        assert!(planner.plan(&paper_secs(), 5_000).expect("valid").is_none(), "below fastest");
    }

    #[test]
    fn corrupt_rates_surface_as_plan_error() {
        let mut planner = CostTablePlanner::aws_like();
        planner.hourly_usd[2][1] = f64::NAN;
        let err = planner.plan(&paper_secs(), 100_000).unwrap_err();
        assert!(matches!(err, ServeError::Plan { .. }), "{err}");
    }
}
