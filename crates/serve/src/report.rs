//! The per-run serving report and its byte-stable JSON rendering.

use eda_cloud_fleet::Histogram;
use std::fmt::Write as _;

/// Monotone counters accumulated over one serving run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Requests that arrived.
    pub requests: u64,
    /// Requests answered (prediction returned, plan attempted if asked).
    pub completed: u64,
    /// Requests rejected at admission (`ServeError::Overloaded`).
    pub shed: u64,
    /// Completed requests whose response met their deadline.
    pub deadline_hits: u64,
    /// Result-cache lookups that hit.
    pub cache_hits: u64,
    /// Result-cache lookups that missed.
    pub cache_misses: u64,
    /// Unique designs pushed through the batched GCN forward pass.
    pub gcn_predictions: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Plan requests attempted.
    pub plans: u64,
    /// Plan requests whose budget no selection could meet.
    pub plans_infeasible: u64,
    /// Ingest requests whose upload was accepted (fresh or from the
    /// ingest cache).
    pub ingest_accepted: u64,
    /// Ingest requests whose upload was rejected and quarantined.
    pub ingest_rejected: u64,
    /// Accepted ingest requests served with an out-of-distribution
    /// flag from the OOD gate.
    pub ood_flagged: u64,
}

/// The per-run report: counters, latency statistics, and the
/// queue/batch/latency histograms. JSON rendering is byte-identical
/// across same-seed runs and across worker counts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Seed the workload was generated from.
    pub seed: u64,
    /// Event counters.
    pub counters: ServeCounters,
    /// Fraction of completed requests that met their deadline (0 when
    /// nothing completed).
    pub deadline_hit_rate: f64,
    /// Mean completed-request latency (arrival to response), ms.
    pub mean_latency_ms: f64,
    /// Median completed-request latency, ms.
    pub p50_latency_ms: f64,
    /// 95th-percentile completed-request latency, ms.
    pub p95_latency_ms: f64,
    /// Mean micro-batch size, requests.
    pub mean_batch_size: f64,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: u64,
    /// Simulated time of the last response, ms.
    pub makespan_ms: f64,
    /// Latency distribution of completed requests, ms buckets.
    pub latency_hist: Histogram,
    /// Micro-batch size distribution.
    pub batch_hist: Histogram,
    /// Queue depth sampled at each batch formation.
    pub depth_hist: Histogram,
}

impl ServeReport {
    /// Render as a single JSON object with fixed key order and fixed
    /// float formatting.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(1024);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let _ = write!(
            s,
            "\"counters\":{{\"requests\":{},\"completed\":{},\"shed\":{},\"deadline_hits\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"gcn_predictions\":{},\"batches\":{},\
             \"plans\":{},\"plans_infeasible\":{},\"ingest_accepted\":{},\"ingest_rejected\":{},\
             \"ood_flagged\":{}}},",
            c.requests,
            c.completed,
            c.shed,
            c.deadline_hits,
            c.cache_hits,
            c.cache_misses,
            c.gcn_predictions,
            c.batches,
            c.plans,
            c.plans_infeasible,
            c.ingest_accepted,
            c.ingest_rejected,
            c.ood_flagged
        );
        let _ = write!(s, "\"deadline_hit_rate\":{},", fmt_f64(self.deadline_hit_rate));
        let _ = write!(s, "\"mean_latency_ms\":{},", fmt_f64(self.mean_latency_ms));
        let _ = write!(s, "\"p50_latency_ms\":{},", fmt_f64(self.p50_latency_ms));
        let _ = write!(s, "\"p95_latency_ms\":{},", fmt_f64(self.p95_latency_ms));
        let _ = write!(s, "\"mean_batch_size\":{},", fmt_f64(self.mean_batch_size));
        let _ = write!(s, "\"max_queue_depth\":{},", self.max_queue_depth);
        let _ = write!(s, "\"makespan_ms\":{},", fmt_f64(self.makespan_ms));
        let _ = write!(s, "\"latency_hist\":{},", self.latency_hist.to_json());
        let _ = write!(s, "\"batch_hist\":{},", self.batch_hist.to_json());
        let _ = write!(s, "\"depth_hist\":{}", self.depth_hist.to_json());
        s.push('}');
        s
    }
}

/// Fixed-precision float rendering, matching the fleet report's format.
fn fmt_f64(v: f64) -> String {
    format!("{v:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_ordered() {
        let report = ServeReport {
            seed: 7,
            counters: ServeCounters { requests: 8, completed: 7, shed: 1, ..Default::default() },
            deadline_hit_rate: 0.857143,
            mean_latency_ms: 12.5,
            p50_latency_ms: 10.0,
            p95_latency_ms: 31.0,
            mean_batch_size: 3.5,
            max_queue_depth: 5,
            makespan_ms: 412.0,
            latency_hist: Histogram::new(vec![10.0, 100.0]),
            batch_hist: Histogram::new(vec![1.0, 8.0]),
            depth_hist: Histogram::new(vec![4.0]),
        };
        let a = report.to_json();
        assert_eq!(a, report.clone().to_json());
        assert!(a.starts_with("{\"seed\":7,\"counters\":{\"requests\":8,"), "{a}");
        assert!(a.contains("\"shed\":1,"), "{a}");
        assert!(
            a.contains("\"ingest_accepted\":0,\"ingest_rejected\":0,\"ood_flagged\":0}"),
            "{a}"
        );
        assert!(a.contains("\"mean_latency_ms\":12.500000"), "{a}");
        assert!(a.ends_with("\"depth_hist\":{\"edges\":[4.000000],\"counts\":[0,0]}}"), "{a}");
    }
}
