//! Geo-routing of Predict/Plan traffic to per-region model replicas,
//! with per-tenant weighted fair-share admission in front.
//!
//! A [`GeoServer`] owns one [`Server`] replica per region. Incoming
//! [`GeoRequest`]s carry a home region and a tenant id; the router
//! processes them in arrival order, runs each through the engine's
//! stride-scheduling [`FairShare`] admission (so an overloading tenant
//! is bounded to its weighted share of the global admission queue
//! before any replica sees it), and forwards admitted requests to
//! their home region's replica. Each replica then plays its
//! sub-stream exactly as a standalone [`Server`] would — EDF queueing,
//! micro-batching, caching — so geo-routing composes with, rather than
//! replaces, the existing serving semantics.
//!
//! Service of the fair-share queue is modelled by a sliding drain
//! window on the simulated clock: an admitted unit is considered
//! served (freeing its tenant's share) once the stream has advanced
//! `drain_window_us` past its arrival. The drain is a pure function of
//! arrival timestamps, so routing decisions — and the folded
//! [`GeoReport`] — are byte-identical across runs and worker counts.

use crate::{ServeError, ServeReport, ServeRequest, Server};
use eda_cloud_engine::{fmt_f64, AdmitRejection, FairShare, TenantPolicy};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// One request as the geo tier sees it: a tenant, a home region, and
/// the inner serving request.
#[derive(Debug, Clone)]
pub struct GeoRequest {
    /// Tenant the request bills against.
    pub tenant: u32,
    /// Home region whose replica should answer.
    pub region: u32,
    /// The request itself (ordinal, arrival, deadline, kind, design).
    pub inner: ServeRequest,
}

/// Geo-tier admission knobs. The per-region serving knobs live in each
/// replica's own [`crate::ServeConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeoConfig {
    /// Fair-share weight per tenant; the vector length is the tenant
    /// count.
    pub tenant_weights: Vec<u64>,
    /// Hard per-tenant cap on in-flight admitted units, applied on top
    /// of the weighted share bound.
    pub tenant_quota: u32,
    /// Total in-flight capacity of the admission queue.
    pub admission_capacity: usize,
    /// An admitted unit frees its tenant's share once the stream is
    /// this far past its arrival, µs.
    pub drain_window_us: u64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        Self {
            tenant_weights: vec![1; 4],
            tenant_quota: 16,
            admission_capacity: 32,
            drain_window_us: 20_000,
        }
    }
}

/// Per-tenant admission accounting in the folded report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeoTenantUsage {
    /// Fair-share weight.
    pub weight: u64,
    /// Requests the tenant submitted.
    pub submitted: u64,
    /// Requests admitted past fair share.
    pub admitted: u64,
    /// Requests rejected by the tenant's quota / share bound.
    pub quota_rejected: u64,
    /// Requests rejected because the whole admission queue was full.
    pub capacity_rejected: u64,
}

/// The folded geo-tier report: per-region serving reports plus
/// per-tenant admission accounting, with a byte-stable JSON rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct GeoReport {
    /// Seed stamped through to every replica's report.
    pub seed: u64,
    /// One serving report per region, indexed by region id.
    pub per_region: Vec<ServeReport>,
    /// Requests routed to each region (admitted traffic), indexed by
    /// region id.
    pub routed: Vec<u64>,
    /// Per-tenant admission accounting, indexed by tenant id.
    pub tenants: Vec<GeoTenantUsage>,
}

impl GeoReport {
    /// Render as a single JSON object with fixed key order and fixed
    /// float formatting — byte-identical across same-seed runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let submitted: u64 = self.tenants.iter().map(|t| t.submitted).sum();
        let admitted: u64 = self.tenants.iter().map(|t| t.admitted).sum();
        let quota: u64 = self.tenants.iter().map(|t| t.quota_rejected).sum();
        let capacity: u64 = self.tenants.iter().map(|t| t.capacity_rejected).sum();
        let completed: u64 = self.per_region.iter().map(|r| r.counters.completed).sum();
        let shed: u64 = self.per_region.iter().map(|r| r.counters.shed).sum();
        let mut s = String::with_capacity(2048);
        s.push('{');
        let _ = write!(s, "\"seed\":{},", self.seed);
        let _ = write!(
            s,
            "\"totals\":{{\"submitted\":{submitted},\"admitted\":{admitted},\
             \"quota_rejected\":{quota},\"capacity_rejected\":{capacity},\
             \"completed\":{completed},\"shed\":{shed}}},"
        );
        s.push_str("\"per_region\":[");
        for (i, (report, routed)) in self.per_region.iter().zip(&self.routed).enumerate() {
            if i > 0 {
                s.push(',');
            }
            let c = &report.counters;
            let _ = write!(
                s,
                "{{\"region\":{i},\"routed\":{routed},\"completed\":{},\"shed\":{},\
                 \"cache_hits\":{},\"plans\":{},\"mean_latency_ms\":{},\"makespan_ms\":{}}}",
                c.completed,
                c.shed,
                c.cache_hits,
                c.plans,
                fmt_f64(report.mean_latency_ms),
                fmt_f64(report.makespan_ms)
            );
        }
        s.push_str("],\"per_tenant\":[");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"tenant\":{i},\"weight\":{},\"submitted\":{},\"admitted\":{},\
                 \"quota_rejected\":{},\"capacity_rejected\":{}}}",
                t.weight, t.submitted, t.admitted, t.quota_rejected, t.capacity_rejected
            );
        }
        s.push_str("]}");
        s
    }
}

/// The geo-routing front: fair-share admission plus one serving
/// replica per region.
pub struct GeoServer {
    replicas: Vec<Server>,
    config: GeoConfig,
}

impl GeoServer {
    /// Build a geo tier over per-region replicas (one [`Server`] each,
    /// typically all holding the same model snapshot version).
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is empty or the admission config is
    /// degenerate (no tenants, a zero weight, zero quota, or zero
    /// capacity) — construction-time caller bugs, mirroring
    /// [`Server::new`].
    #[must_use]
    pub fn new(replicas: Vec<Server>, config: GeoConfig) -> Self {
        assert!(!replicas.is_empty(), "geo tier needs at least one region replica");
        // Validate the fair-share config eagerly so a bad weight table
        // fails at construction, not mid-run.
        Self::fair_share(&config);
        Self { replicas, config }
    }

    fn fair_share(config: &GeoConfig) -> FairShare {
        let policies = config
            .tenant_weights
            .iter()
            .map(|&weight| TenantPolicy { weight, max_queued: config.tenant_quota })
            .collect();
        FairShare::new(policies, config.admission_capacity)
            .expect("geo admission config must be valid")
    }

    /// Number of regions (replicas).
    #[must_use]
    pub fn regions(&self) -> usize {
        self.replicas.len()
    }

    /// Route and serve an arrival-ordered geo request stream; `seed`
    /// only stamps the reports.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Plan`] when a replica's planner rejects an
    /// instance (admission rejections are accounted, not errors).
    ///
    /// # Panics
    ///
    /// Panics when requests are not sorted by arrival time, or a
    /// request names an unknown tenant or region.
    pub fn run(&self, seed: u64, requests: &[GeoRequest]) -> Result<GeoReport, ServeError> {
        assert!(
            requests.windows(2).all(|w| w[0].inner.arrival_us <= w[1].inner.arrival_us),
            "geo requests must be sorted by arrival time"
        );
        let tenants = self.config.tenant_weights.len();
        let regions = self.replicas.len();
        let mut fair = Self::fair_share(&self.config);
        let mut submitted = vec![0u64; tenants];
        let mut routed: Vec<Vec<ServeRequest>> = vec![Vec::new(); regions];
        // Admitted units drain (freeing their tenant's share) once the
        // stream advances `drain_window_us` past their arrival.
        let mut in_flight: VecDeque<(u64, u32, u64)> = VecDeque::new();
        for request in requests {
            let tenant = request.tenant;
            let region = request.region as usize;
            assert!((tenant as usize) < tenants, "tenant {tenant} out of range");
            assert!(region < regions, "region {region} out of range");
            let now = request.inner.arrival_us;
            while let Some(&(arrival_us, t, tag)) = in_flight.front() {
                if arrival_us.saturating_add(self.config.drain_window_us) > now {
                    break;
                }
                fair.on_serve(t, tag);
                in_flight.pop_front();
            }
            submitted[tenant as usize] += 1;
            match fair.try_admit(tenant) {
                Ok(tag) => {
                    in_flight.push_back((now, tenant, tag));
                    routed[region].push(request.inner.clone());
                }
                Err(AdmitRejection::QuotaExceeded { .. })
                | Err(AdmitRejection::CapacityExhausted { .. }) => {
                    // Accounted inside the fair-share counters.
                }
            }
        }

        let mut per_region = Vec::with_capacity(regions);
        let mut routed_counts = Vec::with_capacity(regions);
        for (replica, stream) in self.replicas.iter().zip(&routed) {
            let (report, _) = replica.run(seed, stream)?;
            routed_counts.push(stream.len() as u64);
            per_region.push(report);
        }
        let tenants = self
            .config
            .tenant_weights
            .iter()
            .zip(fair.counters())
            .zip(&submitted)
            .map(|((&weight, c), &submitted)| GeoTenantUsage {
                weight,
                submitted,
                admitted: c.admitted,
                quota_rejected: c.quota_rejected,
                capacity_rejected: c.capacity_rejected,
            })
            .collect();
        Ok(GeoReport { seed, per_region, routed: routed_counts, tenants })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        design_pool, synthetic_requests, CostTablePlanner, ModelSnapshot, ServeConfig,
        WorkloadConfig,
    };
    use eda_cloud_gcn::ModelConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn replica(workers: usize) -> Server {
        Server::new(
            ModelSnapshot::seeded(&ModelConfig::fast(), 7),
            Box::new(CostTablePlanner::aws_like()),
            ServeConfig { workers, ..Default::default() },
        )
    }

    fn geo_server(regions: usize, workers: usize, config: GeoConfig) -> GeoServer {
        GeoServer::new((0..regions).map(|_| replica(workers)).collect(), config)
    }

    fn geo_workload(requests: usize, tenants: u32, regions: u32, seed: u64) -> Vec<GeoRequest> {
        let pool = design_pool();
        let inner = synthetic_requests(
            &pool,
            &WorkloadConfig { requests, rate_per_sec: 150.0, seed, ..Default::default() },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6E0);
        inner
            .into_iter()
            .map(|inner| GeoRequest {
                tenant: rng.gen_range(0..tenants),
                region: rng.gen_range(0..regions),
                inner,
            })
            .collect()
    }

    #[test]
    fn routes_admitted_traffic_to_home_regions_and_conserves() {
        let requests = geo_workload(48, 4, 3, 7);
        let report =
            geo_server(3, 1, GeoConfig::default()).run(7, &requests).expect("runs");
        let submitted: u64 = report.tenants.iter().map(|t| t.submitted).sum();
        let admitted: u64 = report.tenants.iter().map(|t| t.admitted).sum();
        let rejected: u64 =
            report.tenants.iter().map(|t| t.quota_rejected + t.capacity_rejected).sum();
        assert_eq!(submitted, 48);
        assert_eq!(admitted + rejected, submitted);
        assert_eq!(report.routed.iter().sum::<u64>(), admitted);
        let region_requests: u64 =
            report.per_region.iter().map(|r| r.counters.requests).sum();
        assert_eq!(region_requests, admitted, "every admitted request reaches a replica");
    }

    #[test]
    fn fair_share_bounds_a_flooding_tenant() {
        // Tenant 0 floods at t=0; tenants 1..3 trickle afterwards. With
        // equal weights and capacity 16, tenant 0 is bounded to its
        // quarter share (4 in flight) while the others are untouched.
        let pool = design_pool();
        let inner = synthetic_requests(
            &pool,
            &WorkloadConfig { requests: 64, rate_per_sec: 0.0, ..Default::default() },
        );
        let mut requests: Vec<GeoRequest> = inner[..48]
            .iter()
            .map(|r| GeoRequest { tenant: 0, region: 0, inner: r.clone() })
            .collect();
        for (i, r) in inner[48..].iter().enumerate() {
            let mut r = r.clone();
            r.arrival_us = 1_000_000 + 50_000 * i as u64; // past any drain window
            requests.push(GeoRequest { tenant: 1 + (i as u32 % 3), region: 0, inner: r });
        }
        let config = GeoConfig {
            tenant_weights: vec![1; 4],
            tenant_quota: 16,
            admission_capacity: 16,
            drain_window_us: 20_000,
        };
        let report = geo_server(1, 1, config).run(7, &requests).expect("runs");
        let t0 = report.tenants[0];
        assert_eq!(t0.admitted, 4, "quarter share of capacity 16: {t0:?}");
        assert_eq!(t0.quota_rejected, 44, "the rest of the burst is quota-rejected");
        for t in &report.tenants[1..] {
            assert_eq!(t.quota_rejected + t.capacity_rejected, 0, "{t:?}");
            assert_eq!(t.admitted, t.submitted, "{t:?}");
        }
    }

    #[test]
    fn reports_are_byte_identical_across_runs_and_worker_counts() {
        let requests = geo_workload(48, 4, 3, 7);
        let base = geo_server(3, 1, GeoConfig::default()).run(7, &requests).expect("runs");
        for workers in [2usize, 4] {
            let report =
                geo_server(3, workers, GeoConfig::default()).run(7, &requests).expect("runs");
            assert_eq!(report.to_json(), base.to_json(), "workers {workers}");
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let requests = geo_workload(24, 4, 2, 7);
        let report = geo_server(2, 1, GeoConfig::default()).run(7, &requests).expect("runs");
        let json = report.to_json();
        assert!(json.starts_with("{\"seed\":7,\"totals\":{\"submitted\":24,"), "{json}");
        assert!(json.contains("\"per_region\":[{\"region\":0,\"routed\":"), "{json}");
        assert!(json.contains("\"per_tenant\":[{\"tenant\":0,\"weight\":1,"), "{json}");
        assert!(json.ends_with("}]}"), "{json}");
    }
}
