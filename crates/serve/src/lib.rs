//! Deterministic online prediction & planning service.
//!
//! The paper's workflow — characterize, predict runtimes with a GCN,
//! plan a deployment with MCKP — is batch-shaped; this crate turns it
//! into the serving tier a production design-space-exploration loop
//! queries per design. A [`Server`] plays an open-loop request stream
//! ([`ServeRequest`]: a design's graph views, a response deadline, and
//! optionally a flow budget to plan against) on a simulated
//! microsecond clock:
//!
//! * **Model registry** ([`ModelRegistry`] / [`ModelSnapshot`]) —
//!   named, versioned bundles of the four per-stage GCN predictors
//!   with a canonical byte-stable text format whose save → load round
//!   trip reproduces bit-identical predictions.
//! * **Micro-batching inference** — queued requests are coalesced into
//!   padded block-diagonal graph batches and pushed through each stage
//!   model's batched forward pass ([`eda_cloud_gcn::GraphBatch`]);
//!   batched predictions are bit-identical to one-at-a-time inference,
//!   so batching is purely a throughput win.
//! * **Admission control** ([`AdmissionQueue`]) — a bounded queue
//!   ordered earliest-deadline-first; arrivals beyond capacity are
//!   shed with the typed [`ServeError::Overloaded`].
//! * **Result cache** ([`LruCache`]) — design fingerprint → per-stage
//!   predictions, with hit/miss accounting in the report.
//! * **Geo routing** ([`GeoServer`]) — per-region replicas behind the
//!   engine's weighted fair-share admission, so multi-tenant traffic
//!   is bounded to each tenant's share before any replica sees it.
//! * **Planning** ([`Planner`]) — feasible [`RequestKind::Plan`]
//!   requests get an exact MCKP deployment ([`PlanSummary`]); the
//!   built-in [`CostTablePlanner`] prices a flat hourly-rate table,
//!   and `eda-cloud-core` adapts its catalog-backed planner to the
//!   same trait.
//!
//! Every run folds into a [`ServeReport`] (counters, latency
//! percentiles, queue/batch/latency histograms) whose JSON rendering
//! is byte-identical across runs **and across worker counts**: the
//! only parallelism is the per-stage fan-out of the batched forward,
//! joined by stage index. Per-request spans keyed by arrival ordinals
//! flow through `eda-cloud-trace` when a tracer is attached.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_gcn::ModelConfig;
//! use eda_cloud_serve::{
//!     design_pool, synthetic_requests, CostTablePlanner, ModelSnapshot, ServeConfig, Server,
//!     WorkloadConfig,
//! };
//!
//! let pool = design_pool();
//! let requests = synthetic_requests(&pool, &WorkloadConfig::default());
//! let server = Server::new(
//!     ModelSnapshot::seeded(&ModelConfig::fast(), 7),
//!     Box::new(CostTablePlanner::aws_like()),
//!     ServeConfig::default(),
//! );
//! let (report, outcomes) = server.run(7, &requests)?;
//! assert_eq!(outcomes.len(), requests.len());
//! let (again, _) = server.run(7, &requests)?;
//! assert_eq!(report.to_json(), again.to_json());
//! # Ok::<(), eda_cloud_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod faults;
mod geo;
mod ingestor;
mod planner;
mod queue;
mod recipe_planner;
mod registry;
mod report;
mod request;
mod server;

pub use cache::LruCache;
pub use error::ServeError;
pub use faults::{
    IngestFaults, NoIngestFaults, NoServeFaults, ServeFaults, SharedIngestFaults,
    SharedServeFaults,
};
pub use geo::{GeoConfig, GeoReport, GeoRequest, GeoServer, GeoTenantUsage};
pub use ingestor::{IngestDisposition, IngestOutcome, IngestSummary, Ingestor};
pub use planner::{CostTablePlanner, PlanSummary, Planner, VCPUS};
pub use queue::AdmissionQueue;
pub use recipe_planner::{RecipePlanSummary, RecipePlanner};
pub use registry::{
    CanaryState, ModelRegistry, ModelSnapshot, QuantizedSnapshot, ServingSnapshot, STAGE_NAMES,
};
pub use report::{ServeCounters, ServeReport};
pub use request::{
    design_pool, synthetic_requests, synthetic_requests_with_uploads, RequestKind, ServeDesign,
    ServeRequest, UploadDoc, WorkloadConfig,
};
pub use server::{RequestOutcome, ServeConfig, Server};
