//! Bounded, deadline-ordered admission queue.

use crate::{ServeError, ServeRequest};
use std::collections::BTreeMap;

/// Earliest-deadline-first admission queue with a hard capacity.
///
/// Requests are keyed by `(deadline_us, ordinal)` — the server always
/// pops the most urgent request, with the arrival ordinal breaking
/// deadline ties deterministically. When the queue is full an arriving
/// request is rejected with [`ServeError::Overloaded`] (shed at the
/// door), bounding both memory and worst-case queueing delay.
#[derive(Debug)]
pub struct AdmissionQueue {
    entries: BTreeMap<(u64, u64), ServeRequest>,
    capacity: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` requests at a time.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a server that can hold nothing
    /// serves nothing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self { entries: BTreeMap::new(), capacity }
    }

    /// Admit a request, or shed it if the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when at capacity; the request
    /// is dropped.
    pub fn try_admit(&mut self, request: ServeRequest) -> Result<(), ServeError> {
        if self.entries.len() >= self.capacity {
            return Err(ServeError::Overloaded {
                ordinal: request.ordinal,
                queue_depth: self.entries.len(),
                capacity: self.capacity,
            });
        }
        self.entries.insert((request.deadline_us, request.ordinal), request);
        Ok(())
    }

    /// Pop the most urgent request (earliest deadline, then lowest
    /// ordinal).
    pub fn pop(&mut self) -> Option<ServeRequest> {
        self.entries.pop_first().map(|(_, r)| r)
    }

    /// Requests currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestKind;
    use eda_cloud_gcn::GraphSample;
    use eda_cloud_netlist::{generators, DesignGraph};
    use std::sync::Arc;

    fn request(ordinal: u64, deadline_us: u64) -> ServeRequest {
        let g = DesignGraph::from_aig(&generators::adder(3));
        let view = || GraphSample::new(&g, [1.0; 4]);
        ServeRequest {
            ordinal,
            arrival_us: 0,
            deadline_us,
            kind: RequestKind::Predict,
            design: Arc::new(crate::ServeDesign::new("d", view(), view())),
            upload: None,
        }
    }

    #[test]
    fn pops_in_deadline_then_ordinal_order() {
        let mut q = AdmissionQueue::new(8);
        q.try_admit(request(0, 500)).expect("fits");
        q.try_admit(request(1, 100)).expect("fits");
        q.try_admit(request(2, 100)).expect("fits");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().map(|r| r.ordinal), Some(1), "earliest deadline first");
        assert_eq!(q.pop().map(|r| r.ordinal), Some(2), "ordinal breaks the tie");
        assert_eq!(q.pop().map(|r| r.ordinal), Some(0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn sheds_when_full() {
        let mut q = AdmissionQueue::new(2);
        q.try_admit(request(0, 10)).expect("fits");
        q.try_admit(request(1, 20)).expect("fits");
        let err = q.try_admit(request(2, 5)).unwrap_err();
        assert_eq!(err, ServeError::Overloaded { ordinal: 2, queue_depth: 2, capacity: 2 });
        // The rejection did not disturb the admitted requests.
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().map(|r| r.ordinal), Some(0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AdmissionQueue::new(0);
    }
}
