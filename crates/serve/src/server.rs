//! The deterministic simulated-time serving loop.
//!
//! The server plays an arrival-ordered request stream on a logical
//! microsecond clock: arrivals are admitted into the bounded
//! deadline-ordered [`AdmissionQueue`] (shedding with
//! [`ServeError::Overloaded`] when full), the head of the queue is
//! coalesced into a micro-batch, batch misses run through one padded
//! batched GCN forward pass (fanned over up to four stage-model
//! threads), hits come from the keyed LRU result cache, and the clock
//! advances by a service-time model that charges per batch, per miss,
//! per request, and per plan. Everything outside the stage fan-out is
//! single-threaded and the fan-out joins by stage index, so the report
//! and every outcome are byte-identical across runs and worker counts.

use crate::{
    AdmissionQueue, IngestDisposition, IngestOutcome, Ingestor, LruCache, NoIngestFaults,
    NoServeFaults, PlanSummary, Planner, RecipePlanSummary, RecipePlanner, RequestKind,
    ServeCounters, ServeError, ServeReport, ServeRequest, ServingSnapshot, SharedIngestFaults,
    SharedServeFaults,
};
use eda_cloud_fleet::Histogram;
use eda_cloud_gcn::{GraphBatch, GraphSample};
use eda_cloud_trace::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Serving knobs: batching, queueing, caching, and the simulated
/// service-time model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Most requests coalesced into one micro-batch.
    pub max_batch: usize,
    /// Admission-queue capacity; arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Result-cache capacity (designs); 0 disables caching.
    pub cache_capacity: usize,
    /// Pad each graph's node rows to a multiple of this stride when
    /// packing batches (predictions are stride-invariant).
    pub pad_stride: usize,
    /// Threads for the per-stage batched forwards (capped at 4, one
    /// per stage model); 0 picks the available parallelism. Worker
    /// count never changes results.
    pub workers: usize,
    /// Simulated fixed cost of executing one micro-batch, µs.
    pub batch_overhead_us: u64,
    /// Simulated marginal cost of one GCN forward (a cache miss), µs.
    pub per_miss_us: u64,
    /// Simulated per-request assembly cost (hit or miss), µs.
    pub per_hit_us: u64,
    /// Simulated cost of one MCKP solve, µs.
    pub plan_us: u64,
    /// Version of the snapshot being served; result-cache entries are
    /// keyed by `(model_version, design fingerprint)` so predictions
    /// cached under one model version are never served under another.
    pub model_version: u32,
    /// Ingest-cache capacity (uploads, keyed by content fingerprint);
    /// 0 disables ingest caching so every upload re-parses.
    pub ingest_cache_capacity: usize,
    /// Simulated cost of one fresh (uncached) parse + validate +
    /// OOD-gate pass, µs.
    pub ingest_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            queue_capacity: 32,
            cache_capacity: 32,
            pad_stride: 8,
            workers: 1,
            batch_overhead_us: 4_000,
            per_miss_us: 1_000,
            per_hit_us: 50,
            plan_us: 500,
            model_version: 1,
            ingest_cache_capacity: 16,
            ingest_us: 2_000,
        }
    }
}

impl ServeConfig {
    /// Resolve the worker knob: explicit values pass through, 0 means
    /// the machine's available parallelism; either way at most 4 (one
    /// thread per stage model).
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        let w = if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        w.min(4)
    }
}

/// How one request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// The request was answered.
    Completed {
        /// The request's arrival ordinal.
        ordinal: u64,
        /// Arrival-to-response time on the simulated clock, µs.
        latency_us: u64,
        /// Whether the response met the request's deadline.
        deadline_met: bool,
        /// Whether the prediction came from the result cache.
        cache_hit: bool,
        /// Per-stage predicted runtimes at 1/2/4/8 vCPUs, seconds.
        stage_secs: [[f64; 4]; 4],
        /// The deployment plan, for feasible [`RequestKind::Plan`]
        /// requests; `None` for predictions and infeasible budgets.
        plan: Option<PlanSummary>,
        /// The joint recipe × VM plan, for feasible
        /// [`RequestKind::PlanRecipe`] requests; `None` otherwise
        /// (boxed to keep the outcome enum small).
        recipe: Option<Box<RecipePlanSummary>>,
        /// For [`RequestKind::Ingest`] requests, how the upload was
        /// disposed; `None` for every other kind (boxed to keep the
        /// outcome enum small). Rejected uploads complete quarantined:
        /// `stage_secs` zeroed, never cached, never predicted.
        ingest: Option<Box<IngestDisposition>>,
    },
    /// The request was rejected at admission
    /// ([`ServeError::Overloaded`]).
    Shed {
        /// The request's arrival ordinal.
        ordinal: u64,
        /// Queue depth at the moment of rejection.
        queue_depth: usize,
    },
}

impl RequestOutcome {
    /// The arrival ordinal this outcome belongs to.
    #[must_use]
    pub fn ordinal(&self) -> u64 {
        match self {
            Self::Completed { ordinal, .. } | Self::Shed { ordinal, .. } => *ordinal,
        }
    }
}

/// The prediction & planning server.
pub struct Server {
    snapshot: ServingSnapshot,
    planner: Box<dyn Planner>,
    recipe_planner: Option<Box<dyn RecipePlanner>>,
    ingestor: Option<Box<dyn Ingestor>>,
    config: ServeConfig,
    tracer: Tracer,
    faults: SharedServeFaults,
    ingest_faults: SharedIngestFaults,
}

impl Server {
    /// Build a server over a frozen model snapshot — float or int8
    /// quantized — and a planner.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch`, `queue_capacity`, or `pad_stride` is
    /// zero.
    #[must_use]
    pub fn new(
        snapshot: impl Into<ServingSnapshot>,
        planner: Box<dyn Planner>,
        config: ServeConfig,
    ) -> Self {
        assert!(config.max_batch > 0, "max batch must be positive");
        assert!(config.pad_stride > 0, "pad stride must be positive");
        Self {
            snapshot: snapshot.into(),
            planner,
            recipe_planner: None,
            ingestor: None,
            config,
            tracer: Tracer::disabled(),
            faults: std::sync::Arc::new(NoServeFaults),
            ingest_faults: std::sync::Arc::new(NoIngestFaults),
        }
    }

    /// Attach a joint recipe × VM planner; without one,
    /// [`RequestKind::PlanRecipe`] requests fail with
    /// [`ServeError::Plan`].
    #[must_use]
    pub fn with_recipe_planner(mut self, planner: Box<dyn RecipePlanner>) -> Self {
        self.recipe_planner = Some(planner);
        self
    }

    /// Attach an ingestor (see [`Ingestor`]); without one,
    /// [`RequestKind::Ingest`] requests fail with
    /// [`ServeError::Ingest`].
    #[must_use]
    pub fn with_ingestor(mut self, ingestor: Box<dyn Ingestor>) -> Self {
        self.ingestor = Some(ingestor);
        self
    }

    /// Attach ingest fault hooks (see [`crate::IngestFaults`]); the
    /// default is the inert [`NoIngestFaults`].
    #[must_use]
    pub fn with_ingest_faults(mut self, faults: SharedIngestFaults) -> Self {
        self.ingest_faults = faults;
        self
    }

    /// Attach a tracer; every request gets a root span keyed by its
    /// arrival ordinal.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach fault hooks (see [`crate::ServeFaults`]); the default is
    /// the inert [`NoServeFaults`].
    #[must_use]
    pub fn with_faults(mut self, faults: SharedServeFaults) -> Self {
        self.faults = faults;
        self
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serve an arrival-ordered request stream to completion; `seed`
    /// only stamps the report. Returns the report plus one outcome per
    /// request, sorted by ordinal.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Plan`] if the planner rejects an instance
    /// (sheds are outcomes, not errors).
    ///
    /// # Panics
    ///
    /// Panics if `requests` is not sorted by arrival time.
    pub fn run(
        &self,
        seed: u64,
        requests: &[ServeRequest],
    ) -> Result<(ServeReport, Vec<RequestOutcome>), ServeError> {
        assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_us <= w[1].arrival_us),
            "requests must be sorted by arrival time"
        );
        let workers = self.config.resolved_workers();
        let mut queue = AdmissionQueue::new(self.config.queue_capacity);
        let version = self.config.model_version;
        let mut cache: LruCache<(u32, u64), [[f64; 4]; 4]> =
            LruCache::new(self.config.cache_capacity);
        let mut ingest_cache: LruCache<u64, IngestOutcome> =
            LruCache::new(self.config.ingest_cache_capacity);
        let mut counters = ServeCounters::default();
        let mut outcomes: Vec<RequestOutcome> = Vec::with_capacity(requests.len());
        let mut latencies_us: Vec<u64> = Vec::with_capacity(requests.len());
        let mut latency_hist = Histogram::new(vec![
            1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
        ]);
        let mut batch_hist = Histogram::new(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0]);
        let mut depth_hist = Histogram::new(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]);
        let mut max_depth = 0usize;
        let mut batch_size_sum = 0u64;
        let mut now = 0u64;
        let mut next = 0usize;

        while next < requests.len() || !queue.is_empty() {
            if queue.is_empty() {
                // Idle server: jump to the next arrival.
                now = now.max(requests[next].arrival_us);
            }
            while next < requests.len() && requests[next].arrival_us <= now {
                let request = requests[next].clone();
                next += 1;
                counters.requests += 1;
                if self.faults.wipe_cache(request.ordinal) {
                    cache.clear();
                    let span = self.tracer.root_at(request.ordinal, "fault/cache_wipe");
                    span.attr("fault", "cache_wipe");
                }
                if self.faults.force_shed(request.ordinal) {
                    // An injected overload burst: rejected exactly like
                    // a capacity shed, so conservation still holds.
                    let (ordinal, queue_depth) = (request.ordinal, queue.len());
                    counters.shed += 1;
                    let span = self.tracer.root_at(ordinal, "request");
                    span.attr("outcome", "shed");
                    span.attr("queue_depth", queue_depth);
                    span.attr("fault", "force_shed");
                    outcomes.push(RequestOutcome::Shed {
                        ordinal,
                        queue_depth,
                    });
                    continue;
                }
                if let Err(ServeError::Overloaded {
                    ordinal,
                    queue_depth,
                    ..
                }) = queue.try_admit(request)
                {
                    counters.shed += 1;
                    let span = self.tracer.root_at(ordinal, "request");
                    span.attr("outcome", "shed");
                    span.attr("queue_depth", queue_depth);
                    outcomes.push(RequestOutcome::Shed {
                        ordinal,
                        queue_depth,
                    });
                }
            }
            let depth = queue.len();
            depth_hist.record(depth as f64);
            max_depth = max_depth.max(depth);

            let mut batch = Vec::with_capacity(self.config.max_batch);
            while batch.len() < self.config.max_batch {
                match queue.pop() {
                    Some(r) => batch.push(r),
                    None => break,
                }
            }
            if batch.is_empty() {
                continue;
            }
            counters.batches += 1;
            batch_hist.record(batch.len() as f64);
            batch_size_sum += batch.len() as u64;

            // Resolve ingest requests first: each Ingest slot either
            // yields a servable design (the upload was accepted, fresh
            // or from the fingerprint-keyed ingest cache) or is
            // quarantined — `effective[i]` stays `None`, so the slot
            // never reaches the result cache or the GCN below.
            let mut dispositions: Vec<Option<IngestDisposition>> = vec![None; batch.len()];
            let mut effective: Vec<Option<Arc<crate::ServeDesign>>> = vec![None; batch.len()];
            let mut fresh_ingests = 0u64;
            for (i, request) in batch.iter().enumerate() {
                if request.kind != RequestKind::Ingest {
                    effective[i] = Some(request.design.clone());
                    continue;
                }
                let upload = request.upload.as_deref().ok_or_else(|| ServeError::Ingest {
                    message: format!("request {} is Ingest but carries no upload", request.ordinal),
                })?;
                let ingestor = self.ingestor.as_deref().ok_or_else(|| ServeError::Ingest {
                    message: "Ingest request without an ingestor".into(),
                })?;
                let outcome = if self.ingest_faults.flood(request.ordinal) {
                    // Flood control rejects without caching: a later
                    // clean upload of the same bytes ingests normally.
                    IngestOutcome::Rejected {
                        reason: "rejected by ingest flood control".into(),
                    }
                } else {
                    let doc = if self.ingest_faults.corrupt_upload(request.ordinal) {
                        std::borrow::Cow::Owned(upload.corrupted())
                    } else {
                        std::borrow::Cow::Borrowed(upload)
                    };
                    match ingest_cache.get(&doc.fingerprint) {
                        Some(hit) => hit,
                        None => {
                            fresh_ingests += 1;
                            let fresh = ingestor.ingest(&doc);
                            ingest_cache.insert(doc.fingerprint, fresh.clone());
                            fresh
                        }
                    }
                };
                match outcome {
                    IngestOutcome::Accepted(summary) => {
                        dispositions[i] = Some(IngestDisposition::Accepted {
                            fingerprint: summary.design.fingerprint,
                            ood_distance_micros: summary.ood_distance_micros,
                            ood: summary.ood,
                        });
                        effective[i] = Some(summary.design);
                    }
                    IngestOutcome::Rejected { reason } => {
                        dispositions[i] = Some(IngestDisposition::Rejected { reason });
                    }
                }
            }

            // Resolve each request from the cache, collecting unique
            // missed designs in first-occurrence order; duplicates of a
            // missed design within one batch ride the single forward.
            let mut cached: Vec<Option<[[f64; 4]; 4]>> = vec![None; batch.len()];
            let mut miss_slot: Vec<usize> = vec![usize::MAX; batch.len()];
            let mut miss_designs: Vec<Arc<crate::ServeDesign>> = Vec::new();
            let mut slot_of: BTreeMap<u64, usize> = BTreeMap::new();
            for (i, design) in effective.iter().enumerate() {
                let Some(design) = design else {
                    continue; // quarantined: no lookup, no forward
                };
                if let Some(hit) = cache.get(&(version, design.fingerprint)) {
                    cached[i] = Some(hit);
                } else {
                    let slot = *slot_of.entry(design.fingerprint).or_insert_with(|| {
                        miss_designs.push(design.clone());
                        miss_designs.len() - 1
                    });
                    miss_slot[i] = slot;
                }
            }

            let miss_secs: Vec<[[f64; 4]; 4]> = if miss_designs.is_empty() {
                Vec::new()
            } else {
                let aig_refs: Vec<&GraphSample> = miss_designs.iter().map(|d| &d.aig).collect();
                let net_refs: Vec<&GraphSample> = miss_designs.iter().map(|d| &d.netlist).collect();
                let aig_batch = GraphBatch::pack_padded(&aig_refs, self.config.pad_stride);
                let net_batch = GraphBatch::pack_padded(&net_refs, self.config.pad_stride);
                self.snapshot
                    .predict_batches(&aig_batch, &net_batch, workers)
            };
            counters.gcn_predictions += miss_designs.len() as u64;
            for (design, secs) in miss_designs.iter().zip(&miss_secs) {
                cache.insert((version, design.fingerprint), *secs);
            }

            let plans_in_batch = batch
                .iter()
                .filter(|r| {
                    matches!(
                        r.kind,
                        RequestKind::Plan { .. } | RequestKind::PlanRecipe { .. }
                    )
                })
                .count() as u64;
            let service_us = self.config.batch_overhead_us
                + miss_designs.len() as u64 * self.config.per_miss_us
                + batch.len() as u64 * self.config.per_hit_us
                + plans_in_batch * self.config.plan_us
                + fresh_ingests * self.config.ingest_us;
            now += service_us;

            for (i, request) in batch.iter().enumerate() {
                let quarantined =
                    matches!(dispositions[i], Some(IngestDisposition::Rejected { .. }));
                let cache_hit = cached[i].is_some();
                let stage_secs = if quarantined {
                    [[0.0; 4]; 4]
                } else {
                    cached[i].unwrap_or_else(|| miss_secs[miss_slot[i]])
                };
                let latency_us = now.saturating_sub(request.arrival_us);
                let deadline_met = now <= request.deadline_us;
                let mut recipe = None;
                let plan = match request.kind {
                    RequestKind::Plan { budget_secs } => {
                        counters.plans += 1;
                        let plan = self.planner.plan(&stage_secs, budget_secs)?;
                        if plan.is_none() {
                            counters.plans_infeasible += 1;
                        }
                        plan
                    }
                    RequestKind::PlanRecipe { deadline_secs } => {
                        // Joint plans share the plan counters so the
                        // report schema (and its goldens) are stable.
                        counters.plans += 1;
                        let planner =
                            self.recipe_planner.as_deref().ok_or_else(|| ServeError::Plan {
                                message: "PlanRecipe request without a recipe planner".into(),
                            })?;
                        recipe = planner
                            .plan_recipe(&request.design, &stage_secs, deadline_secs)?
                            .map(Box::new);
                        if recipe.is_none() {
                            counters.plans_infeasible += 1;
                        }
                        None
                    }
                    RequestKind::Predict | RequestKind::Ingest => None,
                };
                match &dispositions[i] {
                    Some(IngestDisposition::Accepted { ood, .. }) => {
                        counters.ingest_accepted += 1;
                        if *ood {
                            counters.ood_flagged += 1;
                        }
                    }
                    Some(IngestDisposition::Rejected { .. }) => counters.ingest_rejected += 1,
                    None => {}
                }
                counters.completed += 1;
                if deadline_met {
                    counters.deadline_hits += 1;
                }
                latencies_us.push(latency_us);
                latency_hist.record(latency_us as f64 / 1_000.0);
                let span = self.tracer.root_at(request.ordinal, "request");
                span.attr("outcome", "completed");
                span.attr("cache", if cache_hit { "hit" } else { "miss" });
                span.attr("batch", counters.batches - 1);
                span.attr("latency_us", latency_us);
                span.attr("deadline_met", deadline_met);
                if let RequestKind::Plan { .. } = request.kind {
                    span.attr("planned", plan.is_some());
                }
                if let RequestKind::PlanRecipe { .. } = request.kind {
                    span.attr("recipe_planned", recipe.is_some());
                    if let Some(r) = &recipe {
                        span.attr("recipe", &r.recipe);
                    }
                }
                match &dispositions[i] {
                    Some(IngestDisposition::Accepted { ood, .. }) => {
                        span.attr("ingest", "accepted");
                        span.attr("ood", *ood);
                    }
                    Some(IngestDisposition::Rejected { .. }) => {
                        span.attr("ingest", "rejected");
                    }
                    None => {}
                }
                outcomes.push(RequestOutcome::Completed {
                    ordinal: request.ordinal,
                    latency_us,
                    deadline_met,
                    cache_hit,
                    stage_secs,
                    plan,
                    recipe,
                    ingest: dispositions[i].take().map(Box::new),
                });
            }
        }

        outcomes.sort_by_key(RequestOutcome::ordinal);
        latencies_us.sort_unstable();
        counters.cache_hits = cache.hits();
        counters.cache_misses = cache.misses();
        let report = ServeReport {
            seed,
            counters,
            deadline_hit_rate: if counters.completed == 0 {
                0.0
            } else {
                counters.deadline_hits as f64 / counters.completed as f64
            },
            mean_latency_ms: if latencies_us.is_empty() {
                0.0
            } else {
                latencies_us.iter().sum::<u64>() as f64 / latencies_us.len() as f64 / 1_000.0
            },
            p50_latency_ms: percentile_ms(&latencies_us, 0.50),
            p95_latency_ms: percentile_ms(&latencies_us, 0.95),
            mean_batch_size: if counters.batches == 0 {
                0.0
            } else {
                batch_size_sum as f64 / counters.batches as f64
            },
            max_queue_depth: max_depth as u64,
            makespan_ms: now as f64 / 1_000.0,
            latency_hist,
            batch_hist,
            depth_hist,
        };
        Ok((report, outcomes))
    }
}

/// Nearest-rank percentile over sorted µs latencies, reported in ms.
fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1] as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{design_pool, synthetic_requests, CostTablePlanner, ModelSnapshot, WorkloadConfig};
    use eda_cloud_gcn::ModelConfig;

    fn server(config: ServeConfig) -> Server {
        Server::new(
            ModelSnapshot::seeded(&ModelConfig::fast(), 7),
            Box::new(CostTablePlanner::aws_like()),
            config,
        )
    }

    fn workload(requests: usize, rate_per_sec: f64, seed: u64) -> Vec<ServeRequest> {
        let pool = design_pool();
        synthetic_requests(
            &pool,
            &WorkloadConfig {
                requests,
                rate_per_sec,
                seed,
                ..Default::default()
            },
        )
    }

    #[test]
    fn serves_every_request_and_accounts_for_all() {
        let requests = workload(48, 150.0, 7);
        let (report, outcomes) = server(ServeConfig::default())
            .run(7, &requests)
            .expect("runs");
        assert_eq!(report.counters.requests, 48);
        assert_eq!(report.counters.completed + report.counters.shed, 48);
        assert_eq!(outcomes.len(), 48);
        assert!(outcomes.windows(2).all(|w| w[0].ordinal() < w[1].ordinal()));
        assert!(report.counters.batches > 0);
        assert!(
            report.counters.cache_hits > 0,
            "pool smaller than stream => hits"
        );
        assert!(report.counters.gcn_predictions <= report.counters.cache_misses);
        assert!(report.counters.plans > 0);
        assert!(report.mean_latency_ms > 0.0);
        assert_eq!(report.latency_hist.total(), report.counters.completed);
    }

    #[test]
    fn same_seed_reports_are_byte_identical() {
        let requests = workload(48, 150.0, 7);
        let (a, _) = server(ServeConfig::default())
            .run(7, &requests)
            .expect("runs");
        let (b, _) = server(ServeConfig::default())
            .run(7, &requests)
            .expect("runs");
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn worker_count_never_changes_outcomes() {
        let requests = workload(48, 150.0, 7);
        let (base_report, base_outcomes) = server(ServeConfig {
            workers: 1,
            ..Default::default()
        })
        .run(7, &requests)
        .expect("runs");
        for workers in [2usize, 4, 8] {
            let (report, outcomes) = server(ServeConfig {
                workers,
                ..Default::default()
            })
            .run(7, &requests)
            .expect("runs");
            assert_eq!(report.to_json(), base_report.to_json(), "workers {workers}");
            assert_eq!(outcomes, base_outcomes, "workers {workers}");
        }
    }

    #[test]
    fn quantized_server_is_worker_and_roundtrip_invariant() {
        // The int8 serving path must be bit-identical at any worker
        // count, and across a text round trip of its snapshot.
        let float = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
        let quant = crate::QuantizedSnapshot::quantize(&float);
        let requests = workload(48, 150.0, 7);
        let run = |snapshot: crate::QuantizedSnapshot, workers: usize| {
            Server::new(
                snapshot,
                Box::new(CostTablePlanner::aws_like()),
                ServeConfig {
                    workers,
                    ..Default::default()
                },
            )
            .run(7, &requests)
            .expect("runs")
        };
        let (base_report, base_outcomes) = run(quant.clone(), 1);
        for workers in [2usize, 8] {
            let (report, outcomes) = run(quant.clone(), workers);
            assert_eq!(report.to_json(), base_report.to_json(), "workers {workers}");
            assert_eq!(outcomes, base_outcomes, "workers {workers}");
        }
        let reloaded = crate::QuantizedSnapshot::from_text(&quant.to_text()).expect("parses");
        let (report, outcomes) = run(reloaded, 1);
        assert_eq!(report.to_json(), base_report.to_json(), "text round trip");
        assert_eq!(outcomes, base_outcomes, "text round trip");
    }

    #[test]
    fn overload_sheds_with_typed_outcome() {
        // Arrivals far faster than the service rate, tiny queue.
        let requests = workload(64, 5_000.0, 7);
        let config = ServeConfig {
            queue_capacity: 4,
            max_batch: 2,
            ..Default::default()
        };
        let (report, outcomes) = server(config).run(7, &requests).expect("runs");
        assert!(report.counters.shed > 0, "overload must shed");
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, RequestOutcome::Shed { .. })));
        assert_eq!(report.counters.completed + report.counters.shed, 64);
    }

    #[test]
    fn urgent_requests_are_served_first() {
        // A burst arriving together must drain in deadline order:
        // every request of an earlier batch has a deadline no later
        // than any request of a later batch.
        let pool = design_pool();
        let requests = synthetic_requests(
            &pool,
            &WorkloadConfig {
                requests: 12,
                rate_per_sec: 0.0,
                ..Default::default()
            },
        );
        // rate 0 => all arrive at t=0 with seeded spread-out deadlines.
        assert!(requests.iter().all(|r| r.arrival_us == 0));
        let (_, outcomes) = server(ServeConfig {
            max_batch: 3,
            ..Default::default()
        })
        .run(7, &requests)
        .expect("runs");
        let mut served: Vec<(u64, u64)> = outcomes
            .iter()
            .map(|o| match o {
                RequestOutcome::Completed {
                    ordinal,
                    latency_us,
                    ..
                } => (*latency_us, requests[*ordinal as usize].deadline_us),
                RequestOutcome::Shed { .. } => panic!("burst fits the queue"),
            })
            .collect();
        served.sort_unstable(); // completion time, then deadline
        for pair in served.windows(2) {
            let ((t_a, d_a), (t_b, d_b)) = (pair[0], pair[1]);
            if t_a < t_b {
                assert!(
                    d_a <= d_b,
                    "later batch served an earlier deadline: {pair:?}"
                );
            }
        }
    }

    #[test]
    fn cache_entries_are_keyed_by_model_version() {
        // Regression: the result cache used to key entries by design
        // fingerprint alone, so a model rollout kept serving the
        // previous version's predictions for any cached design. Keys
        // now carry the model version: the same fingerprint cached
        // under v1 must not answer a v2 lookup.
        let fingerprint = 0xDEAD_BEEFu64;
        let mut cache: LruCache<(u32, u64), [[f64; 4]; 4]> = LruCache::new(8);
        cache.insert((1, fingerprint), [[1.0; 4]; 4]);
        assert_eq!(
            cache.get(&(2, fingerprint)),
            None,
            "v2 must miss a v1 entry"
        );
        cache.insert((2, fingerprint), [[2.0; 4]; 4]);
        assert_eq!(cache.get(&(1, fingerprint)), Some([[1.0; 4]; 4]));
        assert_eq!(cache.get(&(2, fingerprint)), Some([[2.0; 4]; 4]));

        // And the server threads its configured version into the key:
        // identical workloads under different versions still produce
        // identical predictions (same snapshot), but the runs never
        // alias — smoke-checked via byte-identical reports.
        let requests = workload(24, 150.0, 7);
        let v1 = server(ServeConfig::default())
            .run(7, &requests)
            .expect("runs")
            .0;
        let v2 = server(ServeConfig {
            model_version: 2,
            ..Default::default()
        })
        .run(7, &requests)
        .expect("runs")
        .0;
        assert_eq!(v1.to_json(), v2.to_json());
    }

    #[test]
    fn fault_hooks_shed_and_wipe_deterministically() {
        struct Plan;
        impl crate::ServeFaults for Plan {
            fn force_shed(&self, ordinal: u64) -> bool {
                ordinal == 3
            }
            fn wipe_cache(&self, ordinal: u64) -> bool {
                ordinal == 10
            }
        }
        let requests = workload(24, 150.0, 7);
        let run = |with_faults: bool| {
            let mut s = server(ServeConfig::default());
            if with_faults {
                s = s.with_faults(std::sync::Arc::new(Plan));
            }
            s.run(7, &requests).expect("runs")
        };
        let (clean, _) = run(false);
        let (faulty, outcomes) = run(true);
        assert!(
            matches!(outcomes[3], RequestOutcome::Shed { ordinal: 3, .. }),
            "forced shed lands on the targeted ordinal: {:?}",
            outcomes[3]
        );
        assert_eq!(faulty.counters.shed, clean.counters.shed + 1);
        assert_eq!(
            faulty.counters.completed + faulty.counters.shed,
            faulty.counters.requests,
            "conservation holds under injected faults"
        );
        let (again, again_outcomes) = run(true);
        assert_eq!(
            faulty.to_json(),
            again.to_json(),
            "fault plans replay exactly"
        );
        assert_eq!(outcomes, again_outcomes);
    }

    #[test]
    fn caching_shortens_service_time() {
        let requests = workload(48, 150.0, 7);
        let cached = server(ServeConfig::default())
            .run(7, &requests)
            .expect("runs")
            .0;
        let uncached = server(ServeConfig {
            cache_capacity: 0,
            ..Default::default()
        })
        .run(7, &requests)
        .expect("runs")
        .0;
        assert_eq!(uncached.counters.cache_hits, 0);
        assert!(cached.counters.gcn_predictions < uncached.counters.gcn_predictions);
        assert!(cached.makespan_ms <= uncached.makespan_ms);
    }

    /// Stub ingestor: accepts text starting with `.model` (serving a
    /// fixed small design named after the upload), flags uploads
    /// containing `ood`, and rejects everything else with a positioned
    /// reason — enough to exercise every server-side ingest path.
    struct StubIngestor;
    impl crate::Ingestor for StubIngestor {
        fn ingest(&self, doc: &crate::UploadDoc) -> crate::IngestOutcome {
            if !doc.text.starts_with(".model") {
                return crate::IngestOutcome::Rejected {
                    reason: "parse error at line 1, col 1: expected `.model`".into(),
                };
            }
            let graph = eda_cloud_netlist::DesignGraph::from_aig(
                &eda_cloud_netlist::generators::adder(4),
            );
            let view = || GraphSample::new(&graph, [1.0; 4]);
            let ood = doc.text.contains("ood");
            crate::IngestOutcome::Accepted(crate::IngestSummary {
                design: Arc::new(crate::ServeDesign::new(doc.name.clone(), view(), view())),
                nodes: graph.node_count() as u64,
                ood_distance_micros: if ood { 5_000_000 } else { 100_000 },
                ood,
            })
        }
    }

    fn ingest_workload(uploads: &[Arc<crate::UploadDoc>], requests: usize) -> Vec<ServeRequest> {
        crate::synthetic_requests_with_uploads(
            &design_pool(),
            uploads,
            &WorkloadConfig {
                requests,
                plan_every: 0,
                ingest_every: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn ingest_requests_need_an_ingestor() {
        let uploads = vec![Arc::new(crate::UploadDoc::new("a", "blif", ".model a"))];
        let requests = ingest_workload(&uploads, 8);
        assert!(requests.iter().any(|r| r.kind == RequestKind::Ingest));
        let bare = server(ServeConfig::default()).run(7, &requests);
        assert!(matches!(bare, Err(ServeError::Ingest { .. })));
        // And an Ingest request without an upload is a typed error too.
        let mut torn = requests.clone();
        for r in &mut torn {
            r.upload = None;
        }
        let res = server(ServeConfig::default())
            .with_ingestor(Box::new(StubIngestor))
            .run(7, &torn);
        assert!(matches!(res, Err(ServeError::Ingest { .. })));
    }

    #[test]
    fn accepted_uploads_serve_and_rejected_ones_are_quarantined() {
        let uploads = vec![
            Arc::new(crate::UploadDoc::new("good", "blif", ".model good\n.end\n")),
            Arc::new(crate::UploadDoc::new("bad", "blif", "garbage bytes\n")),
            Arc::new(crate::UploadDoc::new("weird", "blif", ".model ood thing\n.end\n")),
        ];
        let requests = ingest_workload(&uploads, 48);
        let run = || {
            server(ServeConfig::default())
                .with_ingestor(Box::new(StubIngestor))
                .run(7, &requests)
                .expect("runs")
        };
        let (report, outcomes) = run();
        let c = report.counters;
        assert!(c.ingest_accepted > 0 && c.ingest_rejected > 0 && c.ood_flagged > 0);
        assert_eq!(
            c.ingest_accepted + c.ingest_rejected,
            outcomes
                .iter()
                .filter(|o| matches!(o, RequestOutcome::Completed { ingest: Some(_), .. }))
                .count() as u64,
            "every completed ingest request carries a disposition"
        );
        for outcome in &outcomes {
            let RequestOutcome::Completed { ingest: Some(d), stage_secs, cache_hit, .. } =
                outcome
            else {
                continue;
            };
            match d.as_ref() {
                IngestDisposition::Rejected { reason } => {
                    assert_eq!(*stage_secs, [[0.0; 4]; 4], "quarantined => zeroed");
                    assert!(!cache_hit, "quarantined => never a result-cache hit");
                    assert!(reason.contains("line 1"), "positioned reason: {reason}");
                }
                IngestDisposition::Accepted { ood, ood_distance_micros, .. } => {
                    assert_eq!(*ood, *ood_distance_micros >= 1_000_000);
                    assert!(stage_secs.iter().flatten().all(|&s| s > 0.0));
                }
            }
        }
        let (again, again_outcomes) = run();
        assert_eq!(report.to_json(), again.to_json(), "ingest runs replay exactly");
        assert_eq!(outcomes, again_outcomes);
    }

    #[test]
    fn rejected_uploads_never_reach_the_gcn() {
        // All-bad uploads: every ingest request quarantines, so the
        // model never runs and the result cache is never consulted.
        let uploads = vec![Arc::new(crate::UploadDoc::new("bad", "blif", "junk\n"))];
        let requests = ingest_workload(&uploads, 16);
        assert!(requests.iter().all(|r| r.kind == RequestKind::Ingest));
        let (report, _) = server(ServeConfig::default())
            .with_ingestor(Box::new(StubIngestor))
            .run(7, &requests)
            .expect("runs");
        let c = report.counters;
        assert_eq!(c.ingest_rejected, c.completed);
        assert_eq!(c.gcn_predictions, 0, "quarantine: no forwards");
        assert_eq!(c.cache_hits + c.cache_misses, 0, "quarantine: no lookups");
    }

    #[test]
    fn ingest_cache_deduplicates_and_charges_fresh_parses_only() {
        let uploads = vec![Arc::new(crate::UploadDoc::new("good", "blif", ".model g\n.end\n"))];
        let requests = ingest_workload(&uploads, 16);
        let run = |ingest_cache_capacity: usize| {
            server(ServeConfig { ingest_cache_capacity, ..Default::default() })
                .with_ingestor(Box::new(StubIngestor))
                .run(7, &requests)
                .expect("runs")
                .0
        };
        let cached = run(16);
        let uncached = run(0);
        assert_eq!(cached.counters.ingest_accepted, uncached.counters.ingest_accepted);
        assert!(
            cached.makespan_ms < uncached.makespan_ms,
            "re-parsing every duplicate upload must cost simulated time"
        );
    }

    #[test]
    fn ingest_fault_hooks_corrupt_and_flood_deterministically() {
        struct Plan {
            flood_target: u64,
        }
        impl crate::IngestFaults for Plan {
            fn corrupt_upload(&self, ordinal: u64) -> bool {
                ordinal == 1
            }
            fn flood(&self, ordinal: u64) -> bool {
                ordinal == self.flood_target
            }
        }
        let uploads = vec![Arc::new(crate::UploadDoc::new("good", "blif", ".model g\n.end\n"))];
        let requests = ingest_workload(&uploads, 16);
        let first = requests[0].ordinal;
        let run = || {
            server(ServeConfig::default())
                .with_ingestor(Box::new(StubIngestor))
                .with_ingest_faults(std::sync::Arc::new(Plan { flood_target: first }))
                .run(7, &requests)
                .expect("runs")
        };
        let (report, outcomes) = run();
        // The flooded ordinal is rejected; later identical uploads
        // still ingest (the flood rejection was not cached).
        let dispo = |ordinal: u64| {
            outcomes.iter().find_map(|o| match o {
                RequestOutcome::Completed { ordinal: ord, ingest, .. } if *ord == ordinal => {
                    ingest.as_deref().cloned()
                }
                _ => None,
            })
        };
        assert!(matches!(dispo(first), Some(IngestDisposition::Rejected { reason }) if reason.contains("flood")));
        assert!(report.counters.ingest_accepted > 0, "flood rejection is not cached");
        // The corrupted ordinal's torn text no longer starts with
        // `.model`... unless the tear lands mid-document; either way
        // the run replays byte-identically.
        let (again, again_outcomes) = run();
        assert_eq!(report.to_json(), again.to_json());
        assert_eq!(outcomes, again_outcomes);
    }

    /// Threshold stub: feasible only above a deadline cutoff, so one
    /// stream exercises both the feasible and infeasible paths.
    struct ThresholdRecipePlanner;
    impl RecipePlanner for ThresholdRecipePlanner {
        fn plan_recipe(
            &self,
            design: &crate::ServeDesign,
            _stage_secs: &[[f64; 4]; 4],
            deadline_secs: u64,
        ) -> Result<Option<RecipePlanSummary>, ServeError> {
            if deadline_secs < 10_000 {
                return Ok(None);
            }
            Ok(Some(RecipePlanSummary {
                recipe: format!("balance;rewrite@{}", design.name),
                vcpus: [2, 4, 4, 1],
                total_runtime_secs: deadline_secs - 1,
                total_cost_usd: 0.25,
                predicted_synth_ms: [8, 5, 3, 2],
            }))
        }
    }

    #[test]
    fn recipe_requests_route_through_the_recipe_planner() {
        let pool = design_pool();
        let requests = synthetic_requests(
            &pool,
            &WorkloadConfig {
                requests: 48,
                plan_every: 0,
                recipe_every: 2,
                ..Default::default()
            },
        );
        assert!(requests
            .iter()
            .any(|r| matches!(r.kind, RequestKind::PlanRecipe { .. })));

        // Without a planner attached the request class is a typed error.
        let bare = server(ServeConfig::default()).run(7, &requests);
        assert!(matches!(bare, Err(ServeError::Plan { .. })));

        let run = || {
            server(ServeConfig::default())
                .with_recipe_planner(Box::new(ThresholdRecipePlanner))
                .run(7, &requests)
                .expect("runs")
        };
        let (report, outcomes) = run();
        let recipe_requests = requests
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::PlanRecipe { .. }))
            .count() as u64;
        // Joint plans share the plan counters; every PlanRecipe request
        // either produced a summary or counted as infeasible.
        assert_eq!(report.counters.plans, recipe_requests);
        let (with_plan, without_plan) = outcomes.iter().fold((0u64, 0u64), |(w, wo), o| match o {
            RequestOutcome::Completed { recipe: Some(_), .. } => (w + 1, wo),
            _ => (w, wo + 1),
        });
        assert!(with_plan > 0, "some deadlines clear the stub's cutoff");
        assert_eq!(report.counters.plans_infeasible, recipe_requests - with_plan);
        assert_eq!(with_plan + without_plan, outcomes.len() as u64);
        for outcome in &outcomes {
            if let RequestOutcome::Completed { recipe: Some(summary), .. } = outcome {
                assert!(summary.recipe.starts_with("balance;rewrite@"));
                assert_eq!(summary.vcpus, [2, 4, 4, 1]);
            }
        }
        // Replays byte-identically with the planner attached.
        let (again, again_outcomes) = run();
        assert_eq!(report.to_json(), again.to_json());
        assert_eq!(outcomes, again_outcomes);
    }
}
