//! Typed serving errors.

use eda_cloud_gcn::LoadWeightsError;
use eda_cloud_mckp::MckpError;
use std::fmt;

/// Everything that can go wrong while serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The admission queue was full when the request arrived; the
    /// request was shed instead of enqueued.
    Overloaded {
        /// Arrival ordinal of the shed request.
        ordinal: u64,
        /// Queue depth at the moment of rejection.
        queue_depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The registry holds no model under the requested name/version.
    UnknownModel {
        /// The name (and optional version) that failed to resolve.
        name: String,
    },
    /// A model snapshot failed to parse.
    Snapshot {
        /// What was malformed.
        message: String,
    },
    /// Deployment planning failed (malformed MCKP instance).
    Plan {
        /// The underlying solver complaint.
        message: String,
    },
    /// An [`crate::RequestKind::Ingest`] request could not be routed:
    /// no ingestor is attached, or the request carries no upload.
    /// (A *rejected* upload is an outcome, not this error.)
    Ingest {
        /// What was missing.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Overloaded { ordinal, queue_depth, capacity } => write!(
                f,
                "request {ordinal} shed: admission queue full ({queue_depth}/{capacity})"
            ),
            Self::UnknownModel { name } => write!(f, "no model registered under `{name}`"),
            Self::Snapshot { message } => write!(f, "cannot load model snapshot: {message}"),
            Self::Plan { message } => write!(f, "deployment planning failed: {message}"),
            Self::Ingest { message } => write!(f, "ingest routing failed: {message}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<LoadWeightsError> for ServeError {
    fn from(e: LoadWeightsError) -> Self {
        Self::Snapshot { message: e.message }
    }
}

impl From<MckpError> for ServeError {
    fn from(e: MckpError) -> Self {
        Self::Plan { message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_facts() {
        let e = ServeError::Overloaded { ordinal: 9, queue_depth: 32, capacity: 32 };
        let s = e.to_string();
        assert!(s.contains("request 9"), "{s}");
        assert!(s.contains("32/32"), "{s}");
        assert!(ServeError::UnknownModel { name: "prod".into() }
            .to_string()
            .contains("`prod`"));
    }

    #[test]
    fn converts_from_load_weights_error() {
        let e: ServeError = LoadWeightsError { message: "bad dim".into() }.into();
        assert_eq!(e, ServeError::Snapshot { message: "bad dim".into() });
    }
}
