//! The ingestion boundary: how the server turns an untrusted
//! [`UploadDoc`] into a servable design.
//!
//! The server owns admission, caching, and accounting for
//! [`crate::RequestKind::Ingest`] requests but never parses upload text
//! itself — an attached [`Ingestor`] does. `eda-cloud-ingest` provides
//! the production implementation (parsers, validation pipeline, OOD
//! gate); tests stub the trait the same way they stub
//! [`crate::Planner`]. Rejection is an *outcome*, not an error: a
//! rejected upload completes its request with zeroed predictions and is
//! quarantined — it never enters the result cache and never reaches the
//! GCN.

use crate::{ServeDesign, UploadDoc};
use std::sync::Arc;

/// Turns uploaded text into a validated design, or rejects it.
///
/// Implementations must be pure functions of the document content:
/// the server caches outcomes by upload fingerprint, so two
/// byte-identical uploads must ingest identically.
pub trait Ingestor: Send + Sync {
    /// Parse, validate, and score one upload.
    fn ingest(&self, doc: &UploadDoc) -> IngestOutcome;
}

/// How one upload ingested. `Clone` because outcomes live in the
/// server's fingerprint-keyed ingest cache.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// The upload parsed and validated; the design is servable.
    Accepted(IngestSummary),
    /// The upload was rejected (parse error, lint failure, quota, …).
    Rejected {
        /// Human-readable reason, including the position for parse
        /// errors.
        reason: String,
    },
}

impl IngestOutcome {
    /// Whether the upload was accepted.
    #[must_use]
    pub fn is_accepted(&self) -> bool {
        matches!(self, Self::Accepted(_))
    }
}

/// An accepted upload: the servable design plus the OOD gate's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestSummary {
    /// The validated design, fingerprinted and ready for the batched
    /// forward pass and the result cache.
    pub design: Arc<ServeDesign>,
    /// Node count of the ingested graph (diagnostic).
    pub nodes: u64,
    /// Integer-micros distance from the training-corpus feature
    /// profile (`1_000_000` = one corpus deviation).
    pub ood_distance_micros: u64,
    /// Whether the distance crossed the gate's threshold — the
    /// prediction is served but flagged as out-of-distribution.
    pub ood: bool,
}

/// Per-request ingest disposition recorded on the completed outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestDisposition {
    /// Served from the ingested design.
    Accepted {
        /// Fingerprint of the ingested [`ServeDesign`].
        fingerprint: u64,
        /// The OOD gate's distance score, micros.
        ood_distance_micros: u64,
        /// Whether the prediction was flagged out-of-distribution.
        ood: bool,
    },
    /// Quarantined: completed with zeroed predictions, never cached,
    /// never predicted.
    Rejected {
        /// Why the ingestor (or an injected fault) rejected it.
        reason: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let rejected = IngestOutcome::Rejected { reason: "parse error at line 2".into() };
        assert!(!rejected.is_accepted());
        let trait_obj: Box<dyn Ingestor> = Box::new(RejectAll);
        assert_eq!(trait_obj.ingest(&UploadDoc::new("x", "blif", "junk")), rejected);
    }

    struct RejectAll;
    impl Ingestor for RejectAll {
        fn ingest(&self, _doc: &UploadDoc) -> IngestOutcome {
            IngestOutcome::Rejected { reason: "parse error at line 2".into() }
        }
    }
}
