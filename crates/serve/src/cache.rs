//! Deterministic keyed LRU result cache.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded least-recently-used cache with hit/miss accounting.
///
/// Recency is a monotonic logical tick bumped on every lookup and
/// insert; eviction scans for the minimum tick. Ticks are unique, so
/// the victim is unambiguous and the cache's behavior is a pure
/// function of the operation sequence — no wall-clock, no hasher-order
/// dependence. The scan is `O(len)`, which is the right trade for the
/// small result caches a serving tier keeps (tens to hundreds of
/// entries).
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    entries: HashMap<K, (V, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `capacity` entries; `capacity == 0`
    /// disables caching (every lookup misses, inserts are dropped).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((value, tick)) => {
                *tick = self.tick;
                self.hits += 1;
                Some(value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least recently used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Unique ticks make the minimum unambiguous, so scan order
            // (and therefore the hasher) cannot affect the victim.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
                .expect("cache is non-empty when full");
            self.entries.remove(&victim);
        }
        self.entries.insert(key, (value, self.tick));
    }

    /// Drop every entry while preserving the hit/miss accounting and
    /// the recency clock — a fault-injection "cache wipe", not a
    /// statistics reset.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Entries currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut c: LruCache<u64, &str> = LruCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(&1), Some(10)); // 1 is now fresher than 2
        c.insert(3, 30); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c: LruCache<u64, u64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh, not a third entry
        assert_eq!(c.len(), 2);
        c.insert(3, 30); // evicts 2 (1 was refreshed later)
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn clear_wipes_entries_but_keeps_accounting() {
        let mut c: LruCache<u64, u64> = LruCache::new(4);
        c.insert(1, 10);
        assert_eq!(c.get(&1), Some(10));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None, "wiped entries must miss");
        assert_eq!((c.hits(), c.misses()), (1, 1), "counters survive the wipe");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u64, u64> = LruCache::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.misses(), 1);
    }
}
