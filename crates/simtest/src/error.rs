//! Simtest errors.

use eda_cloud_engine::EngineError;
use eda_cloud_fleet::FleetError;
use eda_cloud_lifecycle::LifecycleError;
use eda_cloud_serve::ServeError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the fault-injection harness.
#[derive(Debug, Clone, PartialEq)]
pub enum SimtestError {
    /// The harness configuration is out of range.
    Config(&'static str),
    /// A fault-plan JSON document failed to parse.
    Plan {
        /// What was wrong with the document.
        message: String,
    },
    /// The fleet phase rejected its workload.
    Fleet(FleetError),
    /// The serve phase rejected its stream.
    Serve(ServeError),
    /// The lifecycle phase rejected its configuration or a registry
    /// operation.
    Lifecycle(LifecycleError),
    /// The engine phase rejected its multi-region configuration.
    Engine(EngineError),
    /// [`crate::shrink_plan`] was asked to minimize a plan that does
    /// not violate any invariant — there is nothing to reproduce.
    ShrinkOnPassingPlan,
}

impl fmt::Display for SimtestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimtestError::Config(message) => write!(f, "invalid simtest config: {message}"),
            SimtestError::Plan { message } => write!(f, "invalid fault plan: {message}"),
            SimtestError::Fleet(e) => write!(f, "fleet phase failed: {e}"),
            SimtestError::Serve(e) => write!(f, "serve phase failed: {e}"),
            SimtestError::Lifecycle(e) => write!(f, "lifecycle phase failed: {e}"),
            SimtestError::Engine(e) => write!(f, "engine phase failed: {e}"),
            SimtestError::ShrinkOnPassingPlan => {
                write!(f, "cannot shrink a fault plan that violates no invariant")
            }
        }
    }
}

impl Error for SimtestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimtestError::Fleet(e) => Some(e),
            SimtestError::Serve(e) => Some(e),
            SimtestError::Lifecycle(e) => Some(e),
            SimtestError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FleetError> for SimtestError {
    fn from(e: FleetError) -> Self {
        SimtestError::Fleet(e)
    }
}

impl From<ServeError> for SimtestError {
    fn from(e: ServeError) -> Self {
        SimtestError::Serve(e)
    }
}

impl From<LifecycleError> for SimtestError {
    fn from(e: LifecycleError) -> Self {
        SimtestError::Lifecycle(e)
    }
}

impl From<EngineError> for SimtestError {
    fn from(e: EngineError) -> Self {
        SimtestError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = SimtestError::Config("workers must be positive");
        assert!(e.to_string().contains("workers"));
        assert!(e.source().is_none());
        let e = SimtestError::Plan { message: "line 3: bad kind".into() };
        assert!(e.to_string().contains("line 3"));
        let e: SimtestError = FleetError::InvalidConfig("no stages").into();
        assert!(e.to_string().contains("fleet"));
        assert!(e.source().is_some());
        let e: SimtestError =
            LifecycleError::Config { message: "requests must be positive".into() }.into();
        assert!(e.to_string().contains("lifecycle"));
        assert!(e.source().is_some());
        let e: SimtestError = EngineError::InvalidConfig("region sim needs a region").into();
        assert!(e.to_string().contains("engine"));
        assert!(e.source().is_some());
        assert!(SimtestError::ShrinkOnPassingPlan.to_string().contains("shrink"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<SimtestError>();
    }
}
