//! The byte-deterministic run report.
//!
//! [`SimtestReport`] folds the three driven loops' counters, digests of
//! their full canonical JSON reports, fault accounting, and every
//! invariant violation into one hand-rolled JSON document. Nothing in
//! it depends on worker count or wall-clock time, so `same (config,
//! plan) → same bytes` holds at any fan-out — which is itself one of
//! the harness's acceptance checks.

use crate::{FaultPlan, Violation};
use eda_cloud_fleet::FleetCounters;
use eda_cloud_lifecycle::LifecycleCounters;
use eda_cloud_serve::ServeCounters;

/// FNV-1a 64-bit over raw bytes; used to pin each sub-report's full
/// JSON without embedding kilobytes of it.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Escape a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Engine-phase counters: the multi-region simulation's job and
/// cross-shard message accounting, folded across regions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnginePhase {
    /// Jobs in the multi-region workload.
    pub submitted: u64,
    /// Jobs served to completion across regions.
    pub served: u64,
    /// Jobs rejected by tenant quotas or share bounds.
    pub quota_rejected: u64,
    /// Jobs shed on full queues.
    pub shed: u64,
    /// Jobs migrated between regions under overload.
    pub migrated: u64,
    /// Cross-shard messages sent.
    pub sent: u64,
    /// Cross-shard messages delivered.
    pub delivered: u64,
    /// Cross-shard messages dropped by the fault plan.
    pub dropped: u64,
    /// Messages the plan delayed past their natural delivery time.
    pub delayed: u64,
    /// Messages held behind a region partition until it healed.
    pub held: u64,
}

/// The folded outcome of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimtestReport {
    /// The workload seed.
    pub seed: u64,
    /// The fault plan that was injected.
    pub plan: FaultPlan,
    /// Fleet-loop counters.
    pub fleet: FleetCounters,
    /// Serve-loop counters.
    pub serve: ServeCounters,
    /// Lifecycle-loop counters.
    pub lifecycle: LifecycleCounters,
    /// Engine-phase (multi-region) counters.
    pub engine: EnginePhase,
    /// FNV-1a digest of the fleet report's canonical JSON.
    pub fleet_digest: u64,
    /// FNV-1a digest of the serve report's canonical JSON.
    pub serve_digest: u64,
    /// FNV-1a digest of the lifecycle report's canonical JSON.
    pub lifecycle_digest: u64,
    /// FNV-1a digest of the region report's canonical JSON.
    pub engine_digest: u64,
    /// Trace spans marked as injected faults, summed over the loops.
    pub fault_spans: u64,
    /// Snapshot corruptions the plan scheduled.
    pub corruption_injected: u64,
    /// Corruptions the registry's checksum rejected (should equal
    /// `corruption_injected`; shortfalls also appear as violations).
    pub corruption_rejected: u64,
    /// Every invariant violation the checker suite found. Empty means
    /// the run passed.
    pub violations: Vec<Violation>,
}

impl SimtestReport {
    /// True when every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical JSON: fixed key order, integer-only values, digests as
    /// zero-padded hex. Byte-identical across worker counts.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"plan\": {},\n", self.plan.to_json_line()));
        let f = &self.fleet;
        out.push_str(&format!(
            "  \"fleet\": {{\"digest\": \"{:016x}\", \"submitted\": {}, \"completed\": {}, \
             \"exhausted\": {}, \"deadline_hits\": {}, \"interruptions\": {}, \"retries\": {}, \
             \"spot_fallbacks\": {}}},\n",
            self.fleet_digest,
            f.jobs_submitted,
            f.jobs_completed,
            f.jobs_exhausted,
            f.deadline_hits,
            f.interruptions,
            f.retries,
            f.spot_fallbacks,
        ));
        let s = &self.serve;
        out.push_str(&format!(
            "  \"serve\": {{\"digest\": \"{:016x}\", \"requests\": {}, \"completed\": {}, \
             \"shed\": {}, \"deadline_hits\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"gcn_predictions\": {}, \"batches\": {}, \"ingest_accepted\": {}, \
             \"ingest_rejected\": {}, \"ood_flagged\": {}}},\n",
            self.serve_digest,
            s.requests,
            s.completed,
            s.shed,
            s.deadline_hits,
            s.cache_hits,
            s.cache_misses,
            s.gcn_predictions,
            s.batches,
            s.ingest_accepted,
            s.ingest_rejected,
            s.ood_flagged,
        ));
        let l = &self.lifecycle;
        out.push_str(&format!(
            "  \"lifecycle\": {{\"digest\": \"{:016x}\", \"requests\": {}, \
             \"feedback_joins\": {}, \"feedback_dropped\": {}, \"drift_detections\": {}, \
             \"retrains\": {}, \"canaries_started\": {}, \"promotions\": {}, \
             \"rollbacks\": {}}},\n",
            self.lifecycle_digest,
            l.requests,
            l.feedback_joins,
            l.feedback_dropped,
            l.drift_detections,
            l.retrains,
            l.canaries_started,
            l.promotions,
            l.rollbacks,
        ));
        let e = &self.engine;
        out.push_str(&format!(
            "  \"engine\": {{\"digest\": \"{:016x}\", \"submitted\": {}, \"served\": {}, \
             \"quota_rejected\": {}, \"shed\": {}, \"migrated\": {}, \"sent\": {}, \
             \"delivered\": {}, \"dropped\": {}, \"delayed\": {}, \"held\": {}}},\n",
            self.engine_digest,
            e.submitted,
            e.served,
            e.quota_rejected,
            e.shed,
            e.migrated,
            e.sent,
            e.delivered,
            e.dropped,
            e.delayed,
            e.held,
        ));
        out.push_str(&format!(
            "  \"faults\": {{\"events\": {}, \"fault_spans\": {}, \"corruption_injected\": {}, \
             \"corruption_rejected\": {}}},\n",
            self.plan.events.len(),
            self.fault_spans,
            self.corruption_injected,
            self.corruption_rejected,
        ));
        out.push_str(&format!("  \"passed\": {},\n", self.passed()));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"checker\": \"{}\", \"detail\": \"{}\"}}",
                escape(v.checker),
                escape(&v.detail)
            ));
        }
        if self.violations.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_control_bytes() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_json_is_stable_and_reflects_violations() {
        let report = SimtestReport {
            seed: 7,
            plan: FaultPlan::empty(7),
            fleet: FleetCounters::default(),
            serve: ServeCounters::default(),
            lifecycle: LifecycleCounters::default(),
            engine: EnginePhase::default(),
            fleet_digest: 0xdead_beef,
            serve_digest: 1,
            lifecycle_digest: 2,
            engine_digest: 3,
            fault_spans: 0,
            corruption_injected: 0,
            corruption_rejected: 0,
            violations: Vec::new(),
        };
        assert!(report.passed());
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "rendering is a pure function");
        assert!(json.contains("\"digest\": \"00000000deadbeef\""));
        assert!(json.contains("\"passed\": true"));
        assert!(json.contains("\"violations\": []"));
        let mut failing = report;
        failing.violations.push(Violation {
            checker: "fleet_conservation",
            detail: "a \"quoted\" detail".into(),
        });
        assert!(!failing.passed());
        let json = failing.to_json();
        assert!(json.contains("\"passed\": false"));
        assert!(json.contains(r#"\"quoted\""#));
    }
}
