//! Fault plans: what goes wrong, where, and when.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s keyed entirely on
//! canonical identity — job ids, stage indices, attempt numbers,
//! request ordinals — never on wall-clock time or thread schedule, so
//! the same plan replays byte-identically at any worker count. Plans
//! are generated from a seed, rendered to a canonical JSON document
//! (fixed key order, one event per line, integers only), and parsed
//! back strictly: the parser accepts exactly what the renderer emits,
//! so a shrunk reproducer artifact round-trips losslessly.

use crate::{SimtestConfig, SimtestError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Fractions are carried as integer parts-per-million so the plan
/// document never contains a float.
pub const PPM: u64 = 1_000_000;

/// One scheduled fault. Every variant targets canonical identity in
/// one of the three driven loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Fleet: forcibly reclaim the VM of any stage of jobs
    /// `job_lo..=job_hi` while the stage's attempt counter is below
    /// `attempts`, at `fraction_ppm` of the stage runtime.
    SpotStorm {
        /// First job id hit by the storm.
        job_lo: u64,
        /// Last job id hit by the storm (inclusive).
        job_hi: u64,
        /// Attempts interrupted per stage before the storm passes.
        attempts: u32,
        /// Reclaim point as parts-per-million of the stage runtime.
        fraction_ppm: u64,
    },
    /// Fleet: inflate one stage's duration to `pct` percent (a slow or
    /// stalling VM).
    VmStall {
        /// Job whose stage stalls.
        job_id: u64,
        /// Stage index within the job.
        stage: usize,
        /// Inflated duration, percent of nominal (`>= 100`).
        pct: u64,
    },
    /// Serve: shed every request with ordinal in `ord_lo..=ord_hi` at
    /// admission (an overload burst).
    OverloadBurst {
        /// First shed ordinal.
        ord_lo: u64,
        /// Last shed ordinal (inclusive).
        ord_hi: u64,
    },
    /// Serve: wipe the result cache when this ordinal arrives.
    CacheWipe {
        /// Arrival ordinal triggering the wipe.
        ordinal: u64,
    },
    /// Lifecycle: delay one request's ground-truth feedback join by an
    /// extra `extra_us` (a straggling flow job).
    FeedbackDelay {
        /// Request ordinal whose join straggles.
        ordinal: u64,
        /// Extra delay on top of the configured feedback delay, µs.
        extra_us: u64,
    },
    /// Lifecycle: drop one request's feedback join entirely.
    FeedbackDrop {
        /// Request ordinal whose join is lost.
        ordinal: u64,
    },
    /// Flip one byte of the serialized model snapshot; the registry's
    /// checksum footer must reject the document with a typed error.
    SnapshotCorruption {
        /// Byte to flip, reduced modulo the document length at
        /// injection time.
        byte_index: u64,
    },
    /// Lifecycle: add `spike_us` to the observed latency of canary-arm
    /// requests with ordinals in `ord_lo..=ord_hi` (degraded service
    /// inside the canary window).
    CanaryLatencySpike {
        /// First spiked ordinal.
        ord_lo: u64,
        /// Last spiked ordinal (inclusive).
        ord_hi: u64,
        /// Added latency, µs.
        spike_us: u64,
    },
    /// Engine: delay cross-shard messages from region `src` to region
    /// `dst` with source sequence numbers in `seq_lo..=seq_hi` by an
    /// extra `extra_us` (a congested inter-region link).
    CrossShardDelay {
        /// Source region of the delayed messages.
        src: u32,
        /// Destination region of the delayed messages.
        dst: u32,
        /// First delayed source sequence number.
        seq_lo: u64,
        /// Last delayed source sequence number (inclusive).
        seq_hi: u64,
        /// Extra delivery delay, µs.
        extra_us: u64,
    },
    /// Recipe search: stretch the simulated cost of the evaluations
    /// selected at iterations `iter_lo..=iter_hi` by an extra
    /// `extra_us` each (a slow synthesis worker). Faults only stretch
    /// time accounting — the search tree, visit counts, and chosen
    /// recipe are unchanged.
    RecipeEvalStall {
        /// First stalled iteration.
        iter_lo: u64,
        /// Last stalled iteration (inclusive).
        iter_hi: u64,
        /// Extra simulated evaluation time per stalled iteration, µs.
        extra_us: u64,
    },
    /// Ingest: tear the upload of the request with this arrival
    /// ordinal mid-transfer (the front door must quarantine the torn
    /// document with a typed parse error, never panic).
    IngestCorruptUpload {
        /// Arrival ordinal whose upload is torn.
        ordinal: u64,
    },
    /// Ingest: reject every upload with ordinal in `ord_lo..=ord_hi`
    /// before the ingestor runs (flood control); the rejection must
    /// not poison the ingest cache for later identical uploads.
    IngestFlood {
        /// First flooded ordinal.
        ord_lo: u64,
        /// Last flooded ordinal (inclusive).
        ord_hi: u64,
    },
    /// Engine: partition the `src → dst` link — messages sent in
    /// `from_us..heal_us` are held at the destination until the
    /// partition heals at `heal_us`.
    RegionPartition {
        /// Source region of the partitioned link.
        src: u32,
        /// Destination region of the partitioned link.
        dst: u32,
        /// Partition start on the simulated clock, µs (inclusive).
        from_us: u64,
        /// Heal time on the simulated clock, µs (exclusive for sends,
        /// the earliest delivery time for held messages).
        heal_us: u64,
    },
}

impl FaultEvent {
    /// The event's canonical kind string, as it appears in the JSON.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::SpotStorm { .. } => "spot_storm",
            FaultEvent::VmStall { .. } => "vm_stall",
            FaultEvent::OverloadBurst { .. } => "overload_burst",
            FaultEvent::CacheWipe { .. } => "cache_wipe",
            FaultEvent::FeedbackDelay { .. } => "feedback_delay",
            FaultEvent::FeedbackDrop { .. } => "feedback_drop",
            FaultEvent::SnapshotCorruption { .. } => "snapshot_corruption",
            FaultEvent::CanaryLatencySpike { .. } => "canary_latency_spike",
            FaultEvent::CrossShardDelay { .. } => "cross_shard_delay",
            FaultEvent::RecipeEvalStall { .. } => "recipe_eval_stall",
            FaultEvent::IngestCorruptUpload { .. } => "ingest_corrupt_upload",
            FaultEvent::IngestFlood { .. } => "ingest_flood",
            FaultEvent::RegionPartition { .. } => "region_partition",
        }
    }

    /// Render the event as one canonical single-line JSON object.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match *self {
            FaultEvent::SpotStorm { job_lo, job_hi, attempts, fraction_ppm } => format!(
                "{{\"kind\":\"spot_storm\",\"job_lo\":{job_lo},\"job_hi\":{job_hi},\
                 \"attempts\":{attempts},\"fraction_ppm\":{fraction_ppm}}}"
            ),
            FaultEvent::VmStall { job_id, stage, pct } => format!(
                "{{\"kind\":\"vm_stall\",\"job_id\":{job_id},\"stage\":{stage},\"pct\":{pct}}}"
            ),
            FaultEvent::OverloadBurst { ord_lo, ord_hi } => format!(
                "{{\"kind\":\"overload_burst\",\"ord_lo\":{ord_lo},\"ord_hi\":{ord_hi}}}"
            ),
            FaultEvent::CacheWipe { ordinal } => {
                format!("{{\"kind\":\"cache_wipe\",\"ordinal\":{ordinal}}}")
            }
            FaultEvent::FeedbackDelay { ordinal, extra_us } => format!(
                "{{\"kind\":\"feedback_delay\",\"ordinal\":{ordinal},\"extra_us\":{extra_us}}}"
            ),
            FaultEvent::FeedbackDrop { ordinal } => {
                format!("{{\"kind\":\"feedback_drop\",\"ordinal\":{ordinal}}}")
            }
            FaultEvent::SnapshotCorruption { byte_index } => {
                format!("{{\"kind\":\"snapshot_corruption\",\"byte_index\":{byte_index}}}")
            }
            FaultEvent::CanaryLatencySpike { ord_lo, ord_hi, spike_us } => format!(
                "{{\"kind\":\"canary_latency_spike\",\"ord_lo\":{ord_lo},\"ord_hi\":{ord_hi},\
                 \"spike_us\":{spike_us}}}"
            ),
            FaultEvent::CrossShardDelay { src, dst, seq_lo, seq_hi, extra_us } => format!(
                "{{\"kind\":\"cross_shard_delay\",\"src\":{src},\"dst\":{dst},\
                 \"seq_lo\":{seq_lo},\"seq_hi\":{seq_hi},\"extra_us\":{extra_us}}}"
            ),
            FaultEvent::RecipeEvalStall { iter_lo, iter_hi, extra_us } => format!(
                "{{\"kind\":\"recipe_eval_stall\",\"iter_lo\":{iter_lo},\"iter_hi\":{iter_hi},\
                 \"extra_us\":{extra_us}}}"
            ),
            FaultEvent::IngestCorruptUpload { ordinal } => {
                format!("{{\"kind\":\"ingest_corrupt_upload\",\"ordinal\":{ordinal}}}")
            }
            FaultEvent::IngestFlood { ord_lo, ord_hi } => format!(
                "{{\"kind\":\"ingest_flood\",\"ord_lo\":{ord_lo},\"ord_hi\":{ord_hi}}}"
            ),
            FaultEvent::RegionPartition { src, dst, from_us, heal_us } => format!(
                "{{\"kind\":\"region_partition\",\"src\":{src},\"dst\":{dst},\
                 \"from_us\":{from_us},\"heal_us\":{heal_us}}}"
            ),
        }
    }
}

/// A seeded schedule of faults, replayable across runs and worker
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The scheduled faults, in generation order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no faults: the harness runs clean.
    #[must_use]
    pub fn empty(seed: u64) -> Self {
        Self { seed, events: Vec::new() }
    }

    /// Generate `faults` events from `seed`, targeted at the workload
    /// shapes in `config` so most events actually land. Generation
    /// consumes one ChaCha8 stream in event order — same seed, same
    /// plan, bytes and all.
    #[must_use]
    pub fn generate(seed: u64, faults: usize, config: &SimtestConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA17_1227_5EED_0001);
        let jobs = config.fleet_jobs.max(1) as u64;
        let serve_ords = config.serve_requests.max(1) as u64;
        let life_ords = config.lifecycle_requests.max(1) as u64;
        let regions = config.engine_regions.max(2) as u32;
        let events = (0..faults)
            .map(|_| match rng.gen_range(0u32..10) {
                0 => {
                    let job_lo = rng.gen_range(0..jobs);
                    FaultEvent::SpotStorm {
                        job_lo,
                        job_hi: (job_lo + rng.gen_range(0u64..3)).min(jobs - 1),
                        attempts: rng.gen_range(1u32..=8),
                        fraction_ppm: rng.gen_range(50_000u64..950_000),
                    }
                }
                1 => FaultEvent::VmStall {
                    job_id: rng.gen_range(0..jobs),
                    stage: rng.gen_range(0usize..4),
                    pct: rng.gen_range(110u64..400),
                },
                2 => {
                    let ord_lo = rng.gen_range(0..serve_ords);
                    FaultEvent::OverloadBurst {
                        ord_lo,
                        ord_hi: (ord_lo + rng.gen_range(0u64..6)).min(serve_ords - 1),
                    }
                }
                3 => FaultEvent::CacheWipe { ordinal: rng.gen_range(0..serve_ords) },
                4 => FaultEvent::FeedbackDelay {
                    ordinal: rng.gen_range(0..life_ords),
                    extra_us: rng.gen_range(100_000u64..5_000_000),
                },
                5 => FaultEvent::FeedbackDrop { ordinal: rng.gen_range(0..life_ords) },
                6 => FaultEvent::SnapshotCorruption { byte_index: rng.gen_range(0u64..65_536) },
                7 => {
                    let ord_lo = rng.gen_range(0..life_ords);
                    FaultEvent::CanaryLatencySpike {
                        ord_lo,
                        ord_hi: (ord_lo + rng.gen_range(0u64..32)).min(life_ords - 1),
                        spike_us: rng.gen_range(100_000u64..20_000_000),
                    }
                }
                8 => {
                    let src = rng.gen_range(0..regions);
                    let dst = (src + rng.gen_range(1..regions)) % regions;
                    let seq_lo = rng.gen_range(0u64..16);
                    FaultEvent::CrossShardDelay {
                        src,
                        dst,
                        seq_lo,
                        seq_hi: seq_lo + rng.gen_range(0u64..8),
                        extra_us: rng.gen_range(10_000u64..500_000),
                    }
                }
                _ => {
                    let src = rng.gen_range(0..regions);
                    let dst = (src + rng.gen_range(1..regions)) % regions;
                    let from_us = rng.gen_range(0u64..2_000_000);
                    FaultEvent::RegionPartition {
                        src,
                        dst,
                        from_us,
                        heal_us: from_us + rng.gen_range(100_000u64..2_000_000),
                    }
                }
            })
            .collect();
        Self { seed, events }
    }

    /// Reject plans whose parameters the injectors cannot honor.
    ///
    /// # Errors
    ///
    /// Returns [`SimtestError::Plan`] for an out-of-range fraction,
    /// stage index, stall percent, or an inverted range.
    pub fn validate(&self) -> Result<(), SimtestError> {
        for (i, event) in self.events.iter().enumerate() {
            let problem = match *event {
                FaultEvent::SpotStorm { job_lo, job_hi, attempts, fraction_ppm } => {
                    if fraction_ppm > PPM {
                        Some(format!("fraction_ppm {fraction_ppm} exceeds {PPM}"))
                    } else if attempts == 0 {
                        Some("attempts must be positive".into())
                    } else if job_lo > job_hi {
                        Some(format!("job range {job_lo}..={job_hi} is inverted"))
                    } else {
                        None
                    }
                }
                FaultEvent::VmStall { stage, pct, .. } => {
                    if stage >= 4 {
                        Some(format!("stage index {stage} out of range (jobs have 4 stages)"))
                    } else if pct < 100 {
                        Some(format!("stall pct {pct} would shorten the stage"))
                    } else {
                        None
                    }
                }
                FaultEvent::OverloadBurst { ord_lo, ord_hi }
                | FaultEvent::IngestFlood { ord_lo, ord_hi }
                | FaultEvent::CanaryLatencySpike { ord_lo, ord_hi, .. } => {
                    if ord_lo > ord_hi {
                        Some(format!("ordinal range {ord_lo}..={ord_hi} is inverted"))
                    } else {
                        None
                    }
                }
                FaultEvent::RecipeEvalStall { iter_lo, iter_hi, .. } => {
                    if iter_lo > iter_hi {
                        Some(format!("iteration range {iter_lo}..={iter_hi} is inverted"))
                    } else {
                        None
                    }
                }
                FaultEvent::CrossShardDelay { src, dst, seq_lo, seq_hi, .. } => {
                    if src == dst {
                        Some(format!("cross-shard link {src} -> {dst} is a self-loop"))
                    } else if seq_lo > seq_hi {
                        Some(format!("sequence range {seq_lo}..={seq_hi} is inverted"))
                    } else {
                        None
                    }
                }
                FaultEvent::RegionPartition { src, dst, from_us, heal_us } => {
                    if src == dst {
                        Some(format!("partitioned link {src} -> {dst} is a self-loop"))
                    } else if from_us >= heal_us {
                        Some(format!("partition window {from_us}..{heal_us} is empty"))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(message) = problem {
                return Err(SimtestError::Plan {
                    message: format!("event {i} ({}): {message}", event.kind()),
                });
            }
        }
        Ok(())
    }

    /// Render the canonical multi-line JSON document: fixed key order,
    /// one event per line, integers only. This is the replayable
    /// artifact format the shrinker emits.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.events.len() * 96);
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str("  \"events\": [\n");
        for (i, event) in self.events.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&event.to_json_line());
            s.push_str(if i + 1 < self.events.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}");
        s
    }

    /// Render the plan as one JSON line (for embedding in reports).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let events: Vec<String> = self.events.iter().map(FaultEvent::to_json_line).collect();
        format!("{{\"seed\":{},\"events\":[{}]}}", self.seed, events.join(","))
    }

    /// Parse a canonical plan document (the [`FaultPlan::to_json`]
    /// shape, modulo surrounding whitespace per line).
    ///
    /// # Errors
    ///
    /// Returns [`SimtestError::Plan`] for structural deviations,
    /// unknown kinds, missing or extra fields, or non-integer values —
    /// a corrupt artifact must never silently replay as a different
    /// plan.
    pub fn from_json(text: &str) -> Result<Self, SimtestError> {
        let bad = |message: String| SimtestError::Plan { message };
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        fn expect<'a>(
            lines: &mut impl Iterator<Item = &'a str>,
            want: &str,
        ) -> Result<(), SimtestError> {
            match lines.next() {
                Some(line) if line == want => Ok(()),
                Some(line) => Err(SimtestError::Plan {
                    message: format!("expected `{want}`, found `{line}`"),
                }),
                None => Err(SimtestError::Plan {
                    message: format!("expected `{want}`, found end of document"),
                }),
            }
        }
        expect(&mut lines, "{")?;
        let seed_line = lines
            .next()
            .ok_or_else(|| bad("missing `\"seed\"` line".into()))?;
        let seed = seed_line
            .strip_prefix("\"seed\": ")
            .and_then(|rest| rest.strip_suffix(','))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| bad(format!("malformed seed line `{seed_line}`")))?;
        expect(&mut lines, "\"events\": [")?;
        let mut events = Vec::new();
        loop {
            let line = lines
                .next()
                .ok_or_else(|| bad("unterminated events array".into()))?;
            if line == "]" {
                break;
            }
            let object = line.strip_suffix(',').unwrap_or(line);
            events.push(parse_event(object)?);
        }
        expect(&mut lines, "}")?;
        if let Some(extra) = lines.next() {
            return Err(bad(format!("trailing content `{extra}`")));
        }
        let plan = Self { seed, events };
        plan.validate()?;
        Ok(plan)
    }
}

/// Parse one single-line event object emitted by
/// [`FaultEvent::to_json_line`].
fn parse_event(object: &str) -> Result<FaultEvent, SimtestError> {
    let bad = |message: String| SimtestError::Plan { message };
    let inner = object
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| bad(format!("event `{object}` is not an object")))?;
    let mut kind: Option<&str> = None;
    let mut fields: Vec<(&str, u64)> = Vec::new();
    for pair in inner.split(',') {
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| bad(format!("malformed pair `{pair}`")))?;
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| bad(format!("malformed key in `{pair}`")))?;
        if key == "kind" {
            let v = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| bad(format!("malformed kind in `{pair}`")))?;
            kind = Some(v);
        } else {
            let v = value
                .parse::<u64>()
                .map_err(|_| bad(format!("field `{key}` is not an integer: `{value}`")))?;
            fields.push((key, v));
        }
    }
    let kind = kind.ok_or_else(|| bad(format!("event `{object}` has no kind")))?;
    let take = |fields: &[(&str, u64)], names: &[&str]| -> Result<Vec<u64>, SimtestError> {
        let got: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        if got != names {
            return Err(SimtestError::Plan {
                message: format!("kind `{kind}` expects fields {names:?}, found {got:?}"),
            });
        }
        Ok(fields.iter().map(|(_, v)| *v).collect())
    };
    let event = match kind {
        "spot_storm" => {
            let v = take(&fields, &["job_lo", "job_hi", "attempts", "fraction_ppm"])?;
            FaultEvent::SpotStorm {
                job_lo: v[0],
                job_hi: v[1],
                attempts: u32::try_from(v[2]).map_err(|_| SimtestError::Plan {
                    message: format!("attempts {} overflows u32", v[2]),
                })?,
                fraction_ppm: v[3],
            }
        }
        "vm_stall" => {
            let v = take(&fields, &["job_id", "stage", "pct"])?;
            FaultEvent::VmStall { job_id: v[0], stage: v[1] as usize, pct: v[2] }
        }
        "overload_burst" => {
            let v = take(&fields, &["ord_lo", "ord_hi"])?;
            FaultEvent::OverloadBurst { ord_lo: v[0], ord_hi: v[1] }
        }
        "cache_wipe" => {
            let v = take(&fields, &["ordinal"])?;
            FaultEvent::CacheWipe { ordinal: v[0] }
        }
        "feedback_delay" => {
            let v = take(&fields, &["ordinal", "extra_us"])?;
            FaultEvent::FeedbackDelay { ordinal: v[0], extra_us: v[1] }
        }
        "feedback_drop" => {
            let v = take(&fields, &["ordinal"])?;
            FaultEvent::FeedbackDrop { ordinal: v[0] }
        }
        "snapshot_corruption" => {
            let v = take(&fields, &["byte_index"])?;
            FaultEvent::SnapshotCorruption { byte_index: v[0] }
        }
        "canary_latency_spike" => {
            let v = take(&fields, &["ord_lo", "ord_hi", "spike_us"])?;
            FaultEvent::CanaryLatencySpike { ord_lo: v[0], ord_hi: v[1], spike_us: v[2] }
        }
        "cross_shard_delay" => {
            let v = take(&fields, &["src", "dst", "seq_lo", "seq_hi", "extra_us"])?;
            let region = |v: u64| {
                u32::try_from(v).map_err(|_| SimtestError::Plan {
                    message: format!("region id {v} overflows u32"),
                })
            };
            FaultEvent::CrossShardDelay {
                src: region(v[0])?,
                dst: region(v[1])?,
                seq_lo: v[2],
                seq_hi: v[3],
                extra_us: v[4],
            }
        }
        "recipe_eval_stall" => {
            let v = take(&fields, &["iter_lo", "iter_hi", "extra_us"])?;
            FaultEvent::RecipeEvalStall { iter_lo: v[0], iter_hi: v[1], extra_us: v[2] }
        }
        "ingest_corrupt_upload" => {
            let v = take(&fields, &["ordinal"])?;
            FaultEvent::IngestCorruptUpload { ordinal: v[0] }
        }
        "ingest_flood" => {
            let v = take(&fields, &["ord_lo", "ord_hi"])?;
            FaultEvent::IngestFlood { ord_lo: v[0], ord_hi: v[1] }
        }
        "region_partition" => {
            let v = take(&fields, &["src", "dst", "from_us", "heal_us"])?;
            let region = |v: u64| {
                u32::try_from(v).map_err(|_| SimtestError::Plan {
                    message: format!("region id {v} overflows u32"),
                })
            };
            FaultEvent::RegionPartition {
                src: region(v[0])?,
                dst: region(v[1])?,
                from_us: v[2],
                heal_us: v[3],
            }
        }
        other => {
            return Err(SimtestError::Plan { message: format!("unknown fault kind `{other}`") })
        }
    };
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            events: vec![
                FaultEvent::SpotStorm { job_lo: 0, job_hi: 2, attempts: 2, fraction_ppm: 500_000 },
                FaultEvent::VmStall { job_id: 1, stage: 2, pct: 250 },
                FaultEvent::OverloadBurst { ord_lo: 4, ord_hi: 9 },
                FaultEvent::CacheWipe { ordinal: 11 },
                FaultEvent::FeedbackDelay { ordinal: 17, extra_us: 2_000_000 },
                FaultEvent::FeedbackDrop { ordinal: 23 },
                FaultEvent::SnapshotCorruption { byte_index: 341 },
                FaultEvent::CanaryLatencySpike { ord_lo: 0, ord_hi: 159, spike_us: 10_000_000 },
                FaultEvent::CrossShardDelay {
                    src: 0,
                    dst: 2,
                    seq_lo: 3,
                    seq_hi: 8,
                    extra_us: 120_000,
                },
                FaultEvent::RecipeEvalStall { iter_lo: 4, iter_hi: 11, extra_us: 250_000 },
                FaultEvent::IngestCorruptUpload { ordinal: 13 },
                FaultEvent::IngestFlood { ord_lo: 20, ord_hi: 25 },
                FaultEvent::RegionPartition { src: 1, dst: 0, from_us: 100_000, heal_us: 900_000 },
            ],
        }
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        let plan = sample_plan();
        plan.validate().expect("sample is valid");
        let text = plan.to_json();
        let parsed = FaultPlan::from_json(&text).expect("parses");
        assert_eq!(parsed, plan);
        assert_eq!(parsed.to_json(), text, "canonical form is a fixpoint");
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let config = SimtestConfig::default();
        let a = FaultPlan::generate(21, 32, &config);
        let b = FaultPlan::generate(21, 32, &config);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 32);
        a.validate().expect("generated plans are always valid");
        // All ten generated kinds show up in a 64-event draw.
        // `recipe_eval_stall`, `ingest_corrupt_upload`, and
        // `ingest_flood` are deliberately outside the generator's draw
        // range: adding them would shift the seeded stream and
        // invalidate every checked-in fault-plan golden. They are
        // injected by hand-written plans (and the recipe/ingest
        // invariant tests) only.
        let wide = FaultPlan::generate(21, 64, &config);
        wide.validate().expect("generated plans are always valid");
        let kinds: std::collections::BTreeSet<&str> =
            wide.events.iter().map(FaultEvent::kind).collect();
        assert_eq!(kinds.len(), 10, "kinds drawn: {kinds:?}");
        assert_ne!(FaultPlan::generate(22, 32, &config), a, "seed changes the plan");
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        let cases: &[(&str, &str)] = &[
            ("", "expected `{`"),
            ("{\n  \"seed\": x,\n  \"events\": [\n  ]\n}", "malformed seed"),
            (
                "{\n  \"seed\": 7,\n  \"events\": [\n    {\"kind\":\"warp_core_breach\"}\n  ]\n}",
                "unknown fault kind",
            ),
            (
                "{\n  \"seed\": 7,\n  \"events\": [\n    {\"kind\":\"cache_wipe\",\"ord\":1}\n  ]\n}",
                "expects fields",
            ),
            (
                "{\n  \"seed\": 7,\n  \"events\": [\n    {\"kind\":\"cache_wipe\",\"ordinal\":1}\n  ]\n}\nextra",
                "trailing content",
            ),
            ("{\n  \"seed\": 7,\n  \"events\": [\n", "unterminated"),
        ];
        for (text, needle) in cases {
            match FaultPlan::from_json(text) {
                Err(SimtestError::Plan { message }) => {
                    assert!(message.contains(needle), "`{message}` should contain `{needle}`");
                }
                other => panic!("document {text:?} should fail with Plan error, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_out_of_range_parameters() {
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::SpotStorm {
                job_lo: 0,
                job_hi: 0,
                attempts: 1,
                fraction_ppm: PPM + 1,
            }],
        };
        assert!(matches!(bad.validate(), Err(SimtestError::Plan { .. })));
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::VmStall { job_id: 0, stage: 4, pct: 120 }],
        };
        assert!(matches!(bad.validate(), Err(SimtestError::Plan { .. })));
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::OverloadBurst { ord_lo: 9, ord_hi: 4 }],
        };
        assert!(matches!(bad.validate(), Err(SimtestError::Plan { .. })));
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::CrossShardDelay {
                src: 1,
                dst: 1,
                seq_lo: 0,
                seq_hi: 4,
                extra_us: 10_000,
            }],
        };
        assert!(matches!(bad.validate(), Err(SimtestError::Plan { .. })), "self-loop link");
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::RegionPartition {
                src: 0,
                dst: 1,
                from_us: 500_000,
                heal_us: 500_000,
            }],
        };
        assert!(matches!(bad.validate(), Err(SimtestError::Plan { .. })), "empty window");
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::RecipeEvalStall { iter_lo: 8, iter_hi: 2, extra_us: 100 }],
        };
        assert!(
            matches!(bad.validate(), Err(SimtestError::Plan { .. })),
            "inverted iteration range"
        );
        let bad = FaultPlan {
            seed: 0,
            events: vec![FaultEvent::IngestFlood { ord_lo: 7, ord_hi: 3 }],
        };
        assert!(
            matches!(bad.validate(), Err(SimtestError::Plan { .. })),
            "inverted flood range"
        );
    }

    #[test]
    fn single_line_rendering_matches_the_document() {
        let plan = sample_plan();
        let line = plan.to_json_line();
        assert!(line.starts_with("{\"seed\":7,\"events\":[{\"kind\":\"spot_storm\""));
        assert_eq!(line.matches("\"kind\"").count(), plan.events.len());
        // The line embeds the exact event objects the document uses.
        for event in &plan.events {
            assert!(line.contains(&event.to_json_line()));
        }
    }
}
