//! Global invariants asserted after every harness run.
//!
//! Each checker inspects the reports and logs of one driven loop and
//! returns zero or more [`Violation`]s. The invariants hold with or
//! without injected faults — faults change *outcomes* (sheds, retries,
//! drops), never *accounting*. A violation therefore means a real bug
//! in the system under test, which is exactly what the planted
//! guardrail bug demonstrates.

use eda_cloud_engine::RegionReport;
use eda_cloud_fleet::FleetReport;
use eda_cloud_lifecycle::{
    ape_micros, Arm, FeedbackEvent, LifecycleConfig, LifecycleReport, RolloutDecision,
    RolloutManager,
};
use eda_cloud_recipe::TreeStats;
use eda_cloud_serve::{IngestDisposition, RequestOutcome, ServeReport};

/// One broken invariant: which checker tripped, and the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant checker that tripped.
    pub checker: &'static str,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    fn new(checker: &'static str, detail: String) -> Self {
        Self { checker, detail }
    }
}

/// Job conservation: every submitted job completes or exhausts its
/// stage attempts — none vanish, however many reclaims hit it.
#[must_use]
pub fn check_fleet_conservation(report: &FleetReport) -> Vec<Violation> {
    let c = &report.counters;
    let mut violations = Vec::new();
    if c.jobs_completed + c.jobs_exhausted != c.jobs_submitted {
        violations.push(Violation::new(
            "fleet_conservation",
            format!(
                "submitted {} != completed {} + exhausted {}",
                c.jobs_submitted, c.jobs_completed, c.jobs_exhausted
            ),
        ));
    }
    if c.deadline_hits > c.jobs_completed {
        violations.push(Violation::new(
            "fleet_conservation",
            format!("deadline hits {} exceed completions {}", c.deadline_hits, c.jobs_completed),
        ));
    }
    violations
}

/// Request conservation and ordinal coverage: every admitted request
/// completes or sheds, exactly one outcome per ordinal, in order.
#[must_use]
pub fn check_serve_conservation(
    report: &ServeReport,
    outcomes: &[RequestOutcome],
    requests: u64,
) -> Vec<Violation> {
    let c = &report.counters;
    let mut violations = Vec::new();
    if c.requests != requests {
        violations.push(Violation::new(
            "serve_conservation",
            format!("served {} of {requests} submitted requests", c.requests),
        ));
    }
    if c.completed + c.shed != c.requests {
        violations.push(Violation::new(
            "serve_conservation",
            format!("requests {} != completed {} + shed {}", c.requests, c.completed, c.shed),
        ));
    }
    if outcomes.len() as u64 != requests {
        violations.push(Violation::new(
            "serve_conservation",
            format!("{} outcomes for {requests} requests", outcomes.len()),
        ));
    }
    for (i, outcome) in outcomes.iter().enumerate() {
        if outcome.ordinal() != i as u64 {
            violations.push(Violation::new(
                "serve_conservation",
                format!("outcome {i} carries ordinal {}", outcome.ordinal()),
            ));
            break;
        }
    }
    violations
}

/// Ingest quarantine: every upload is disposed exactly once and the
/// dispositions match the counters; a rejected (quarantined) upload
/// must carry a reason and must never reach the result cache or the
/// GCN — its predictions stay zeroed and it can never plan. Injected
/// corruption and flood faults change *which* uploads are rejected,
/// never what rejection means.
#[must_use]
pub fn check_ingest_quarantine(
    report: &ServeReport,
    outcomes: &[RequestOutcome],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let (mut accepted, mut rejected, mut flagged) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        let RequestOutcome::Completed {
            ordinal, cache_hit, stage_secs, plan, recipe, ingest, ..
        } = outcome
        else {
            continue;
        };
        match ingest.as_deref() {
            Some(IngestDisposition::Accepted { ood, .. }) => {
                accepted += 1;
                if *ood {
                    flagged += 1;
                }
            }
            Some(IngestDisposition::Rejected { reason }) => {
                rejected += 1;
                if reason.is_empty() {
                    violations.push(Violation::new(
                        "ingest_quarantine",
                        format!("ordinal {ordinal}: quarantined upload carries no reason"),
                    ));
                }
                if *cache_hit {
                    violations.push(Violation::new(
                        "ingest_quarantine",
                        format!("ordinal {ordinal}: quarantined upload hit the result cache"),
                    ));
                }
                if stage_secs.iter().flatten().any(|&s| s != 0.0) {
                    violations.push(Violation::new(
                        "ingest_quarantine",
                        format!(
                            "ordinal {ordinal}: quarantined upload carries live predictions \
                             (reached the GCN)"
                        ),
                    ));
                }
                if plan.is_some() || recipe.is_some() {
                    violations.push(Violation::new(
                        "ingest_quarantine",
                        format!("ordinal {ordinal}: quarantined upload produced a plan"),
                    ));
                }
            }
            None => {}
        }
    }
    let c = &report.counters;
    if (accepted, rejected, flagged) != (c.ingest_accepted, c.ingest_rejected, c.ood_flagged) {
        violations.push(Violation::new(
            "ingest_quarantine",
            format!(
                "outcomes dispose {accepted} accepted / {rejected} rejected / {flagged} flagged, \
                 counters say {} / {} / {}",
                c.ingest_accepted, c.ingest_rejected, c.ood_flagged
            ),
        ));
    }
    violations
}

/// Recipe-search visit conservation: in the final MCTS tree every
/// node's visit count is exactly its own leaf selections plus its
/// children's visits, and the root saw every iteration. Injected
/// `recipe_eval_stall` faults stretch evaluation-time accounting but
/// must never bend the tree.
#[must_use]
pub fn check_recipe_visit_conservation(tree: &TreeStats) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (index, node) in tree.nodes.iter().enumerate() {
        if node.visits != node.own_selections + node.child_visits {
            violations.push(Violation::new(
                "recipe_visit_conservation",
                format!(
                    "node {index} (depth {}): visits {} != own selections {} + child visits {}",
                    node.depth, node.visits, node.own_selections, node.child_visits
                ),
            ));
        }
    }
    if tree.root_visits() != tree.total_iterations {
        violations.push(Violation::new(
            "recipe_visit_conservation",
            format!(
                "root visits {} != iterations {}",
                tree.root_visits(),
                tree.total_iterations
            ),
        ));
    }
    violations
}

/// Cross-shard conservation: every cross-region message a shard sent
/// is delivered or explicitly dropped by the fault plan — partitions
/// and injected delays may bend delivery times, never lose envelopes.
/// Jobs are conserved the same way: every submitted or migrated-in job
/// reaches a terminal outcome (served, quota-rejected, or shed), and
/// migration itself is zero-sum across regions.
#[must_use]
pub fn check_cross_shard_conservation(report: &RegionReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    let m = &report.messages;
    if m.delivered + m.dropped != m.sent {
        violations.push(Violation::new(
            "cross_shard_conservation",
            format!(
                "sent {} != delivered {} + dropped {}",
                m.sent, m.delivered, m.dropped
            ),
        ));
    }
    let sum = |f: fn(&eda_cloud_engine::RegionCounters) -> u64| {
        report.regions.iter().map(f).sum::<u64>()
    };
    let migrated_out = sum(|c| c.migrated_out);
    let migrated_in = sum(|c| c.migrated_in);
    // Dropped migrations are the only way an outbound job fails to
    // land; anything else is a lost envelope.
    if migrated_in + m.dropped < migrated_out {
        violations.push(Violation::new(
            "cross_shard_conservation",
            format!(
                "{migrated_out} jobs migrated out but only {migrated_in} arrived \
                 ({} messages dropped in total)",
                m.dropped
            ),
        ));
    }
    let terminal = sum(|c| c.served) + sum(|c| c.quota_rejected) + sum(|c| c.shed);
    let entered = sum(|c| c.submitted) + migrated_in - migrated_out;
    if terminal != entered {
        violations.push(Violation::new(
            "cross_shard_conservation",
            format!(
                "{entered} jobs entered region queues but {terminal} reached a terminal outcome"
            ),
        ));
    }
    violations
}

/// Feedback conservation: every request's ground-truth join lands or
/// is accounted as dropped, and the log matches the counters.
#[must_use]
pub fn check_lifecycle_conservation(
    report: &LifecycleReport,
    feedback: &[FeedbackEvent],
    requests: u64,
) -> Vec<Violation> {
    let c = &report.counters;
    let mut violations = Vec::new();
    if c.requests != requests {
        violations.push(Violation::new(
            "lifecycle_conservation",
            format!("served {} of {requests} submitted requests", c.requests),
        ));
    }
    if c.feedback_joins + c.feedback_dropped != c.requests {
        violations.push(Violation::new(
            "lifecycle_conservation",
            format!(
                "requests {} != joins {} + dropped {}",
                c.requests, c.feedback_joins, c.feedback_dropped
            ),
        ));
    }
    if feedback.len() as u64 != c.feedback_joins {
        violations.push(Violation::new(
            "lifecycle_conservation",
            format!("feedback log holds {} entries, counters say {}", feedback.len(), c.feedback_joins),
        ));
    }
    violations
}

/// Version-coherent cache hits: two joins served by the same model
/// version for the same design must carry bit-identical predictions —
/// a cache hit may never smuggle another version's output.
#[must_use]
pub fn check_cache_coherence(feedback: &[FeedbackEvent]) -> Vec<Violation> {
    /// Bit patterns of the 4x4 prediction matrix plus the ordinal of
    /// the first join that produced them.
    type FirstPrediction = ([[u64; 4]; 4], u64);
    let mut seen: std::collections::BTreeMap<(u32, u64), FirstPrediction> =
        std::collections::BTreeMap::new();
    let mut violations = Vec::new();
    for fb in feedback {
        let bits = std::array::from_fn(|k| std::array::from_fn(|v| fb.predicted[k][v].to_bits()));
        match seen.get(&(fb.version, fb.design.fingerprint)) {
            None => {
                seen.insert((fb.version, fb.design.fingerprint), (bits, fb.ordinal));
            }
            Some((first, first_ordinal)) if *first != bits => {
                violations.push(Violation::new(
                    "cache_coherence",
                    format!(
                        "version {} design {:016x}: ordinal {} prediction differs from ordinal {}",
                        fb.version, fb.design.fingerprint, fb.ordinal, first_ordinal
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    violations
}

/// Monotonic simulated time: control-plane events fire in
/// non-decreasing order and never past the run's makespan.
#[must_use]
pub fn check_monotonic_time(report: &LifecycleReport) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut last = 0u64;
    for event in &report.timeline {
        if event.time_us < last {
            violations.push(Violation::new(
                "monotonic_time",
                format!("{} at {}µs fired before {last}µs", event.kind, event.time_us),
            ));
        }
        last = last.max(event.time_us);
    }
    if last > report.makespan_us {
        violations.push(Violation::new(
            "monotonic_time",
            format!("timeline reaches {last}µs past makespan {}µs", report.makespan_us),
        ));
    }
    violations
}

/// Guardrail soundness: replay the feedback joins of every canary
/// window through a fresh [`RolloutManager`] and demand the recorded
/// decision. A promotion while the true canary latencies breach the
/// budget (the planted guardrail bug) shows up as a kind mismatch; a
/// decision at the wrong join shows up as an ordinal mismatch.
#[must_use]
pub fn check_guardrail_soundness(
    report: &LifecycleReport,
    feedback: &[FeedbackEvent],
    config: &LifecycleConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut cursor = 0usize;
    let mut timeline = report.timeline.iter().peekable();
    while let Some(start) = timeline.next() {
        if start.kind != "canary_started" {
            continue;
        }
        let decision = timeline
            .peek()
            .copied()
            .filter(|e| e.kind == "promoted" || e.kind == "rolled_back");
        // The join that started the canary was processed before the
        // rollout manager saw anything; the window opens after it.
        let Some(start_pos) = feedback[cursor..]
            .iter()
            .position(|f| f.ordinal == start.ordinal)
            .map(|p| cursor + p)
        else {
            violations.push(Violation::new(
                "guardrail_soundness",
                format!("canary_started trigger ordinal {} not in the feedback log", start.ordinal),
            ));
            continue;
        };
        cursor = start_pos + 1;
        let mut manager = RolloutManager::new(
            config.canary_min,
            config.promote_max_error_pct,
            config.canary_latency_budget_us,
        );
        let mut replayed: Option<(RolloutDecision, u64)> = None;
        for fb in &feedback[cursor..] {
            let mean_ape =
                (0..4).map(|k| ape_micros(&fb.predicted[k], &fb.actual[k])).sum::<u64>() / 4;
            match fb.arm {
                Arm::Canary => manager.record_canary(mean_ape, fb.latency_us),
                Arm::Primary => manager.record_primary(mean_ape),
            }
            let verdict = manager.evaluate();
            if verdict != RolloutDecision::Pending {
                replayed = Some((verdict, fb.ordinal));
                break;
            }
        }
        match (decision, replayed) {
            (Some(recorded), Some((verdict, at_ordinal))) => {
                let want = match verdict {
                    RolloutDecision::Promote => "promoted",
                    _ => "rolled_back",
                };
                if recorded.kind != want || recorded.ordinal != at_ordinal {
                    violations.push(Violation::new(
                        "guardrail_soundness",
                        format!(
                            "canary v{}: recorded `{}` at ordinal {}, replay says `{want}` at \
                             ordinal {at_ordinal}",
                            start.version, recorded.kind, recorded.ordinal
                        ),
                    ));
                }
                // Advance past the decision join so the next window
                // replays from fresh traffic.
                if let Some(pos) =
                    feedback[cursor..].iter().position(|f| f.ordinal == recorded.ordinal)
                {
                    cursor += pos + 1;
                }
            }
            (Some(recorded), None) => violations.push(Violation::new(
                "guardrail_soundness",
                format!(
                    "canary v{}: recorded `{}` but the replayed guardrails never left Pending",
                    start.version, recorded.kind
                ),
            )),
            (None, Some((verdict, at_ordinal))) => violations.push(Violation::new(
                "guardrail_soundness",
                format!(
                    "canary v{}: replay decides {verdict:?} at ordinal {at_ordinal} but no \
                     decision was recorded",
                    start.version
                ),
            )),
            (None, None) => {} // Stream ended mid-canary on both sides.
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_fleet::{FleetCounters, Histogram};

    fn fleet_report(counters: FleetCounters) -> FleetReport {
        FleetReport {
            seed: 7,
            counters,
            deadline_hit_rate: 0.0,
            total_cost_usd: 0.0,
            mean_job_cost_usd: 0.0,
            mean_latency_secs: 0.0,
            p50_latency_secs: 0.0,
            p95_latency_secs: 0.0,
            makespan_secs: 0.0,
            latency_hist: Histogram::new(vec![1.0]),
            cost_hist: Histogram::new(vec![1.0]),
        }
    }

    #[test]
    fn fleet_conservation_catches_vanished_jobs() {
        let ok = fleet_report(FleetCounters {
            jobs_submitted: 5,
            jobs_completed: 4,
            jobs_exhausted: 1,
            ..Default::default()
        });
        assert!(check_fleet_conservation(&ok).is_empty());
        let bad = fleet_report(FleetCounters {
            jobs_submitted: 5,
            jobs_completed: 4,
            ..Default::default()
        });
        let violations = check_fleet_conservation(&bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].checker, "fleet_conservation");
        assert!(violations[0].detail.contains("submitted 5"));
    }

    fn serve_report(counters: eda_cloud_serve::ServeCounters) -> ServeReport {
        ServeReport {
            seed: 7,
            counters,
            deadline_hit_rate: 0.0,
            mean_latency_ms: 0.0,
            p50_latency_ms: 0.0,
            p95_latency_ms: 0.0,
            mean_batch_size: 0.0,
            max_queue_depth: 0,
            makespan_ms: 0.0,
            latency_hist: Histogram::new(vec![1.0]),
            batch_hist: Histogram::new(vec![1.0]),
            depth_hist: Histogram::new(vec![1.0]),
        }
    }

    fn ingest_outcome(ordinal: u64, ingest: IngestDisposition) -> RequestOutcome {
        RequestOutcome::Completed {
            ordinal,
            latency_us: 1_000,
            deadline_met: true,
            cache_hit: false,
            stage_secs: [[0.0; 4]; 4],
            plan: None,
            recipe: None,
            ingest: Some(Box::new(ingest)),
        }
    }

    #[test]
    fn ingest_quarantine_accepts_clean_dispositions() {
        let outcomes = vec![
            ingest_outcome(
                0,
                IngestDisposition::Accepted { fingerprint: 0x1234, ood_distance_micros: 9, ood: true },
            ),
            ingest_outcome(1, IngestDisposition::Rejected { reason: "flooded".into() }),
            RequestOutcome::Shed { ordinal: 2, queue_depth: 5 },
        ];
        let report = serve_report(eda_cloud_serve::ServeCounters {
            ingest_accepted: 1,
            ingest_rejected: 1,
            ood_flagged: 1,
            ..Default::default()
        });
        assert!(check_ingest_quarantine(&report, &outcomes).is_empty());
    }

    #[test]
    fn ingest_quarantine_catches_leaks_and_drifted_counters() {
        let mut leaky_secs = [[0.0; 4]; 4];
        leaky_secs[2][1] = 3.5;
        let outcomes = vec![
            RequestOutcome::Completed {
                ordinal: 0,
                latency_us: 1_000,
                deadline_met: true,
                cache_hit: true, // quarantined yet cached
                stage_secs: leaky_secs, // and carrying live predictions
                plan: None,
                recipe: None,
                ingest: Some(Box::new(IngestDisposition::Rejected { reason: String::new() })),
            },
        ];
        let report = serve_report(eda_cloud_serve::ServeCounters {
            ingest_accepted: 1, // counters disagree with the outcomes too
            ..Default::default()
        });
        let violations = check_ingest_quarantine(&report, &outcomes);
        assert_eq!(violations.len(), 4, "{violations:?}");
        assert!(violations.iter().all(|v| v.checker == "ingest_quarantine"));
        assert!(violations.iter().any(|v| v.detail.contains("no reason")));
        assert!(violations.iter().any(|v| v.detail.contains("result cache")));
        assert!(violations.iter().any(|v| v.detail.contains("GCN")));
        assert!(violations.iter().any(|v| v.detail.contains("counters say 1 / 0 / 0")));
    }

    #[test]
    fn recipe_visit_conservation_holds_under_injected_stalls() {
        use crate::{FaultEvent, FaultPlan, PlanFaults};
        use eda_cloud_netlist::generators;
        use eda_cloud_recipe::{EvalCache, RecipeSearch, SearchConfig};

        let aig = generators::build_family("adder", 4).expect("known family");
        let search =
            RecipeSearch::new(SearchConfig { iters: 12, seed: 7, ..SearchConfig::default() });
        let clean = search.run("adder_4", &aig).expect("clean search");

        let faults = PlanFaults::new(FaultPlan {
            seed: 7,
            events: vec![FaultEvent::RecipeEvalStall {
                iter_lo: 0,
                iter_hi: 6,
                extra_us: 250_000,
            }],
        });
        let stalled = search
            .run_with("adder_4", &aig, &faults, &mut EvalCache::new())
            .expect("stalled search");

        // Stalls stretch time accounting only; tree and outcome match.
        assert!(stalled.total_eval_us > clean.total_eval_us);
        assert_eq!(stalled.tree, clean.tree);
        assert_eq!(stalled.best_key, clean.best_key);
        assert!(check_recipe_visit_conservation(&clean.tree).is_empty());
        assert!(check_recipe_visit_conservation(&stalled.tree).is_empty());
    }

    #[test]
    fn recipe_visit_conservation_catches_broken_accounting() {
        use eda_cloud_recipe::NodeStat;

        let ok = TreeStats {
            nodes: vec![
                NodeStat { depth: 0, visits: 3, own_selections: 1, child_visits: 2 },
                NodeStat { depth: 1, visits: 2, own_selections: 2, child_visits: 0 },
            ],
            total_iterations: 3,
        };
        assert!(check_recipe_visit_conservation(&ok).is_empty());

        let mut leaky = ok.clone();
        leaky.nodes[1].own_selections = 1; // a selection vanished
        leaky.total_iterations = 4; // and the root missed an iteration
        let violations = check_recipe_visit_conservation(&leaky);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert_eq!(violations[0].checker, "recipe_visit_conservation");
        assert!(violations[0].detail.contains("node 1"));
        assert!(violations[1].detail.contains("root visits 3 != iterations 4"));
    }

    #[test]
    fn monotonic_time_catches_reordered_timelines() {
        use eda_cloud_lifecycle::{LifecycleCounters, StageErrors, TimelineEvent};
        let mut report = LifecycleReport {
            seed: 7,
            requests: 4,
            drift_at: 1,
            drift_factor: 2.0,
            counters: LifecycleCounters::default(),
            final_primary_version: 1,
            stages: [StageErrors::default(); 4],
            timeline: vec![
                TimelineEvent { time_us: 10, ordinal: 0, kind: "retrained", stage: "-", version: 2 },
                TimelineEvent { time_us: 5, ordinal: 1, kind: "promoted", stage: "-", version: 2 },
            ],
            mean_latency_us: 0,
            p95_latency_us: 0,
            makespan_us: 100,
            latency_hist: Histogram::new(vec![1.0]),
        };
        let violations = check_monotonic_time(&report);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].detail.contains("promoted"));
        report.timeline[1].time_us = 200;
        let violations = check_monotonic_time(&report);
        assert!(violations.iter().any(|v| v.detail.contains("makespan")), "{violations:?}");
    }
}
