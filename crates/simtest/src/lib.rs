//! Seeded fault-injection and invariant-checking harness for the EDA
//! cloud stack.
//!
//! The paper's cloud argument leans on reliability mechanisms — spot
//! retry, admission shedding, feedback-driven retraining, canary
//! guardrails — that only earn trust under adversity. This crate
//! manufactures that adversity deterministically:
//!
//! 1. A [`FaultPlan`] (generated from a seed, or loaded from canonical
//!    JSON) schedules faults against canonical identities: spot storms
//!    by job range, VM stalls by `(job, stage)`, overload bursts and
//!    cache wipes by request ordinal, feedback drops/delays and canary
//!    latency spikes by ordinal, snapshot bit-flips by byte index.
//! 2. [`PlanFaults`] adapts the plan to the fault-hook traits the
//!    fleet, serve, and lifecycle crates expose, and [`run_simtest`]
//!    drives all three loops end to end under it.
//! 3. A checker suite ([`check`]) asserts global invariants that hold
//!    with or without faults: job/request/feedback conservation,
//!    version-coherent cache hits, monotonic simulated time, and
//!    guardrail soundness (decisions replay from the feedback log).
//! 4. On failure, [`shrink_plan`] delta-debugs the plan to a minimal
//!    reproducer that serializes to replayable JSON.
//!
//! Everything — plan generation, injection, the folded
//! [`SimtestReport`] — is byte-deterministic at any worker count, so
//! `diff` is the whole comparison story, same as the rest of the
//! workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod error;
mod harness;
mod hooks;
mod plan;
pub mod report;
mod shrink;

pub use check::Violation;
pub use error::SimtestError;
pub use harness::{run_simtest, run_simtest_traced, SimtestConfig, SimtestRun};
pub use hooks::PlanFaults;
pub use plan::{FaultEvent, FaultPlan, PPM};
pub use report::{fnv1a64, EnginePhase, SimtestReport};
pub use shrink::{shrink_plan, shrink_plan_with};
