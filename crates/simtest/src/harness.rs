//! The end-to-end fault-injection harness.
//!
//! One [`run_simtest`] call drives all three production loops — the
//! fleet simulator, the serve tier, and the lifecycle controller —
//! under one shared [`PlanFaults`] hook object, then runs every
//! invariant checker over the results and folds them into a
//! byte-deterministic [`SimtestReport`]. The worker knob fans out only
//! the per-stage GCN forwards (joined by stage index), so the same
//! `(config, plan)` pair produces byte-identical reports at 1, 2, or
//! 8 workers.

use crate::report::EnginePhase;
use crate::{
    check, FaultEvent, FaultPlan, PlanFaults, SimtestError, SimtestReport, Violation,
};
use eda_cloud_cloud::Catalog;
use eda_cloud_engine::{
    synthetic_region_jobs, EngineFaults, RegionReport, RegionSim, RegionSimConfig,
};
use eda_cloud_fleet::{
    poisson_arrivals, FleetConfig, FleetJob, FleetReport, FleetSimulator, JobPlan, PlannedStage,
    SharedFleetFaults,
};
use eda_cloud_gcn::ModelConfig;
use eda_cloud_lifecycle::{
    FeedbackEvent, LifecycleConfig, LifecycleController, LifecycleReport, SharedLifecycleFaults,
};
use eda_cloud_ingest::{fixtures, FrontDoor, FrontDoorConfig};
use eda_cloud_serve::{
    design_pool, synthetic_requests_with_uploads, CostTablePlanner, ModelSnapshot, RequestOutcome,
    ServeConfig, ServeReport, Server, SharedIngestFaults, SharedServeFaults, WorkloadConfig,
};
use eda_cloud_trace::{Trace, Tracer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Stage attempts allowed before the fleet abandons a job — low enough
/// that an eight-attempt spot storm produces a typed exhaustion, high
/// enough that ordinary storms retry through.
const MAX_STAGE_ATTEMPTS: u32 = 6;

/// Harness knobs: workload sizes per loop plus the shared seed and
/// fan-out width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimtestConfig {
    /// Seed driving all three workloads (and, by default, plan
    /// generation).
    pub seed: u64,
    /// Stage fan-out threads (0 = available parallelism, capped at 4).
    /// Any value produces byte-identical reports.
    pub workers: usize,
    /// Jobs in the fleet stream.
    pub fleet_jobs: usize,
    /// Requests in the serve stream.
    pub serve_requests: usize,
    /// Requests in the lifecycle stream.
    pub lifecycle_requests: usize,
    /// Regions in the engine phase's multi-region simulation.
    pub engine_regions: usize,
    /// Jobs in the engine phase's multi-region workload.
    pub engine_jobs: usize,
    /// Arm the deliberately planted guardrail bug in the lifecycle
    /// controller. Requires the `planted-guardrail-bug` feature; exists
    /// so the invariant suite can demonstrate catching a real
    /// violation.
    pub planted_guardrail_bug: bool,
}

impl Default for SimtestConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            workers: 1,
            fleet_jobs: 6,
            serve_requests: 48,
            lifecycle_requests: 160,
            engine_regions: 3,
            engine_jobs: 120,
            planted_guardrail_bug: false,
        }
    }
}

impl SimtestConfig {
    /// A default-shaped config at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed, ..Self::default() }
    }

    /// Reject empty workloads.
    ///
    /// # Errors
    ///
    /// Returns [`SimtestError::Config`] when any loop's workload is
    /// empty.
    pub fn validate(&self) -> Result<(), SimtestError> {
        if self.fleet_jobs == 0 {
            return Err(SimtestError::Config("fleet_jobs must be positive"));
        }
        if self.serve_requests == 0 {
            return Err(SimtestError::Config("serve_requests must be positive"));
        }
        if self.lifecycle_requests < 48 {
            return Err(SimtestError::Config(
                "lifecycle_requests must be at least 48 (the controller needs calibration traffic)",
            ));
        }
        if self.engine_regions < 2 {
            return Err(SimtestError::Config(
                "engine_regions must be at least 2 (cross-shard faults need a link to cut)",
            ));
        }
        if self.engine_jobs == 0 {
            return Err(SimtestError::Config("engine_jobs must be positive"));
        }
        Ok(())
    }

    /// The lifecycle controller configuration this harness drives: a
    /// compressed version of the production defaults that still walks
    /// the full detect → retrain → canary → decide arc.
    #[must_use]
    pub fn lifecycle_config(&self) -> LifecycleConfig {
        LifecycleConfig {
            requests: self.lifecycle_requests,
            seed: self.seed,
            workers: self.workers,
            drift_at: (self.lifecycle_requests as u64) * 5 / 16,
            calibration: 12,
            min_retrain: 6,
            canary_min: 5,
            bootstrap_epochs: 20,
            retrain_epochs: 20,
            ..LifecycleConfig::default()
        }
    }
}

/// Everything one harness run produced: the canonical report plus the
/// raw per-loop artifacts for deeper assertions.
#[derive(Debug, Clone)]
pub struct SimtestRun {
    /// The folded, byte-deterministic report (violations included).
    pub report: SimtestReport,
    /// The fleet phase's full report.
    pub fleet: FleetReport,
    /// The serve phase's full report.
    pub serve: ServeReport,
    /// One serve outcome per request, ordinal order.
    pub serve_outcomes: Vec<RequestOutcome>,
    /// The lifecycle phase's full report.
    pub lifecycle: LifecycleReport,
    /// The lifecycle phase's feedback log, join order.
    pub feedback: Vec<FeedbackEvent>,
    /// The engine phase's full multi-region report.
    pub regions: RegionReport,
}

/// The fleet workload: four-stage jobs shaped like Table I's
/// `sparc_core` flow, scaled by a seeded per-job size factor. Plain
/// catalog instances — no planner dependency — because the harness
/// exercises the simulator, not the knapsack.
fn fleet_jobs(config: &SimtestConfig) -> Vec<FleetJob> {
    const STAGES: [(&str, &str, f64); 4] = [
        ("synthesis", "c5.2xlarge", 3_449.0),
        ("placement", "r5.xlarge", 644.0),
        ("routing", "c5.2xlarge", 2_894.0),
        ("sta", "m5.large", 90.0),
    ];
    let arrivals = poisson_arrivals(config.fleet_jobs, 60.0, config.seed);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x51E7_F1EE_7B05_0002);
    arrivals
        .into_iter()
        .enumerate()
        .map(|(id, arrival_secs)| {
            let size: f64 = rng.gen_range(0.5..1.5);
            let stages: Vec<PlannedStage> = STAGES
                .iter()
                .map(|&(name, instance, base_secs)| PlannedStage {
                    name: name.into(),
                    instance: instance.into(),
                    runtime_secs: (base_secs * size).round().max(1.0) as u64,
                })
                .collect();
            let total: u64 = stages.iter().map(|s| s.runtime_secs).sum();
            FleetJob {
                plan: JobPlan { id: id as u64, stages, deadline_secs: total * 9 / 5 + 240 },
                arrival_secs,
            }
        })
        .collect()
}

/// Spans marking an injected fault: a `fault/…` path segment or a
/// `fault` attribute on a request span.
fn count_fault_spans(trace: &Trace) -> u64 {
    trace
        .records()
        .iter()
        .filter(|r| r.path.contains("fault/") || r.attrs.iter().any(|(k, _)| k == "fault"))
        .count() as u64
}

/// Drive all three loops under `plan`, check every invariant, and fold
/// the outcome into a [`SimtestReport`].
///
/// # Errors
///
/// Returns [`SimtestError`] for invalid configs or plans, or when a
/// driven loop rejects its workload outright. Invariant violations are
/// NOT errors — they are data, reported in
/// [`SimtestReport::violations`] so the shrinker can bisect the plan.
pub fn run_simtest(config: &SimtestConfig, plan: &FaultPlan) -> Result<SimtestRun, SimtestError> {
    run_simtest_traced(config, plan, &Tracer::disabled())
}

/// [`run_simtest`] with span export: each phase runs on a private
/// tracer (the harness must drain them to count fault spans), and the
/// drained traces are adopted into `tracer` under `fleet/`, `serve/`,
/// and `lifecycle/` roots so callers can export the full span tree.
///
/// # Errors
///
/// Same contract as [`run_simtest`].
pub fn run_simtest_traced(
    config: &SimtestConfig,
    plan: &FaultPlan,
    tracer: &Tracer,
) -> Result<SimtestRun, SimtestError> {
    config.validate()?;
    plan.validate()?;
    let hooks = Arc::new(PlanFaults::new(plan.clone()));
    let mut violations: Vec<Violation> = Vec::new();
    let mut fault_spans = 0u64;

    // Fleet phase.
    let jobs = fleet_jobs(config);
    let mut fleet_config = FleetConfig::on_demand(config.seed);
    fleet_config.max_stage_attempts = MAX_STAGE_ATTEMPTS;
    let fleet_tracer = Tracer::new();
    let fleet = FleetSimulator::new(Catalog::aws_like())
        .with_tracer(fleet_tracer.clone())
        .with_faults(Arc::clone(&hooks) as SharedFleetFaults)
        .run(&jobs, &fleet_config)?;
    let fleet_trace = fleet_tracer.drain();
    fault_spans += count_fault_spans(&fleet_trace);
    tracer.adopt(0, "fleet", fleet_trace);
    violations.extend(check::check_fleet_conservation(&fleet));

    // Serve phase. The workload interleaves external uploads (the
    // checked-in ingest fixtures) so corruption and flood faults have
    // real ingest traffic to hit, and the quarantine invariant gets
    // exercised on every run.
    let pool = design_pool();
    let requests = synthetic_requests_with_uploads(
        &pool,
        &fixtures::uploads(),
        &WorkloadConfig {
            requests: config.serve_requests,
            rate_per_sec: 150.0,
            seed: config.seed,
            ingest_every: 4,
            ..Default::default()
        },
    );
    let serve_tracer = Tracer::new();
    let server = Server::new(
        ModelSnapshot::seeded(&ModelConfig::fast(), config.seed),
        Box::new(CostTablePlanner::aws_like()),
        ServeConfig { workers: config.workers, ..Default::default() },
    )
    .with_ingestor(Box::new(FrontDoor::with_pool_profile(FrontDoorConfig::default())))
    .with_tracer(serve_tracer.clone())
    .with_faults(Arc::clone(&hooks) as SharedServeFaults)
    .with_ingest_faults(Arc::clone(&hooks) as SharedIngestFaults);
    let (serve, serve_outcomes) = server.run(config.seed, &requests)?;
    let serve_trace = serve_tracer.drain();
    fault_spans += count_fault_spans(&serve_trace);
    tracer.adopt(1, "serve", serve_trace);
    violations.extend(check::check_serve_conservation(
        &serve,
        &serve_outcomes,
        config.serve_requests as u64,
    ));
    violations.extend(check::check_ingest_quarantine(&serve, &serve_outcomes));

    // Lifecycle phase.
    let lifecycle_config = config.lifecycle_config();
    let lifecycle_tracer = Tracer::new();
    let controller = LifecycleController::new(lifecycle_config.clone())?
        .with_tracer(lifecycle_tracer.clone())
        .with_faults(Arc::clone(&hooks) as SharedLifecycleFaults);
    #[cfg(feature = "planted-guardrail-bug")]
    let controller = if config.planted_guardrail_bug {
        controller.with_planted_guardrail_bug()
    } else {
        controller
    };
    #[cfg(not(feature = "planted-guardrail-bug"))]
    if config.planted_guardrail_bug {
        return Err(SimtestError::Config(
            "planted_guardrail_bug requires the `planted-guardrail-bug` feature",
        ));
    }
    let (lifecycle, feedback) = controller.run()?;
    let lifecycle_trace = lifecycle_tracer.drain();
    fault_spans += count_fault_spans(&lifecycle_trace);
    tracer.adopt(2, "lifecycle", lifecycle_trace);
    violations.extend(check::check_lifecycle_conservation(
        &lifecycle,
        &feedback,
        config.lifecycle_requests as u64,
    ));
    violations.extend(check::check_cache_coherence(&feedback));
    violations.extend(check::check_monotonic_time(&lifecycle));
    violations.extend(check::check_guardrail_soundness(&lifecycle, &feedback, &lifecycle_config));

    // Engine phase: the multi-region simulation under the plan's
    // cross-shard faults. Delays and partitions bend delivery times;
    // the conservation checker demands that no envelope (and no
    // migrated job) is lost without being accounted as dropped.
    let region_config = RegionSimConfig {
        seed: config.seed,
        regions: config.engine_regions as u32,
        jobs: config.engine_jobs as u64,
        ..RegionSimConfig::default()
    };
    let region_jobs = synthetic_region_jobs(&region_config)?;
    let regions = RegionSim::run_with(
        &region_config,
        &region_jobs,
        Arc::clone(&hooks) as Arc<dyn EngineFaults>,
        config.workers,
        config.engine_regions,
    )?;
    violations.extend(check::check_cross_shard_conservation(&regions));

    // Corruption phase: every scheduled snapshot bit-flip must be
    // rejected by the registry's checksum with a typed error.
    let snapshot_text = ModelSnapshot::seeded(&ModelConfig::fast(), config.seed).to_text();
    let mut corruption_injected = 0u64;
    let mut corruption_rejected = 0u64;
    for event in &plan.events {
        if let FaultEvent::SnapshotCorruption { byte_index } = *event {
            corruption_injected += 1;
            let idx = (byte_index as usize) % snapshot_text.len();
            let mut bytes = snapshot_text.clone().into_bytes();
            bytes[idx] ^= 0x01;
            let rejected = match String::from_utf8(bytes) {
                Ok(corrupted) => ModelSnapshot::from_text(&corrupted).is_err(),
                // A flip that breaks UTF-8 cannot even reach the
                // parser; that counts as rejected.
                Err(_) => true,
            };
            if rejected {
                corruption_rejected += 1;
            } else {
                violations.push(Violation {
                    checker: "corruption_rejected",
                    detail: format!("snapshot with byte {idx} flipped loaded without error"),
                });
            }
        }
    }

    let sum = |f: fn(&eda_cloud_engine::RegionCounters) -> u64| {
        regions.regions.iter().map(f).sum::<u64>()
    };
    let engine = EnginePhase {
        submitted: sum(|c| c.submitted),
        served: sum(|c| c.served),
        quota_rejected: sum(|c| c.quota_rejected),
        shed: sum(|c| c.shed),
        migrated: sum(|c| c.migrated_out),
        sent: regions.messages.sent,
        delivered: regions.messages.delivered,
        dropped: regions.messages.dropped,
        delayed: regions.messages.delayed,
        held: regions.messages.held,
    };
    let report = SimtestReport {
        seed: config.seed,
        plan: plan.clone(),
        fleet: fleet.counters,
        serve: serve.counters,
        lifecycle: lifecycle.counters,
        engine,
        fleet_digest: crate::report::fnv1a64(fleet.to_json().as_bytes()),
        serve_digest: crate::report::fnv1a64(serve.to_json().as_bytes()),
        lifecycle_digest: crate::report::fnv1a64(lifecycle.to_json().as_bytes()),
        engine_digest: crate::report::fnv1a64(regions.to_json().as_bytes()),
        fault_spans,
        corruption_injected,
        corruption_rejected,
        violations,
    };
    Ok(SimtestRun { report, fleet, serve, serve_outcomes, lifecycle, feedback, regions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_rejects_empty_workloads() {
        assert!(SimtestConfig { fleet_jobs: 0, ..Default::default() }.validate().is_err());
        assert!(SimtestConfig { serve_requests: 0, ..Default::default() }.validate().is_err());
        assert!(
            SimtestConfig { lifecycle_requests: 10, ..Default::default() }.validate().is_err()
        );
        assert!(SimtestConfig { engine_regions: 1, ..Default::default() }.validate().is_err());
        assert!(SimtestConfig { engine_jobs: 0, ..Default::default() }.validate().is_err());
        SimtestConfig::default().validate().expect("defaults are valid");
    }

    #[test]
    fn fleet_workload_is_deterministic_and_sized() {
        let config = SimtestConfig::default();
        let a = fleet_jobs(&config);
        let b = fleet_jobs(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), config.fleet_jobs);
        assert!(a.iter().all(|j| j.plan.stages.len() == 4));
        // Sizes differ across jobs (seeded per-job factor).
        assert_ne!(a[0].plan.planned_runtime_secs(), a[1].plan.planned_runtime_secs());
    }
}
