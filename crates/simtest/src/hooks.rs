//! Adapts a [`FaultPlan`] to the fault-hook traits of the driven
//! crates.
//!
//! One [`PlanFaults`] value is shared (as an `Arc`) with the fleet
//! simulator, the serve server, and the lifecycle controller; each
//! consults only the hook methods of its own trait. Every answer is a
//! pure function of the queried identity and the immutable plan, so
//! injection is deterministic at any worker count.

use crate::{FaultEvent, FaultPlan, PPM};
use eda_cloud_engine::EngineFaults;
use eda_cloud_fleet::FleetFaults;
use eda_cloud_lifecycle::{Arm, LifecycleFaults};
use eda_cloud_recipe::RecipeFaults;
use eda_cloud_serve::{IngestFaults, ServeFaults};

/// A fault plan wired up as hook objects for all three loops.
#[derive(Debug, Clone)]
pub struct PlanFaults {
    plan: FaultPlan,
}

impl PlanFaults {
    /// Wrap a plan. The plan should be validated first
    /// ([`FaultPlan::validate`]); out-of-range parameters are clamped
    /// defensively at the hook sites.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    /// The wrapped plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl FleetFaults for PlanFaults {
    fn interrupt(&self, job_id: u64, _stage: usize, attempt: u32) -> Option<f64> {
        self.plan.events.iter().find_map(|event| match *event {
            FaultEvent::SpotStorm { job_lo, job_hi, attempts, fraction_ppm }
                if (job_lo..=job_hi).contains(&job_id) && attempt < attempts =>
            {
                Some(fraction_ppm.min(PPM) as f64 / PPM as f64)
            }
            _ => None,
        })
    }

    fn stall_pct(&self, job_id: u64, stage: usize) -> u64 {
        self.plan
            .events
            .iter()
            .find_map(|event| match *event {
                FaultEvent::VmStall { job_id: j, stage: s, pct } if j == job_id && s == stage => {
                    Some(pct.max(100))
                }
                _ => None,
            })
            .unwrap_or(100)
    }
}

impl ServeFaults for PlanFaults {
    fn force_shed(&self, ordinal: u64) -> bool {
        self.plan.events.iter().any(|event| {
            matches!(*event,
                FaultEvent::OverloadBurst { ord_lo, ord_hi }
                    if (ord_lo..=ord_hi).contains(&ordinal))
        })
    }

    fn wipe_cache(&self, ordinal: u64) -> bool {
        self.plan
            .events
            .iter()
            .any(|event| matches!(*event, FaultEvent::CacheWipe { ordinal: o } if o == ordinal))
    }
}

impl IngestFaults for PlanFaults {
    fn corrupt_upload(&self, ordinal: u64) -> bool {
        self.plan.events.iter().any(|event| {
            matches!(*event, FaultEvent::IngestCorruptUpload { ordinal: o } if o == ordinal)
        })
    }

    fn flood(&self, ordinal: u64) -> bool {
        self.plan.events.iter().any(|event| {
            matches!(*event,
                FaultEvent::IngestFlood { ord_lo, ord_hi }
                    if (ord_lo..=ord_hi).contains(&ordinal))
        })
    }
}

impl LifecycleFaults for PlanFaults {
    fn drop_feedback(&self, ordinal: u64) -> bool {
        self.plan
            .events
            .iter()
            .any(|event| matches!(*event, FaultEvent::FeedbackDrop { ordinal: o } if o == ordinal))
    }

    fn feedback_extra_delay_us(&self, ordinal: u64) -> u64 {
        self.plan
            .events
            .iter()
            .find_map(|event| match *event {
                FaultEvent::FeedbackDelay { ordinal: o, extra_us } if o == ordinal => {
                    Some(extra_us)
                }
                _ => None,
            })
            .unwrap_or(0)
    }

    fn latency_spike_us(&self, ordinal: u64, arm: Arm) -> u64 {
        if arm != Arm::Canary {
            return 0;
        }
        self.plan
            .events
            .iter()
            .find_map(|event| match *event {
                FaultEvent::CanaryLatencySpike { ord_lo, ord_hi, spike_us }
                    if (ord_lo..=ord_hi).contains(&ordinal) =>
                {
                    Some(spike_us)
                }
                _ => None,
            })
            .unwrap_or(0)
    }
}

impl RecipeFaults for PlanFaults {
    fn eval_extra_us(&self, iter: u64) -> u64 {
        self.plan
            .events
            .iter()
            .filter_map(|event| match *event {
                FaultEvent::RecipeEvalStall { iter_lo, iter_hi, extra_us }
                    if (iter_lo..=iter_hi).contains(&iter) =>
                {
                    Some(extra_us)
                }
                _ => None,
            })
            .sum()
    }
}

impl EngineFaults for PlanFaults {
    fn message_extra_delay_us(&self, src: u32, dst: u32, seq: u64) -> u64 {
        self.plan
            .events
            .iter()
            .find_map(|event| match *event {
                FaultEvent::CrossShardDelay { src: s, dst: d, seq_lo, seq_hi, extra_us }
                    if s == src && d == dst && (seq_lo..=seq_hi).contains(&seq) =>
                {
                    Some(extra_us)
                }
                _ => None,
            })
            .unwrap_or(0)
    }

    fn partition_heal_us(&self, src: u32, dst: u32, send_time_us: u64) -> Option<u64> {
        self.plan.events.iter().find_map(|event| match *event {
            FaultEvent::RegionPartition { src: s, dst: d, from_us, heal_us }
                if s == src && d == dst && (from_us..heal_us).contains(&send_time_us) =>
            {
                Some(heal_us)
            }
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hooks() -> PlanFaults {
        PlanFaults::new(FaultPlan {
            seed: 0,
            events: vec![
                FaultEvent::SpotStorm { job_lo: 1, job_hi: 2, attempts: 2, fraction_ppm: 250_000 },
                FaultEvent::VmStall { job_id: 3, stage: 1, pct: 300 },
                FaultEvent::OverloadBurst { ord_lo: 5, ord_hi: 7 },
                FaultEvent::CacheWipe { ordinal: 9 },
                FaultEvent::FeedbackDelay { ordinal: 11, extra_us: 1_000_000 },
                FaultEvent::FeedbackDrop { ordinal: 13 },
                FaultEvent::CanaryLatencySpike { ord_lo: 20, ord_hi: 30, spike_us: 500_000 },
                FaultEvent::CrossShardDelay {
                    src: 0,
                    dst: 2,
                    seq_lo: 4,
                    seq_hi: 6,
                    extra_us: 70_000,
                },
                FaultEvent::RegionPartition {
                    src: 2,
                    dst: 1,
                    from_us: 100_000,
                    heal_us: 400_000,
                },
                FaultEvent::RecipeEvalStall { iter_lo: 2, iter_hi: 4, extra_us: 250_000 },
                FaultEvent::RecipeEvalStall { iter_lo: 4, iter_hi: 4, extra_us: 50_000 },
                FaultEvent::IngestCorruptUpload { ordinal: 15 },
                FaultEvent::IngestFlood { ord_lo: 40, ord_hi: 42 },
            ],
        })
    }

    #[test]
    fn fleet_hooks_match_identity_exactly() {
        let h = hooks();
        assert_eq!(h.interrupt(1, 0, 0), Some(0.25));
        assert_eq!(h.interrupt(2, 3, 1), Some(0.25));
        assert_eq!(h.interrupt(2, 3, 2), None, "storm passes after `attempts`");
        assert_eq!(h.interrupt(0, 0, 0), None, "job outside the storm");
        assert_eq!(h.stall_pct(3, 1), 300);
        assert_eq!(h.stall_pct(3, 2), 100, "other stages run at nominal speed");
        assert_eq!(h.stall_pct(0, 1), 100);
    }

    #[test]
    fn serve_and_lifecycle_hooks_match_identity_exactly() {
        let h = hooks();
        assert!(h.force_shed(5) && h.force_shed(7) && !h.force_shed(8));
        assert!(h.wipe_cache(9) && !h.wipe_cache(10));
        assert_eq!(h.feedback_extra_delay_us(11), 1_000_000);
        assert_eq!(h.feedback_extra_delay_us(12), 0);
        assert!(h.drop_feedback(13) && !h.drop_feedback(11));
        assert_eq!(h.latency_spike_us(25, Arm::Canary), 500_000);
        assert_eq!(h.latency_spike_us(25, Arm::Primary), 0, "spike targets the canary arm");
        assert_eq!(h.latency_spike_us(31, Arm::Canary), 0);
    }

    #[test]
    fn engine_hooks_match_identity_exactly() {
        let h = hooks();
        assert_eq!(h.message_extra_delay_us(0, 2, 4), 70_000);
        assert_eq!(h.message_extra_delay_us(0, 2, 6), 70_000);
        assert_eq!(h.message_extra_delay_us(0, 2, 7), 0, "sequence outside the window");
        assert_eq!(h.message_extra_delay_us(2, 0, 5), 0, "links are directional");
        assert_eq!(h.partition_heal_us(2, 1, 100_000), Some(400_000));
        assert_eq!(h.partition_heal_us(2, 1, 399_999), Some(400_000));
        assert_eq!(h.partition_heal_us(2, 1, 400_000), None, "healed at the boundary");
        assert_eq!(h.partition_heal_us(2, 1, 99_999), None, "before the cut");
        assert_eq!(h.partition_heal_us(1, 2, 200_000), None, "reverse direction is up");
        assert!(!h.drop_message(0, 2, 5), "plans never drop silently");
    }

    #[test]
    fn recipe_hooks_sum_overlapping_stalls() {
        let h = hooks();
        assert_eq!(h.eval_extra_us(1), 0, "before the stall window");
        assert_eq!(h.eval_extra_us(2), 250_000);
        assert_eq!(h.eval_extra_us(4), 300_000, "overlapping stalls add up");
        assert_eq!(h.eval_extra_us(5), 0, "after the stall window");
    }

    #[test]
    fn ingest_hooks_match_identity_exactly() {
        let h = hooks();
        assert!(h.corrupt_upload(15) && !h.corrupt_upload(14));
        assert!(h.flood(40) && h.flood(42) && !h.flood(43) && !h.flood(39));
        assert!(!h.flood(15), "corruption and flood target different ordinals");
    }

    #[test]
    fn empty_plan_is_inert() {
        let h = PlanFaults::new(FaultPlan::empty(7));
        assert_eq!(h.interrupt(0, 0, 0), None);
        assert_eq!(h.stall_pct(0, 0), 100);
        assert!(!h.force_shed(0) && !h.wipe_cache(0) && !h.drop_feedback(0));
        assert_eq!(h.feedback_extra_delay_us(0), 0);
        assert_eq!(h.latency_spike_us(0, Arm::Canary), 0);
        assert_eq!(h.message_extra_delay_us(0, 1, 0), 0);
        assert_eq!(h.partition_heal_us(0, 1, 0), None);
        assert_eq!(h.eval_extra_us(0), 0);
        assert!(!h.corrupt_upload(0) && !h.flood(0));
        assert_eq!(h.plan().events.len(), 0);
    }
}
