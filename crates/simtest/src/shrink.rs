//! Delta-debugging shrinker for failing fault plans.
//!
//! When a run trips an invariant, [`shrink_plan`] bisects the plan's
//! event list — dropping chunks, halving the chunk size, repeating —
//! until no single event can be removed without the failure vanishing.
//! The result is a minimal reproducer that replays the same violation
//! and serializes to canonical JSON for check-in.

use crate::{run_simtest, FaultPlan, SimtestConfig, SimtestError};

/// Shrink `plan` against the harness itself: an event is essential iff
/// removing it makes every invariant pass again.
///
/// # Errors
///
/// Returns [`SimtestError::ShrinkOnPassingPlan`] when the initial plan
/// does not fail, and propagates any harness error raised while
/// re-running candidates.
pub fn shrink_plan(config: &SimtestConfig, plan: &FaultPlan) -> Result<FaultPlan, SimtestError> {
    shrink_plan_with(plan, |candidate| {
        Ok(!run_simtest(config, candidate)?.report.violations.is_empty())
    })
}

/// Generic ddmin core: `still_fails` answers whether a candidate plan
/// reproduces the failure. Exposed separately so tests can shrink
/// against cheap synthetic predicates.
///
/// # Errors
///
/// Returns [`SimtestError::ShrinkOnPassingPlan`] when `plan` itself
/// does not satisfy `still_fails`, and propagates predicate errors.
pub fn shrink_plan_with<F>(plan: &FaultPlan, mut still_fails: F) -> Result<FaultPlan, SimtestError>
where
    F: FnMut(&FaultPlan) -> Result<bool, SimtestError>,
{
    if !still_fails(plan)? {
        return Err(SimtestError::ShrinkOnPassingPlan);
    }
    let mut current = plan.clone();
    let mut chunk = current.events.len().max(1);
    while chunk >= 1 {
        let mut start = 0;
        while start < current.events.len() {
            let end = (start + chunk).min(current.events.len());
            let mut candidate = current.clone();
            candidate.events.drain(start..end);
            if still_fails(&candidate)? {
                // The chunk was inessential; keep the smaller plan and
                // retry the same position (new events shifted in).
                current = candidate;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultEvent;

    fn plan_with(ordinals: &[u64]) -> FaultPlan {
        FaultPlan {
            seed: 7,
            events: ordinals
                .iter()
                .map(|&o| FaultEvent::FeedbackDrop { ordinal: o })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_essential_event() {
        let plan = plan_with(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let shrunk = shrink_plan_with(&plan, |p| {
            Ok(p.events.contains(&FaultEvent::FeedbackDrop { ordinal: 5 }))
        })
        .expect("plan fails initially");
        assert_eq!(shrunk.events, vec![FaultEvent::FeedbackDrop { ordinal: 5 }]);
    }

    #[test]
    fn shrinks_conjunctions_to_both_essential_events() {
        let plan = plan_with(&[0, 1, 2, 3, 4, 5, 6, 7, 8]);
        let needs =
            [FaultEvent::FeedbackDrop { ordinal: 2 }, FaultEvent::FeedbackDrop { ordinal: 7 }];
        let shrunk =
            shrink_plan_with(&plan, |p| Ok(needs.iter().all(|n| p.events.contains(n))))
                .expect("plan fails initially");
        assert_eq!(shrunk.events, needs);
    }

    #[test]
    fn rejects_a_passing_plan() {
        let err = shrink_plan_with(&plan_with(&[1]), |_| Ok(false)).unwrap_err();
        assert!(matches!(err, SimtestError::ShrinkOnPassingPlan));
    }

    #[test]
    fn preserves_seed_and_event_order() {
        let plan = plan_with(&[9, 3, 6]);
        let shrunk = shrink_plan_with(&plan, |p| Ok(p.events.len() >= 2)).expect("fails");
        assert_eq!(shrunk.seed, 7);
        assert_eq!(shrunk.events.len(), 2);
        // Order of survivors matches the original plan.
        let positions: Vec<_> = shrunk
            .events
            .iter()
            .map(|e| plan.events.iter().position(|o| o == e).unwrap())
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }
}
