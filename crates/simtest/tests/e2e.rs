//! End-to-end harness runs: clean seed-7 pass, fault-laden pass,
//! worker-count byte-identity, and (behind the feature) the planted
//! guardrail bug being caught and shrunk.

use eda_cloud_simtest::{run_simtest, FaultEvent, FaultPlan, SimtestConfig};

#[test]
fn clean_seed_7_run_walks_the_full_arc_and_passes() {
    let config = SimtestConfig::default();
    let run = run_simtest(&config, &FaultPlan::empty(config.seed)).expect("harness runs");
    let report = &run.report;
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert_eq!(report.fleet.jobs_submitted, 6);
    assert_eq!(report.fleet.jobs_completed, 6, "no faults, no losses");
    assert_eq!(report.serve.requests, 48);
    assert_eq!(report.serve.shed + report.serve.completed, 48);
    assert_eq!(report.lifecycle.requests, 160);
    assert_eq!(report.lifecycle.feedback_dropped, 0);
    // The compressed lifecycle config still walks the whole
    // drift → retrain → canary → decision arc.
    assert!(report.lifecycle.drift_detections > 0, "drift fires");
    assert!(report.lifecycle.retrains > 0, "shadow retrain completes");
    assert!(report.lifecycle.canaries_started > 0, "canary starts");
    assert!(
        report.lifecycle.promotions + report.lifecycle.rollbacks > 0,
        "the canary reaches a decision"
    );
    assert_eq!(report.fault_spans, 0, "no faults injected");
    // The serve stream interleaves external uploads; with no faults
    // every fixture ingests cleanly.
    assert!(report.serve.ingest_accepted > 0, "uploads flow through the serve phase");
    assert_eq!(report.serve.ingest_rejected, 0, "no faults, no quarantines");
}

#[test]
fn ingest_faults_quarantine_uploads_without_poisoning_caches() {
    let config = SimtestConfig::default();
    let clean =
        run_simtest(&config, &FaultPlan::empty(config.seed)).expect("clean run");
    // Flood the whole window and corrupt a few ordinals: every ingest
    // request in the stream must be rejected, and the quarantine
    // checker must still pass (no cache poisoning, no GCN leakage).
    let plan = FaultPlan {
        seed: config.seed,
        events: vec![
            FaultEvent::IngestFlood { ord_lo: 0, ord_hi: 23 },
            FaultEvent::IngestCorruptUpload { ordinal: 24 },
            FaultEvent::IngestCorruptUpload { ordinal: 25 },
        ],
    };
    plan.validate().expect("plan is well-formed");
    let run = run_simtest(&config, &plan).expect("harness runs");
    let report = &run.report;
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.serve.ingest_rejected > 0, "the flood quarantines uploads");
    assert!(
        report.serve.ingest_rejected > clean.report.serve.ingest_rejected,
        "faults reject more than the clean run"
    );
    assert_eq!(
        report.serve.ingest_accepted + report.serve.ingest_rejected,
        clean.report.serve.ingest_accepted + clean.report.serve.ingest_rejected,
        "faults change dispositions, never the number of ingest requests"
    );
}

#[test]
fn injected_faults_change_outcomes_but_not_invariants() {
    let config = SimtestConfig::default();
    let plan = FaultPlan {
        seed: config.seed,
        events: vec![
            FaultEvent::SpotStorm { job_lo: 0, job_hi: 2, attempts: 2, fraction_ppm: 900_000 },
            FaultEvent::VmStall { job_id: 3, stage: 0, pct: 250 },
            FaultEvent::OverloadBurst { ord_lo: 10, ord_hi: 14 },
            FaultEvent::CacheWipe { ordinal: 20 },
            FaultEvent::FeedbackDrop { ordinal: 8 },
            FaultEvent::FeedbackDelay { ordinal: 30, extra_us: 2_000_000 },
            FaultEvent::CanaryLatencySpike { ord_lo: 0, ord_hi: 159, spike_us: 200_000 },
            FaultEvent::SnapshotCorruption { byte_index: 1234 },
        ],
    };
    plan.validate().expect("plan is well-formed");
    let run = run_simtest(&config, &plan).expect("harness runs");
    let report = &run.report;
    assert!(report.passed(), "violations: {:?}", report.violations);
    assert!(report.serve.shed >= 5, "the overload burst sheds its window");
    assert_eq!(report.lifecycle.feedback_dropped, 1);
    assert!(report.fault_spans > 0, "faults leave trace spans");
    assert_eq!(report.corruption_injected, 1);
    assert_eq!(report.corruption_rejected, 1, "the checksum rejects the bit-flip");
    // Fault accounting shows up in the canonical JSON too.
    assert!(report.to_json().contains("\"corruption_rejected\": 1"));
}

#[test]
fn generated_plans_replay_byte_identically() {
    let config = SimtestConfig::default();
    let plan = FaultPlan::generate(11, 6, &config);
    let json = plan.to_json();
    let reloaded = FaultPlan::from_json(&json).expect("canonical JSON round-trips");
    assert_eq!(plan, reloaded);
    let a = run_simtest(&config, &plan).expect("first run");
    let b = run_simtest(&config, &reloaded).expect("replayed run");
    assert_eq!(a.report.to_json(), b.report.to_json());
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    let plan = FaultPlan {
        seed: 7,
        events: vec![
            FaultEvent::SpotStorm { job_lo: 1, job_hi: 4, attempts: 1, fraction_ppm: 500_000 },
            FaultEvent::OverloadBurst { ord_lo: 5, ord_hi: 9 },
            FaultEvent::FeedbackDrop { ordinal: 40 },
        ],
    };
    let mut renderings = Vec::new();
    for workers in [1usize, 2, 8] {
        let config = SimtestConfig { workers, ..SimtestConfig::default() };
        let run = run_simtest(&config, &plan).expect("harness runs");
        assert!(run.report.passed(), "violations at {workers} workers: {:?}", run.report.violations);
        renderings.push(run.report.to_json());
    }
    assert_eq!(renderings[0], renderings[1], "1 vs 2 workers");
    assert_eq!(renderings[0], renderings[2], "1 vs 8 workers");
}

#[cfg(feature = "planted-guardrail-bug")]
mod planted {
    use super::*;
    use eda_cloud_simtest::shrink_plan;

    /// The spike plus two decoy events the shrinker must discard.
    fn buggy_plan() -> FaultPlan {
        FaultPlan {
            seed: 7,
            events: vec![
                FaultEvent::CacheWipe { ordinal: 3 },
                FaultEvent::CanaryLatencySpike { ord_lo: 0, ord_hi: 159, spike_us: 10_000_000 },
                FaultEvent::FeedbackDelay { ordinal: 50, extra_us: 500_000 },
            ],
        }
    }

    #[test]
    fn planted_bug_is_caught_and_shrunk_to_the_spike() {
        let config =
            SimtestConfig { planted_guardrail_bug: true, ..SimtestConfig::default() };
        let run = run_simtest(&config, &buggy_plan()).expect("harness runs");
        assert!(
            run.report.violations.iter().any(|v| v.checker == "guardrail_soundness"),
            "the blinded guardrail must trip the soundness checker; got {:?}",
            run.report.violations
        );
        let shrunk = shrink_plan(&config, &buggy_plan()).expect("plan fails, so it shrinks");
        assert!(shrunk.events.len() <= 3, "minimal reproducer, got {:?}", shrunk.events);
        assert!(
            shrunk
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::CanaryLatencySpike { .. })),
            "the spike is the essential event: {:?}",
            shrunk.events
        );
        // The reproducer replays the same violation from its JSON form.
        let replayed = FaultPlan::from_json(&shrunk.to_json()).expect("reproducer round-trips");
        let rerun = run_simtest(&config, &replayed).expect("harness runs");
        assert!(rerun.report.violations.iter().any(|v| v.checker == "guardrail_soundness"));
    }

    #[test]
    fn sound_controller_passes_the_same_plan() {
        let config = SimtestConfig::default();
        let run = run_simtest(&config, &buggy_plan()).expect("harness runs");
        assert!(run.report.passed(), "violations: {:?}", run.report.violations);
    }
}
