//! The deterministic lifecycle event loop.
//!
//! One simulated-microsecond clock drives two interleaved planes:
//!
//! * **Serving** — requests arrive (Poisson, seeded), are routed
//!   through the [`ModelRegistry`] (primary or canary arm), answered
//!   from the versioned result cache or a fresh GCN forward, and
//!   charged a FIFO service time.
//! * **Control** — each response schedules a ground-truth feedback
//!   join a fixed delay later (the flow "executes"). Joins feed the
//!   per-stage [`DriftDetector`]s; a detection flips the controller
//!   into collection mode, a filled replay buffer triggers a shadow
//!   [`Retrainer`] run, the candidate canaries through the registry,
//!   and the [`RolloutManager`] promotes or rolls it back.
//!
//! Both planes are processed from one `(time_us, seq)`-ordered event
//! map on a single thread; the only parallelism is the stage fan-out
//! inside batch forwards and retrains, joined by stage index. The
//! folded [`LifecycleReport`] is therefore byte-identical across runs
//! and worker counts.

use crate::{
    ape_micros, log_bias_micros, Arm, DesignBaseline, DriftDetector, DriftSignal, FeedbackEvent,
    LifecycleConfig, LifecycleCounters, LifecycleError, LifecycleReport, NoLifecycleFaults,
    ReplayBuffer, Retrainer, RolloutDecision, RolloutManager, RuntimeOracle, SharedLifecycleFaults,
    StageErrors, TimelineEvent,
};
use eda_cloud_fleet::Histogram;
use eda_cloud_gcn::{GraphBatch, ModelConfig};
use eda_cloud_serve::{
    design_pool, synthetic_requests, LruCache, ModelRegistry, ModelSnapshot, QuantizedSnapshot,
    ServeDesign, ServingSnapshot, WorkloadConfig, STAGE_NAMES,
};
use eda_cloud_trace::Tracer;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Registry name the controller manages.
pub const MODEL_NAME: &str = "prod";

/// What the control plane is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Watching primary-arm error through the drift detectors.
    Monitor,
    /// Drift detected; filling replay buffers with shifted samples.
    Collect,
    /// Candidate published; the rollout manager is judging it.
    Canary,
}

/// One scheduled event on the simulated clock.
enum Event {
    /// Request `index` into the workload arrives.
    Arrival(usize),
    /// A served job's ground truth comes back (boxed: a join carries
    /// full per-stage payloads, an arrival only an index).
    Feedback(Box<FeedbackEvent>),
}

/// The model-lifecycle controller. Construct with a validated
/// [`LifecycleConfig`], optionally attach a tracer, then [`run`].
///
/// [`run`]: LifecycleController::run
pub struct LifecycleController {
    config: LifecycleConfig,
    tracer: Tracer,
    faults: SharedLifecycleFaults,
    /// Test-only toggle for a deliberately planted guardrail bug (see
    /// [`LifecycleController::with_planted_guardrail_bug`]).
    #[cfg(any(test, feature = "planted-guardrail-bug"))]
    planted_guardrail_bug: bool,
}

impl LifecycleController {
    /// Build a controller, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError::Config`] for out-of-range knobs.
    pub fn new(config: LifecycleConfig) -> Result<Self, LifecycleError> {
        config.validate()?;
        Ok(Self {
            config,
            tracer: Tracer::disabled(),
            faults: Arc::new(NoLifecycleFaults),
            #[cfg(any(test, feature = "planted-guardrail-bug"))]
            planted_guardrail_bug: false,
        })
    }

    /// Attach a tracer: requests get spans keyed by their ordinals,
    /// control events by ordinals past the end of the request stream.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attach fault hooks (see [`crate::LifecycleFaults`]); the default
    /// is the inert [`NoLifecycleFaults`].
    #[must_use]
    pub fn with_faults(mut self, faults: SharedLifecycleFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Enable a deliberately planted guardrail bug: the rollout manager
    /// is fed canary latencies with any injected spike subtracted out,
    /// so the latency guardrail can no longer see injected canary
    /// degradation and promotes a candidate it should roll back. Exists
    /// solely so the simtest invariant suite can demonstrate catching
    /// (and shrinking) a real guardrail violation; compiled only under
    /// `cfg(test)` or the `planted-guardrail-bug` feature, and off by
    /// default even then.
    #[cfg(any(test, feature = "planted-guardrail-bug"))]
    #[must_use]
    pub fn with_planted_guardrail_bug(mut self) -> Self {
        self.planted_guardrail_bug = true;
        self
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &LifecycleConfig {
        &self.config
    }

    /// Run the full lifecycle to completion. Returns the folded report
    /// plus every feedback join in processing order (the raw material
    /// for assertions the report aggregates away).
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError::Serve`] if a registry operation is
    /// rejected mid-run (a controller bug rather than an input error —
    /// surfaced as a typed error instead of a panic).
    pub fn run(&self) -> Result<(LifecycleReport, Vec<FeedbackEvent>), LifecycleError> {
        let cfg = &self.config;
        let workers = cfg.resolved_workers();
        let oracle = RuntimeOracle::new(cfg.drift_at, cfg.drift_factor);
        let pool = design_pool();
        let requests = synthetic_requests(
            &pool,
            &WorkloadConfig {
                requests: cfg.requests,
                rate_per_sec: cfg.rate_per_sec,
                seed: cfg.seed,
                plan_every: 0,
                ..Default::default()
            },
        );

        // Bootstrap: fine-tune the seeded snapshot on the pre-drift
        // oracle labels, so serving starts from a model that actually
        // fits the distribution it is about to see.
        let seeded = ModelSnapshot::seeded(&ModelConfig::fast(), cfg.seed);
        let frozen = if cfg.bootstrap_epochs > 0 {
            let mut buffers = std::array::from_fn::<_, 4, _>(|_| ReplayBuffer::new(pool.len()));
            for design in &pool {
                push_relabeled(&mut buffers, design, &oracle.runtimes(design, 0));
            }
            Retrainer {
                epochs: cfg.bootstrap_epochs,
                learning_rate: cfg.learning_rate,
                seed: cfg.seed ^ 0xB007,
            }
            .retrain(&seeded, &buffers, workers)
            .0
        } else {
            seeded
        };
        let frozen = ServingSnapshot::from(frozen);
        let mut registry = ModelRegistry::new();
        let frozen_version = registry.publish(MODEL_NAME, frozen.clone());

        // Serving state.
        let mut cache: LruCache<(u32, u64), [[f64; 4]; 4]> = LruCache::new(cfg.cache_capacity);
        let mut frozen_preds: BTreeMap<u64, [[f64; 4]; 4]> = BTreeMap::new();
        let mut serve_free_at = 0u64;
        let mut latencies_us: Vec<u64> = Vec::with_capacity(requests.len());
        let mut latency_hist = Histogram::new(vec![
            1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
        ]);

        // Control state.
        let mut counters = LifecycleCounters::default();
        let mut stages = [StageErrors::default(); 4];
        let mut timeline: Vec<TimelineEvent> = Vec::new();
        let mut detectors = std::array::from_fn::<_, 4, _>(|_| {
            DriftDetector::new(cfg.calibration, cfg.ph_delta_micros, cfg.ph_lambda_micros)
        });
        let mut baselines = std::array::from_fn::<_, 4, _>(|_| DesignBaseline::new());
        let mut buffers =
            std::array::from_fn::<_, 4, _>(|_| ReplayBuffer::new(cfg.replay_capacity));
        let mut rollout = RolloutManager::new(
            cfg.canary_min,
            cfg.promote_max_error_pct,
            cfg.canary_latency_budget_us,
        );
        let mut mode = Mode::Monitor;
        let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut retrain_round = 0u64;
        let mut feedback_log: Vec<FeedbackEvent> = Vec::with_capacity(requests.len());
        let mut control_ordinal = requests.len() as u64;
        let mut makespan_us = 0u64;

        // The event map is keyed `(time, seq)`: seq breaks same-time
        // ties in insertion order, so arrivals (inserted first) precede
        // feedback joins landing on the same microsecond.
        let mut events: BTreeMap<(u64, u64), Event> = BTreeMap::new();
        let mut seq = 0u64;
        for (i, request) in requests.iter().enumerate() {
            events.insert((request.arrival_us, seq), Event::Arrival(i));
            seq += 1;
        }

        while let Some(((time_us, _), event)) = events.pop_first() {
            makespan_us = makespan_us.max(time_us);
            match event {
                Event::Arrival(i) => {
                    let request = &requests[i];
                    counters.requests += 1;
                    let canary = registry.canary(MODEL_NAME);
                    let (version, predicted, cache_hit) = {
                        let (version, snapshot) = registry.route(MODEL_NAME, request.ordinal)?;
                        match cache.get(&(version, request.design.fingerprint)) {
                            Some(hit) => (version, hit, true),
                            None => {
                                let secs = predict_one(snapshot, &request.design, workers);
                                cache.insert((version, request.design.fingerprint), secs);
                                counters.gcn_predictions += 1;
                                (version, secs, false)
                            }
                        }
                    };
                    let arm = match canary {
                        Some(c)
                            if c.version == version && request.ordinal.is_multiple_of(c.every) =>
                        {
                            Arm::Canary
                        }
                        _ => Arm::Primary,
                    };
                    let service_us = if cache_hit {
                        cfg.per_hit_us
                    } else {
                        cfg.per_miss_us
                    };
                    let start = time_us.max(serve_free_at);
                    let done = start + service_us;
                    serve_free_at = done;
                    // An injected spike models a slow response, not a
                    // busy server: it lands on this request's observed
                    // latency (and its feedback join) but does not push
                    // `serve_free_at` for later requests.
                    let spike_us = self.faults.latency_spike_us(request.ordinal, arm);
                    let latency_us = done - request.arrival_us + spike_us;
                    latencies_us.push(latency_us);
                    latency_hist.record(latency_us as f64 / 1_000.0);
                    let span = self.tracer.root_at(request.ordinal, "request");
                    span.attr("design", &request.design.name);
                    span.attr("version", version);
                    span.attr(
                        "arm",
                        if arm == Arm::Canary {
                            "canary"
                        } else {
                            "primary"
                        },
                    );
                    span.attr("cache", if cache_hit { "hit" } else { "miss" });
                    span.attr("latency_us", latency_us);
                    if spike_us > 0 {
                        span.attr("fault", "latency_spike");
                        span.attr("spike_us", spike_us);
                    }
                    if self.faults.drop_feedback(request.ordinal) {
                        counters.feedback_dropped += 1;
                        span.attr("fault", "feedback_dropped");
                    } else {
                        let extra_us = self.faults.feedback_extra_delay_us(request.ordinal);
                        if extra_us > 0 {
                            span.attr("fault", "feedback_delayed");
                            span.attr("extra_us", extra_us);
                        }
                        events.insert(
                            (done + cfg.feedback_delay_us + extra_us, seq),
                            Event::Feedback(Box::new(FeedbackEvent {
                                ordinal: request.ordinal,
                                version,
                                arm,
                                design: request.design.clone(),
                                predicted,
                                actual: oracle.runtimes(&request.design, request.ordinal),
                                latency_us,
                            })),
                        );
                        seq += 1;
                    }
                }
                Event::Feedback(fb) => {
                    counters.feedback_joins += 1;
                    seen.insert(fb.design.fingerprint);
                    match fb.arm {
                        Arm::Primary => counters.primary_joins += 1,
                        Arm::Canary => counters.canary_joins += 1,
                    }
                    let frozen_pred = *frozen_preds
                        .entry(fb.design.fingerprint)
                        .or_insert_with(|| predict_one(&frozen, &fb.design, workers));

                    // Per-stage error bookkeeping.
                    let mut active_apes = [0u64; 4];
                    for k in 0..4 {
                        let active = ape_micros(&fb.predicted[k], &fb.actual[k]);
                        let baseline = ape_micros(&frozen_pred[k], &fb.actual[k]);
                        active_apes[k] = active;
                        if fb.ordinal < cfg.drift_at {
                            stages[k].pre_drift.record(active);
                        } else {
                            stages[k].post_drift_frozen.record(baseline);
                            if fb.version != frozen_version {
                                stages[k].post_rollout_frozen.record(baseline);
                                stages[k].post_rollout_active.record(active);
                            }
                        }
                    }
                    let mean_ape = active_apes.iter().sum::<u64>() / 4;

                    match mode {
                        Mode::Monitor => {
                            push_relabeled(&mut buffers, &fb.design, &fb.actual);
                            // Watch only joins served by the *current*
                            // primary: in-flight joins from a version
                            // retired mid-flight would poison the fresh
                            // baseline profile after a rollout.
                            if fb.arm == Arm::Primary
                                && fb.version == registry.primary(MODEL_NAME)?.0
                            {
                                let mut fired = false;
                                for k in 0..4 {
                                    let bias = log_bias_micros(&fb.predicted[k], &fb.actual[k]);
                                    let Some(deviation) =
                                        baselines[k].deviation(fb.design.fingerprint, bias)
                                    else {
                                        continue;
                                    };
                                    if detectors[k].observe(deviation) == DriftSignal::Drift {
                                        fired = true;
                                        counters.drift_detections += 1;
                                        timeline.push(TimelineEvent {
                                            time_us,
                                            ordinal: fb.ordinal,
                                            kind: "drift_detected",
                                            stage: STAGE_NAMES[k],
                                            version: fb.version,
                                        });
                                        let span =
                                            self.tracer.root_at(control_ordinal, "drift_detect");
                                        control_ordinal += 1;
                                        span.attr("stage", STAGE_NAMES[k]);
                                        span.attr("ordinal", fb.ordinal);
                                        span.attr(
                                            "baseline_micros",
                                            detectors[k].baseline_micros().unwrap_or(0),
                                        );
                                    }
                                }
                                if fired {
                                    // Keep only shifted-distribution
                                    // samples for the retrain.
                                    for buffer in &mut buffers {
                                        buffer.clear();
                                    }
                                    push_relabeled(&mut buffers, &fb.design, &fb.actual);
                                    mode = Mode::Collect;
                                }
                            }
                        }
                        Mode::Collect => {
                            push_relabeled(&mut buffers, &fb.design, &fb.actual);
                            // Retrain only once the replay window covers
                            // every design traffic has ever shown us: a
                            // partial-coverage fine-tune catastrophically
                            // distorts the model on the designs it missed.
                            let covered = if seen.len() <= cfg.replay_capacity {
                                seen.iter().all(|fp| buffers[0].contains_key(*fp))
                            } else {
                                // More designs than the window holds:
                                // settle for a full buffer.
                                buffers[0].len() == cfg.replay_capacity
                            };
                            if covered && buffers.iter().all(|b| b.len() >= cfg.min_retrain) {
                                let retrainer = Retrainer {
                                    epochs: cfg.retrain_epochs,
                                    learning_rate: cfg.learning_rate,
                                    seed: cfg.seed ^ (0x5E7A + retrain_round),
                                };
                                retrain_round += 1;
                                // Retrains always run in float: a
                                // quantized primary is dequantized back
                                // into the warm start.
                                let base = registry.primary(MODEL_NAME)?.1.to_float();
                                let (candidate, trained_on) =
                                    retrainer.retrain(&base, &buffers, workers);
                                let version = if cfg.quantize_canary {
                                    registry.publish(
                                        MODEL_NAME,
                                        QuantizedSnapshot::quantize(&candidate),
                                    )
                                } else {
                                    registry.publish(MODEL_NAME, candidate)
                                };
                                counters.retrains += 1;
                                timeline.push(TimelineEvent {
                                    time_us,
                                    ordinal: fb.ordinal,
                                    kind: "retrained",
                                    stage: "-",
                                    version,
                                });
                                let span = self.tracer.root_at(control_ordinal, "retrain");
                                control_ordinal += 1;
                                span.attr("version", version);
                                span.attr("epochs", cfg.retrain_epochs);
                                span.counter("samples", trained_on.iter().sum::<usize>() as u64);
                                registry.set_canary(MODEL_NAME, version, cfg.canary_every)?;
                                counters.canaries_started += 1;
                                timeline.push(TimelineEvent {
                                    time_us,
                                    ordinal: fb.ordinal,
                                    kind: "canary_started",
                                    stage: "-",
                                    version,
                                });
                                let span = self.tracer.root_at(control_ordinal, "canary");
                                control_ordinal += 1;
                                span.attr("version", version);
                                span.attr("every", cfg.canary_every);
                                rollout.reset();
                                mode = Mode::Canary;
                            }
                        }
                        Mode::Canary => {
                            push_relabeled(&mut buffers, &fb.design, &fb.actual);
                            match fb.arm {
                                Arm::Canary => {
                                    #[allow(unused_mut)]
                                    let mut observed_us = fb.latency_us;
                                    // PLANTED BUG (test-only toggle): feed
                                    // the guardrail a latency with any
                                    // injected spike subtracted back out,
                                    // blinding it to canary degradation.
                                    #[cfg(any(test, feature = "planted-guardrail-bug"))]
                                    if self.planted_guardrail_bug {
                                        observed_us = observed_us.saturating_sub(
                                            self.faults.latency_spike_us(fb.ordinal, Arm::Canary),
                                        );
                                    }
                                    rollout.record_canary(mean_ape, observed_us);
                                }
                                Arm::Primary => rollout.record_primary(mean_ape),
                            }
                            let decision = rollout.evaluate();
                            if decision != RolloutDecision::Pending {
                                let candidate =
                                    registry.canary(MODEL_NAME).map_or(0, |c| c.version);
                                let (kind, label) = match decision {
                                    RolloutDecision::Promote => {
                                        registry.promote(MODEL_NAME, candidate)?;
                                        counters.promotions += 1;
                                        ("promoted", "promote")
                                    }
                                    _ => {
                                        registry.clear_canary(MODEL_NAME);
                                        counters.rollbacks += 1;
                                        ("rolled_back", "rollback")
                                    }
                                };
                                timeline.push(TimelineEvent {
                                    time_us,
                                    ordinal: fb.ordinal,
                                    kind,
                                    stage: "-",
                                    version: candidate,
                                });
                                let span = self.tracer.root_at(control_ordinal, label);
                                control_ordinal += 1;
                                span.attr("version", candidate);
                                if decision == RolloutDecision::RollbackLatency {
                                    span.attr("guardrail", "latency");
                                } else if decision == RolloutDecision::RollbackError {
                                    span.attr("guardrail", "error_ratio");
                                }
                                for detector in &mut detectors {
                                    detector.reset();
                                }
                                for baseline in &mut baselines {
                                    baseline.clear();
                                }
                                for buffer in &mut buffers {
                                    buffer.clear();
                                }
                                mode = Mode::Monitor;
                            }
                        }
                    }
                    feedback_log.push(*fb);
                }
            }
        }

        counters.cache_hits = cache.hits();
        counters.cache_misses = cache.misses();
        latencies_us.sort_unstable();
        let report = LifecycleReport {
            seed: cfg.seed,
            requests: cfg.requests as u64,
            drift_at: cfg.drift_at,
            drift_factor: cfg.drift_factor,
            counters,
            final_primary_version: registry.primary(MODEL_NAME)?.0,
            stages,
            timeline,
            mean_latency_us: if latencies_us.is_empty() {
                0
            } else {
                latencies_us.iter().sum::<u64>() / latencies_us.len() as u64
            },
            p95_latency_us: percentile_us(&latencies_us, 95),
            makespan_us,
            latency_hist,
        };
        Ok((report, feedback_log))
    }
}

/// One forward pass over a single design: a 1-element batch through
/// the snapshot's stage fan-out (joined by stage index, so the result
/// is worker-invariant).
fn predict_one(snapshot: &ServingSnapshot, design: &ServeDesign, workers: usize) -> [[f64; 4]; 4] {
    let aig = GraphBatch::pack(&[&design.aig]);
    let netlist = GraphBatch::pack(&[&design.netlist]);
    snapshot.predict_batches(&aig, &netlist, workers)[0]
}

/// Relabel a design's graph views with observed stage runtimes and
/// push them into the per-stage buffers, keyed by the design's
/// fingerprint so each buffer holds one freshest sample per design
/// (synthesis learns from the AIG view, the physical stages from the
/// netlist view).
fn push_relabeled(
    buffers: &mut [ReplayBuffer; 4],
    design: &Arc<ServeDesign>,
    runtimes: &[[f64; 4]; 4],
) {
    buffers[0].push_keyed(design.fingerprint, design.aig.with_targets(runtimes[0]));
    for (k, buffer) in buffers.iter_mut().enumerate().skip(1) {
        buffer.push_keyed(design.fingerprint, design.netlist.with_targets(runtimes[k]));
    }
}

/// Nearest-rank percentile over sorted µs values.
fn percentile_us(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64)
        .div_ceil(100)
        .clamp(1, sorted.len() as u64);
    sorted[rank as usize - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> LifecycleConfig {
        // Small but still walks the full detect → retrain → canary →
        // promote arc at seed 7.
        LifecycleConfig {
            requests: 200,
            drift_at: 60,
            calibration: 16,
            min_retrain: 8,
            canary_min: 6,
            bootstrap_epochs: 60,
            ..Default::default()
        }
    }

    #[test]
    fn full_arc_detects_retrains_and_promotes() {
        let (report, feedback) = LifecycleController::new(quick_config())
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(report.counters.requests, 200);
        assert_eq!(report.counters.feedback_joins, 200);
        assert_eq!(feedback.len(), 200);
        assert!(
            report.counters.drift_detections > 0,
            "drift must be detected"
        );
        assert!(report.counters.retrains > 0);
        assert!(report.counters.canaries_started > 0);
        assert!(report.counters.promotions > 0, "candidate must promote");
        assert!(report.final_primary_version > 1);
        let kinds: Vec<&str> = report.timeline.iter().map(|e| e.kind).collect();
        let detect = kinds
            .iter()
            .position(|k| *k == "drift_detected")
            .expect("detect");
        let retrain = kinds
            .iter()
            .position(|k| *k == "retrained")
            .expect("retrain");
        let promote = kinds
            .iter()
            .position(|k| *k == "promoted")
            .expect("promote");
        assert!(
            detect < retrain && retrain < promote,
            "events in causal order: {kinds:?}"
        );
        for (k, stage) in report.stages.iter().enumerate() {
            assert!(
                stage.post_rollout_active.mean_micros() < stage.post_rollout_frozen.mean_micros(),
                "stage {k}: retrained model must beat the frozen baseline"
            );
        }
    }

    #[test]
    fn no_drift_means_no_control_activity() {
        let config = LifecycleConfig {
            drift_at: u64::MAX,
            requests: 120,
            ..quick_config()
        };
        let (report, _) = LifecycleController::new(config)
            .expect("valid")
            .run()
            .expect("runs");
        assert_eq!(report.counters.drift_detections, 0);
        assert_eq!(report.counters.retrains, 0);
        assert_eq!(report.counters.promotions, 0);
        assert_eq!(report.final_primary_version, 1);
        assert!(report.timeline.is_empty());
    }

    #[test]
    fn useless_candidate_rolls_back() {
        // Zero retrain epochs publish an unchanged candidate: its error
        // equals the primary's, which fails a sub-100% guardrail.
        let config = LifecycleConfig {
            retrain_epochs: 0,
            ..quick_config()
        };
        let (report, _) = LifecycleController::new(config)
            .expect("valid")
            .run()
            .expect("runs");
        assert!(report.counters.retrains > 0);
        assert_eq!(report.counters.promotions, 0);
        assert!(
            report.counters.rollbacks > 0,
            "identical candidate must roll back"
        );
        assert_eq!(report.final_primary_version, 1, "primary never moves");
    }

    #[test]
    fn quantized_canary_arc_is_deterministic() {
        // Candidates published as int8 snapshots walk the same detect →
        // retrain → canary arc, judged by the same guardrails, and the
        // whole run stays byte-identical across repeats and workers.
        let run = |workers: usize| {
            let config = LifecycleConfig {
                quantize_canary: true,
                workers,
                ..quick_config()
            };
            LifecycleController::new(config)
                .expect("valid")
                .run()
                .expect("runs")
        };
        // Bit-exact projection of a feedback log for comparison.
        type FeedbackDigest = Vec<(u64, u32, Arm, u64, [[u64; 4]; 4], u64)>;
        let digest = |fs: &[FeedbackEvent]| -> FeedbackDigest {
            fs.iter()
                .map(|f| {
                    (
                        f.ordinal,
                        f.version,
                        f.arm,
                        f.design.fingerprint,
                        f.predicted.map(|s| s.map(f64::to_bits)),
                        f.latency_us,
                    )
                })
                .collect()
        };
        let (report, feedback) = run(1);
        assert!(report.counters.drift_detections > 0);
        assert!(report.counters.retrains > 0);
        assert!(
            report.counters.canaries_started > 0,
            "quantized candidate canaries"
        );
        assert!(
            report.counters.promotions + report.counters.rollbacks > 0,
            "guardrails must reach a verdict on the quantized candidate"
        );
        assert!(
            feedback.iter().any(|f| f.version > 1),
            "some joins are served by the int8 snapshot"
        );
        for w in [2usize, 4] {
            let (again, again_feedback) = run(w);
            assert_eq!(report.to_json(), again.to_json(), "workers {w}");
            assert_eq!(digest(&feedback), digest(&again_feedback), "workers {w}");
        }
    }

    #[test]
    fn rollout_invalidates_cached_predictions() {
        // Regression for the versioned cache keys: after a promotion,
        // requests for designs already cached under the old version
        // must be re-predicted by the new model. If the cache ignored
        // versions, every post-promotion join would still carry the
        // frozen model's predictions.
        let (report, feedback) = LifecycleController::new(quick_config())
            .expect("valid")
            .run()
            .expect("runs");
        assert!(report.counters.promotions > 0);
        let post = feedback.iter().filter(|f| f.version > 1).count();
        assert!(post > 0, "some joins served by the promoted model");
        let changed = feedback
            .iter()
            .filter(|f| f.version > 1)
            .filter(|f| {
                feedback.iter().any(|g| {
                    g.version == 1
                        && g.design.fingerprint == f.design.fingerprint
                        && g.predicted != f.predicted
                })
            })
            .count();
        assert!(
            changed > 0,
            "promoted model's served predictions must differ from the v1 cache's"
        );
    }

    #[test]
    fn bad_config_is_rejected() {
        let bad = LifecycleConfig {
            requests: 0,
            ..Default::default()
        };
        assert!(matches!(
            LifecycleController::new(bad),
            Err(LifecycleError::Config { .. })
        ));
    }

    /// Deterministic fault plan used by the hook tests: drops one join,
    /// delays another, and spikes a third request's latency.
    #[derive(Debug)]
    struct Plan;

    impl crate::LifecycleFaults for Plan {
        fn drop_feedback(&self, ordinal: u64) -> bool {
            ordinal == 5
        }
        fn feedback_extra_delay_us(&self, ordinal: u64) -> u64 {
            if ordinal == 9 {
                2_000_000
            } else {
                0
            }
        }
        fn latency_spike_us(&self, ordinal: u64, _arm: Arm) -> u64 {
            if ordinal == 12 {
                400_000
            } else {
                0
            }
        }
    }

    #[test]
    fn fault_hooks_drop_delay_and_spike_deterministically() {
        let run = |faults: bool| {
            let mut controller = LifecycleController::new(quick_config()).expect("valid");
            if faults {
                controller = controller.with_faults(Arc::new(Plan));
            }
            controller.run().expect("runs")
        };
        let (clean, _) = run(false);
        let (faulty, feedback) = run(true);

        // Conservation: the dropped join is accounted for, not lost.
        assert_eq!(faulty.counters.feedback_dropped, 1);
        assert_eq!(
            faulty.counters.feedback_joins + faulty.counters.feedback_dropped,
            faulty.counters.requests
        );
        assert!(
            feedback.iter().all(|f| f.ordinal != 5),
            "dropped join never lands"
        );

        // The delayed join still arrives, carrying its original payload.
        assert!(
            feedback.iter().any(|f| f.ordinal == 9),
            "delayed join still lands"
        );

        // The spike is observed by latency stats and the join.
        let spiked = feedback.iter().find(|f| f.ordinal == 12).expect("join 12");
        assert!(
            spiked.latency_us >= 400_000,
            "spike lands on observed latency"
        );
        assert!(faulty.p95_latency_us >= clean.p95_latency_us);

        // Same plan, same bytes.
        let (again, _) = run(true);
        assert_eq!(faulty.to_json(), again.to_json());
    }

    #[test]
    fn planted_guardrail_bug_blinds_the_latency_guardrail() {
        // Spike every canary-arm request far past the latency budget:
        // a sound guardrail must roll the candidate back, and the
        // planted bug (which subtracts the spike back out before the
        // guardrail sees it) must promote instead.
        #[derive(Debug)]
        struct CanarySpike;
        impl crate::LifecycleFaults for CanarySpike {
            fn latency_spike_us(&self, _ordinal: u64, arm: Arm) -> u64 {
                if arm == Arm::Canary {
                    10_000_000
                } else {
                    0
                }
            }
        }
        let run = |bug: bool| {
            let mut controller = LifecycleController::new(quick_config())
                .expect("valid")
                .with_faults(Arc::new(CanarySpike));
            if bug {
                controller = controller.with_planted_guardrail_bug();
            }
            controller.run().expect("runs").0
        };
        let sound = run(false);
        assert_eq!(sound.counters.promotions, 0, "sound guardrail rolls back");
        assert!(sound.counters.rollbacks > 0);
        let buggy = run(true);
        assert!(
            buggy.counters.promotions > 0,
            "planted bug promotes a degraded canary"
        );
    }
}
