//! Canary guardrails: promote or roll back a candidate.
//!
//! While a canary is in flight, every feedback join lands here —
//! canary-arm joins accumulate the candidate's error and latency,
//! primary-arm joins the baseline's error over the same stretch of
//! traffic. Once both arms have enough joins, the guardrails are
//! evaluated in integer micros: the candidate must beat the primary's
//! error by the configured margin *and* stay inside the latency
//! budget. One evaluation, one decision — the controller acts on it
//! and resets the manager.

/// The rollout manager's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutDecision {
    /// Not enough joins on one of the arms yet.
    Pending,
    /// Guardrails passed — promote the candidate.
    Promote,
    /// The candidate's error ratio breached the guardrail.
    RollbackError,
    /// The candidate's mean latency breached the budget.
    RollbackLatency,
}

/// Accumulates per-arm canary statistics and applies the guardrails.
#[derive(Debug, Clone)]
pub struct RolloutManager {
    min_joins: usize,
    promote_max_error_pct: u64,
    latency_budget_us: u64,
    canary_err_sum: u64,
    canary_joins: u64,
    canary_latency_sum: u64,
    primary_err_sum: u64,
    primary_joins: u64,
}

impl RolloutManager {
    /// A manager requiring `min_joins` on each arm, promoting only if
    /// `canary_mape * 100 <= promote_max_error_pct * primary_mape` and
    /// the canary's mean latency is within `latency_budget_us`.
    ///
    /// # Panics
    ///
    /// Panics if `min_joins == 0` or `promote_max_error_pct == 0`.
    #[must_use]
    pub fn new(min_joins: usize, promote_max_error_pct: u64, latency_budget_us: u64) -> Self {
        assert!(min_joins > 0, "min_joins must be positive");
        assert!(promote_max_error_pct > 0, "promote_max_error_pct must be positive");
        Self {
            min_joins,
            promote_max_error_pct,
            latency_budget_us,
            canary_err_sum: 0,
            canary_joins: 0,
            canary_latency_sum: 0,
            primary_err_sum: 0,
            primary_joins: 0,
        }
    }

    /// Record a canary-arm join: its all-stage mean APE (micros) and
    /// serving latency (µs).
    pub fn record_canary(&mut self, mape_micros: u64, latency_us: u64) {
        self.canary_err_sum += mape_micros;
        self.canary_latency_sum += latency_us;
        self.canary_joins += 1;
    }

    /// Record a primary-arm join observed while the canary is live.
    pub fn record_primary(&mut self, mape_micros: u64) {
        self.primary_err_sum += mape_micros;
        self.primary_joins += 1;
    }

    /// Canary-arm joins recorded so far.
    #[must_use]
    pub fn canary_joins(&self) -> u64 {
        self.canary_joins
    }

    /// Evaluate the guardrails. Integer arithmetic throughout: means
    /// are floor divisions and the error guardrail cross-multiplies,
    /// so the decision is byte-stable.
    #[must_use]
    pub fn evaluate(&self) -> RolloutDecision {
        if self.canary_joins < self.min_joins as u64 || self.primary_joins < self.min_joins as u64
        {
            return RolloutDecision::Pending;
        }
        let canary_latency = self.canary_latency_sum / self.canary_joins;
        if canary_latency > self.latency_budget_us {
            return RolloutDecision::RollbackLatency;
        }
        let canary_mape = self.canary_err_sum / self.canary_joins;
        let primary_mape = self.primary_err_sum / self.primary_joins;
        if canary_mape * 100 <= primary_mape * self.promote_max_error_pct {
            RolloutDecision::Promote
        } else {
            RolloutDecision::RollbackError
        }
    }

    /// Forget both arms (called when a canary starts or ends).
    pub fn reset(&mut self) {
        self.canary_err_sum = 0;
        self.canary_joins = 0;
        self.canary_latency_sum = 0;
        self.primary_err_sum = 0;
        self.primary_joins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pending_until_both_arms_have_enough_joins() {
        let mut m = RolloutManager::new(2, 90, 10_000);
        assert_eq!(m.evaluate(), RolloutDecision::Pending);
        m.record_canary(100_000, 1_000);
        m.record_canary(100_000, 1_000);
        assert_eq!(m.evaluate(), RolloutDecision::Pending, "primary arm still short");
        m.record_primary(300_000);
        m.record_primary(300_000);
        assert_eq!(m.evaluate(), RolloutDecision::Promote);
        assert_eq!(m.canary_joins(), 2);
    }

    #[test]
    fn error_guardrail_rolls_back_marginal_candidates() {
        let mut m = RolloutManager::new(1, 90, 10_000);
        // Exactly at the 90% boundary: promote (<=).
        m.record_canary(90_000, 1_000);
        m.record_primary(100_000);
        assert_eq!(m.evaluate(), RolloutDecision::Promote);
        m.reset();
        // Just above: rollback.
        m.record_canary(90_001, 1_000);
        m.record_primary(100_000);
        assert_eq!(m.evaluate(), RolloutDecision::RollbackError);
        m.reset();
        // A candidate no better than the primary (equal error) fails a
        // sub-100% guardrail — the retrain must actually help.
        m.record_canary(100_000, 1_000);
        m.record_primary(100_000);
        assert_eq!(m.evaluate(), RolloutDecision::RollbackError);
    }

    #[test]
    fn latency_guardrail_takes_precedence() {
        let mut m = RolloutManager::new(1, 90, 500);
        m.record_canary(10_000, 501);
        m.record_primary(100_000);
        assert_eq!(m.evaluate(), RolloutDecision::RollbackLatency);
    }

    #[test]
    fn zero_primary_error_requires_zero_canary_error() {
        let mut m = RolloutManager::new(1, 90, 10_000);
        m.record_canary(1, 100);
        m.record_primary(0);
        assert_eq!(m.evaluate(), RolloutDecision::RollbackError);
        m.reset();
        m.record_canary(0, 100);
        m.record_primary(0);
        assert_eq!(m.evaluate(), RolloutDecision::Promote);
    }
}
