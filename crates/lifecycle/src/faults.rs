//! Trait-based fault hooks for the lifecycle controller.
//!
//! The simtest harness injects lifecycle faults — delayed or dropped
//! ground-truth joins, canary-window latency spikes — through this
//! trait. Every hook is a pure function of canonical request identity
//! (the arrival ordinal) and the serving arm, never of wall-clock or
//! thread schedule, so an injected fault plan replays byte-identically
//! across runs and worker counts. The controller's default hook object
//! is the inert [`NoLifecycleFaults`].

use crate::Arm;
use std::sync::Arc;

/// Fault hooks consulted by [`crate::LifecycleController`] at
/// deterministic decision points.
pub trait LifecycleFaults: Send + Sync {
    /// Drop this request's ground-truth feedback join entirely (the
    /// flow job was lost; truth never comes back). Dropped joins are
    /// counted in `LifecycleCounters::feedback_dropped`, so
    /// conservation (`feedback_joins + feedback_dropped == requests`)
    /// still holds.
    fn drop_feedback(&self, ordinal: u64) -> bool {
        let _ = ordinal;
        false
    }

    /// Extra delay, µs, added to this request's feedback join on top of
    /// the configured `feedback_delay_us` — a straggling flow job.
    fn feedback_extra_delay_us(&self, ordinal: u64) -> u64 {
        let _ = ordinal;
        0
    }

    /// Latency spike, µs, added to this request's observed serving
    /// latency — degraded service during (for example) a canary window.
    /// The spike is observed by the latency statistics, the feedback
    /// join, and the rollout guardrail; it does not delay later
    /// requests (the spike models a slow response, not a busy server).
    fn latency_spike_us(&self, ordinal: u64, arm: Arm) -> u64 {
        let _ = (ordinal, arm);
        0
    }
}

/// The no-fault default: every hook answers "no fault".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoLifecycleFaults;

impl LifecycleFaults for NoLifecycleFaults {}

/// A shared, immutable hook object (hooks take `&self` so one plan can
/// be consulted from any number of runs concurrently).
pub type SharedLifecycleFaults = Arc<dyn LifecycleFaults>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_hooks_are_inert() {
        let faults = NoLifecycleFaults;
        assert!(!faults.drop_feedback(0));
        assert_eq!(faults.feedback_extra_delay_us(0), 0);
        assert_eq!(faults.latency_spike_us(0, Arm::Canary), 0);
    }
}
