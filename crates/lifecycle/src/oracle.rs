//! Ground-truth runtimes with injectable distribution drift.
//!
//! The fleet's flow engines are stood in for by a deterministic
//! oracle: per-stage base runtimes from the paper's Table I
//! (`sparc_core` at 1/2/4/8 vCPUs) scaled by each design's node count.
//! Drift is injected as a multiplicative shift from a configured
//! request ordinal onward — the moment the "design distribution"
//! changes under the serving model's feet.

use eda_cloud_serve::ServeDesign;

/// Table I `sparc_core` stage runtimes in seconds at 1/2/4/8 vCPUs,
/// in stage order synthesis / placement / routing / STA.
const BASE_RUNTIMES: [[f64; 4]; 4] = [
    [6_100.0, 4_342.0, 3_449.0, 3_352.0],
    [1_206.0, 905.0, 644.0, 519.0],
    [10_461.0, 5_514.0, 2_894.0, 1_692.0],
    [183.0, 119.0, 90.0, 82.0],
];

/// Node count the base runtimes are calibrated to; pool designs scale
/// linearly around it.
const REF_NODES: f64 = 64.0;

/// Deterministic ground-truth runtime source with drift injection.
#[derive(Debug, Clone)]
pub struct RuntimeOracle {
    drift_at: u64,
    drift_factor: f64,
}

impl RuntimeOracle {
    /// An oracle shifting runtimes by `drift_factor` for every request
    /// ordinal at or past `drift_at`.
    #[must_use]
    pub fn new(drift_at: u64, drift_factor: f64) -> Self {
        assert!(drift_factor > 0.0, "drift factor must be positive");
        Self { drift_at, drift_factor }
    }

    /// Whether requests at `ordinal` see the shifted distribution.
    #[must_use]
    pub fn drifted(&self, ordinal: u64) -> bool {
        ordinal >= self.drift_at
    }

    /// Ground-truth runtimes for one stage of `design` observed by the
    /// job at `ordinal`: base runtime × node-count scale × drift.
    /// Synthesis reads the AIG view's size, the physical stages the
    /// netlist view's.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= 4`.
    #[must_use]
    pub fn stage_runtimes(&self, design: &ServeDesign, stage: usize, ordinal: u64) -> [f64; 4] {
        assert!(stage < 4, "stage index {stage} out of range");
        let nodes = if stage == 0 {
            design.aig.node_count()
        } else {
            design.netlist.node_count()
        };
        let scale = (nodes as f64 / REF_NODES).max(0.05);
        let drift = if self.drifted(ordinal) { self.drift_factor } else { 1.0 };
        BASE_RUNTIMES[stage].map(|base| base * scale * drift)
    }

    /// Ground truth for all four stages (`[stage][vcpu]` seconds).
    #[must_use]
    pub fn runtimes(&self, design: &ServeDesign, ordinal: u64) -> [[f64; 4]; 4] {
        [
            self.stage_runtimes(design, 0, ordinal),
            self.stage_runtimes(design, 1, ordinal),
            self.stage_runtimes(design, 2, ordinal),
            self.stage_runtimes(design, 3, ordinal),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_serve::design_pool;

    #[test]
    fn drift_multiplies_runtimes_exactly() {
        let oracle = RuntimeOracle::new(100, 2.2);
        let pool = design_pool();
        let design = &pool[0];
        assert!(!oracle.drifted(99));
        assert!(oracle.drifted(100));
        let before = oracle.runtimes(design, 99);
        let after = oracle.runtimes(design, 100);
        for k in 0..4 {
            for j in 0..4 {
                assert!((after[k][j] - before[k][j] * 2.2).abs() < 1e-9);
                assert!(before[k][j] > 0.0);
            }
        }
    }

    #[test]
    fn larger_designs_run_longer() {
        let oracle = RuntimeOracle::new(u64::MAX, 2.0);
        let pool = design_pool();
        // adder4 vs adder8: same family, strictly more nodes.
        let small = pool.iter().find(|d| d.name == "adder4").expect("adder4");
        let large = pool.iter().find(|d| d.name == "adder8").expect("adder8");
        for k in 0..4 {
            assert!(
                oracle.stage_runtimes(large, k, 0)[0] > oracle.stage_runtimes(small, k, 0)[0],
                "stage {k}"
            );
        }
    }

    #[test]
    fn runtimes_follow_table_one_scaling() {
        let oracle = RuntimeOracle::new(u64::MAX, 2.0);
        let pool = design_pool();
        let d = &pool[0];
        let synth = oracle.stage_runtimes(d, 0, 0);
        let scale = (d.aig.node_count() as f64 / 64.0).max(0.05);
        assert!((synth[0] - 6_100.0 * scale).abs() < 1e-9);
        assert!((synth[3] - 3_352.0 * scale).abs() < 1e-9);
    }
}
