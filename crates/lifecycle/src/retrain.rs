//! Shadow retraining off the serving hot path.
//!
//! The retrainer fine-tunes a copy of the current snapshot on the
//! replay buffers — the serving snapshot is never touched; the result
//! is a *candidate* the rollout manager publishes as a canary. The
//! four stage models are independent, so they fan out over up to four
//! scoped threads and are joined back by stage index: the candidate is
//! byte-identical at every worker count.

use crate::ReplayBuffer;
use eda_cloud_gcn::GraphSample;
use eda_cloud_serve::ModelSnapshot;

/// Fine-tuning hyperparameters for one retrain cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Retrainer {
    /// Fine-tune epochs over each stage's buffer (0 = candidate is an
    /// unchanged copy of the base snapshot).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Shuffle seed; each stage derives its own stream from it.
    pub seed: u64,
}

impl Retrainer {
    /// Fine-tune `base` on the four per-stage replay buffers, fanning
    /// the stages over up to `workers` threads (capped at 4). Returns
    /// the candidate snapshot and the per-stage sample counts it was
    /// tuned on. Results are joined by stage index and each stage
    /// trains from its buffer's canonical sample order, so the
    /// candidate is byte-identical across worker counts *and* across
    /// the arrival orders that produced the same replay window.
    #[must_use]
    pub fn retrain(
        &self,
        base: &ModelSnapshot,
        buffers: &[ReplayBuffer; 4],
        workers: usize,
    ) -> (ModelSnapshot, [usize; 4]) {
        let tune_stage = |k: usize| {
            let mut model = base.stage(k).clone();
            let samples: Vec<&GraphSample> = buffers[k].samples_canonical();
            model.fine_tune(
                &samples,
                self.epochs,
                self.learning_rate,
                self.seed ^ ((k as u64) << 8),
            );
            (model, samples.len())
        };
        let mut tuned: Vec<Option<(eda_cloud_gcn::RuntimePredictor, usize)>> =
            vec![None, None, None, None];
        let w = workers.clamp(1, 4);
        if w == 1 {
            for (k, slot) in tuned.iter_mut().enumerate() {
                *slot = Some(tune_stage(k));
            }
        } else {
            let results = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..w)
                    .map(|t| {
                        let tune_stage = &tune_stage;
                        scope.spawn(move || {
                            (t..4).step_by(w).map(|k| (k, tune_stage(k))).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("retrain worker"))
                    .collect::<Vec<_>>()
            });
            for (k, result) in results {
                tuned[k] = Some(result);
            }
        }
        let mut tuned = tuned.into_iter().map(|t| t.expect("all stages tuned"));
        let (s, sn) = tuned.next().expect("stage");
        let (p, pn) = tuned.next().expect("stage");
        let (r, rn) = tuned.next().expect("stage");
        let (t, tn) = tuned.next().expect("stage");
        (ModelSnapshot::new(s, p, r, t), [sn, pn, rn, tn])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_gcn::ModelConfig;
    use eda_cloud_serve::design_pool;

    fn buffers(capacity: usize) -> [ReplayBuffer; 4] {
        let pool = design_pool();
        let mut buffers =
            [ReplayBuffer::new(capacity), ReplayBuffer::new(capacity), ReplayBuffer::new(capacity), ReplayBuffer::new(capacity)];
        for (i, design) in pool.iter().take(6).enumerate() {
            let target = (i + 1) as f64 * 100.0;
            buffers[0].push(design.aig.with_targets([target; 4]));
            for b in buffers.iter_mut().skip(1) {
                b.push(design.netlist.with_targets([target * 0.5; 4]));
            }
        }
        buffers
    }

    #[test]
    fn candidate_is_worker_invariant_and_base_untouched() {
        let base = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
        let base_text = base.to_text();
        let retrainer = Retrainer { epochs: 3, learning_rate: 3e-3, seed: 7 };
        let buffers = buffers(8);
        let (one, counts1) = retrainer.retrain(&base, &buffers, 1);
        assert_eq!(counts1, [6; 4]);
        assert_eq!(base.to_text(), base_text, "shadow retrain must not touch the base");
        assert_ne!(one.to_text(), base_text, "candidate must have moved");
        for workers in [2usize, 4, 8] {
            let (candidate, counts) = retrainer.retrain(&base, &buffers, workers);
            assert_eq!(candidate.to_text(), one.to_text(), "workers {workers}");
            assert_eq!(counts, counts1);
        }
    }

    #[test]
    fn zero_epochs_returns_an_identical_candidate() {
        let base = ModelSnapshot::seeded(&ModelConfig::fast(), 7);
        let retrainer = Retrainer { epochs: 0, learning_rate: 3e-3, seed: 7 };
        let (candidate, _) = retrainer.retrain(&base, &buffers(8), 2);
        assert_eq!(candidate.to_text(), base.to_text());
    }
}
