//! Windowed error statistics + Page-Hinkley drift test, in integers.
//!
//! The detector watches one stage's signed log-space prediction bias
//! (micros; see [`crate::log_bias_micros`]). Raw bias varies wildly
//! *across* designs (each design carries its own residual fit error),
//! so a [`DesignBaseline`] first profiles the bias per design
//! fingerprint and reports only the *deviation* from each design's own
//! baseline — under a frozen model that deviation is zero until the
//! runtime distribution actually moves, and a multiplicative shift by
//! `f` moves it by `ln(f)` for every design at once.
//!
//! The [`DriftDetector`] then calibrates a baseline mean over a fixed
//! window and runs a two-sided Page-Hinkley cumulative test on the
//! deviations: the cumulative sum's excursion past `lambda` — upward
//! (runtimes grew; the model under-predicts) or downward (runtimes
//! shrank) — is the drift signal. All state is `i64` micros — no
//! floating point anywhere — so the detector is trivially byte-stable
//! across platforms and worker counts.

use std::collections::BTreeMap;

/// Per-design bias profile: remembers the first bias observed for each
/// design fingerprint and reports subsequent observations as
/// deviations from that baseline. The first sighting of a design
/// yields no deviation (there is nothing to compare against yet).
#[derive(Debug, Clone, Default)]
pub struct DesignBaseline {
    profile: BTreeMap<u64, i64>,
}

impl DesignBaseline {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observation: returns `Some(bias - baseline)` for a
    /// design seen before, or `None` on first sight (recording the
    /// bias as that design's baseline).
    pub fn deviation(&mut self, fingerprint: u64, bias_micros: i64) -> Option<i64> {
        match self.profile.get(&fingerprint) {
            Some(baseline) => Some(bias_micros - baseline),
            None => {
                self.profile.insert(fingerprint, bias_micros);
                None
            }
        }
    }

    /// Number of designs profiled so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profile.len()
    }

    /// Whether no design has been profiled yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profile.is_empty()
    }

    /// Forget every profiled design — called when the model under the
    /// profile changes (its per-design biases change with it).
    pub fn clear(&mut self) {
        self.profile.clear();
    }
}

/// What one observation told the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftSignal {
    /// Still filling the calibration window.
    Calibrating,
    /// Calibrated; no drift detected.
    Stable,
    /// The Page-Hinkley statistic crossed `lambda` on this observation
    /// (reported once; the detector latches until reset).
    Drift,
}

/// Per-stage two-sided Page-Hinkley drift detector over integer
/// log-bias micros.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    calibration: usize,
    delta: i64,
    lambda: i64,
    window: Vec<i64>,
    baseline: Option<i64>,
    ph_up: i64,
    min_up: i64,
    ph_down: i64,
    max_down: i64,
    fired: bool,
    observations: u64,
}

impl DriftDetector {
    /// A detector calibrating over `calibration` observations, with
    /// Page-Hinkley slack `delta` and threshold `lambda` (both micros).
    ///
    /// # Panics
    ///
    /// Panics if `calibration == 0`, `delta < 0`, or `lambda <= 0`.
    #[must_use]
    pub fn new(calibration: usize, delta: i64, lambda: i64) -> Self {
        assert!(calibration > 0, "calibration window must be positive");
        assert!(delta >= 0, "delta must be non-negative");
        assert!(lambda > 0, "lambda must be positive");
        Self {
            calibration,
            delta,
            lambda,
            window: Vec::with_capacity(calibration),
            baseline: None,
            ph_up: 0,
            min_up: 0,
            ph_down: 0,
            max_down: 0,
            fired: false,
            observations: 0,
        }
    }

    /// Feed one observation (signed log-bias micros). Returns what it
    /// signalled; [`DriftSignal::Drift`] is returned exactly once per
    /// detection — afterwards the detector stays latched (reporting
    /// `Stable`) until [`DriftDetector::reset`].
    pub fn observe(&mut self, bias_micros: i64) -> DriftSignal {
        self.observations += 1;
        if self.fired {
            return DriftSignal::Stable;
        }
        let Some(baseline) = self.baseline else {
            self.window.push(bias_micros);
            if self.window.len() == self.calibration {
                let sum: i64 = self.window.iter().sum();
                self.baseline = Some(sum / self.window.len() as i64);
                self.window.clear();
            }
            return DriftSignal::Calibrating;
        };
        let deviation = bias_micros - baseline;
        self.ph_up += deviation - self.delta;
        self.min_up = self.min_up.min(self.ph_up);
        self.ph_down += deviation + self.delta;
        self.max_down = self.max_down.max(self.ph_down);
        if self.ph_up - self.min_up > self.lambda || self.max_down - self.ph_down > self.lambda {
            self.fired = true;
            return DriftSignal::Drift;
        }
        DriftSignal::Stable
    }

    /// Whether a detection is latched.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// The calibrated baseline mean bias (micros), once known.
    #[must_use]
    pub fn baseline_micros(&self) -> Option<i64> {
        self.baseline
    }

    /// Observations fed since construction or the last reset.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Forget everything and recalibrate from scratch — called after a
    /// rollout changes the model under the detector.
    pub fn reset(&mut self) {
        self.window.clear();
        self.baseline = None;
        self.ph_up = 0;
        self.min_up = 0;
        self.ph_down = 0;
        self.max_down = 0;
        self.fired = false;
        self.observations = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> DriftDetector {
        DriftDetector::new(8, 50_000, 400_000)
    }

    #[test]
    fn calibrates_then_stays_stable_on_flat_bias() {
        let mut d = detector();
        for i in 0..8 {
            assert_eq!(d.observe(200_000 + (i % 3) * 10_000), DriftSignal::Calibrating);
        }
        assert_eq!(d.baseline_micros(), Some(208_750));
        for i in 0..200 {
            assert_eq!(d.observe(200_000 + (i % 3) * 10_000), DriftSignal::Stable, "obs {i}");
        }
        assert!(!d.fired());
    }

    #[test]
    fn fires_once_on_sustained_upward_shift_and_latches() {
        let mut d = detector();
        for _ in 0..8 {
            d.observe(200_000);
        }
        // Bias jumps by +500_000 (runtimes grew): each observation adds
        // 500_000 - delta = 450_000 excess; fires crossing lambda.
        let mut fires = 0;
        for _ in 0..10 {
            if d.observe(700_000) == DriftSignal::Drift {
                fires += 1;
            }
        }
        assert_eq!(fires, 1, "drift reported exactly once");
        assert!(d.fired());
        d.reset();
        assert!(!d.fired());
        assert_eq!(d.baseline_micros(), None);
        assert_eq!(d.observations(), 0);
    }

    #[test]
    fn fires_on_downward_shift_too() {
        let mut d = detector();
        for _ in 0..8 {
            d.observe(200_000);
        }
        // Runtimes shrank: bias drops by 500_000.
        let mut fired = false;
        for _ in 0..10 {
            if d.observe(-300_000) == DriftSignal::Drift {
                fired = true;
            }
        }
        assert!(fired, "two-sided test must catch speedups");
    }

    #[test]
    fn tolerates_transient_spikes() {
        let mut d = detector();
        for _ in 0..8 {
            d.observe(200_000);
        }
        // One spike worth 300_000 excess, then back to baseline: the
        // statistic drains by delta per quiet observation, so no fire.
        assert_eq!(d.observe(550_000), DriftSignal::Stable);
        for _ in 0..50 {
            assert_eq!(d.observe(200_000), DriftSignal::Stable);
        }
        assert!(!d.fired());
    }

    #[test]
    fn design_baseline_zeroes_out_constant_per_design_bias() {
        let mut profile = DesignBaseline::new();
        // Two designs with wildly different constant biases.
        assert_eq!(profile.deviation(0xAA, 900_000), None, "first sight");
        assert_eq!(profile.deviation(0xBB, -1_200_000), None, "first sight");
        assert_eq!(profile.len(), 2);
        for _ in 0..5 {
            assert_eq!(profile.deviation(0xAA, 900_000), Some(0));
            assert_eq!(profile.deviation(0xBB, -1_200_000), Some(0));
        }
        // A uniform multiplicative drift shifts every design by the
        // same amount — exactly what the deviation exposes.
        assert_eq!(profile.deviation(0xAA, 900_000 + 788_457), Some(788_457));
        assert_eq!(profile.deviation(0xBB, -1_200_000 + 788_457), Some(788_457));
        profile.clear();
        assert!(profile.is_empty());
        assert_eq!(profile.deviation(0xAA, 0), None, "cleared profiles re-learn");
    }

    #[test]
    fn integer_state_is_replayable() {
        // The same observation sequence must walk the same state.
        let seq: Vec<i64> = (0..60).map(|i| 180_000 + (i * 37_811) % 90_000).collect();
        let run = |seq: &[i64]| {
            let mut d = detector();
            seq.iter().map(|&x| d.observe(x)).collect::<Vec<_>>()
        };
        assert_eq!(run(&seq), run(&seq));
    }
}
