//! Region-by-region staged rollout.
//!
//! The single-region [`RolloutManager`](crate::RolloutManager) answers
//! one question: is this canary safe to promote *here*? A multi-region
//! deployment asks the staged form of the question: roll the candidate
//! out one region at a time, in region order, promoting region `k+1`'s
//! canary only after region `k`'s guardrails passed — and abort the
//! whole wave the moment any region rolls back. [`StagedRegionRollout`]
//! drives one `RolloutManager` per region through exactly that state
//! machine. It is plain sequential integer state, so a wave replayed
//! from the same join stream lands on the same decision in every
//! region.

use crate::{RolloutDecision, RolloutManager};

/// Where a staged wave stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StagedStatus {
    /// The canary is live in `region`; its guardrails are accumulating.
    InFlight {
        /// The region currently under canary.
        region: u32,
    },
    /// Every region promoted; the wave is fully rolled out.
    Completed,
    /// A region's guardrails failed; the wave stopped there.
    Aborted {
        /// The region that failed.
        region: u32,
        /// Which guardrail failed ([`RolloutDecision::RollbackError`]
        /// or [`RolloutDecision::RollbackLatency`]).
        decision: RolloutDecision,
    },
}

/// One canary wave staged across regions in region order.
#[derive(Debug, Clone)]
pub struct StagedRegionRollout {
    managers: Vec<RolloutManager>,
    decisions: Vec<Option<RolloutDecision>>,
    status: StagedStatus,
}

impl StagedRegionRollout {
    /// A wave over `regions` regions, each guarded by a fresh
    /// [`RolloutManager`] with the given thresholds (see
    /// [`RolloutManager::new`]).
    ///
    /// # Panics
    ///
    /// Panics if `regions == 0`, or on the thresholds
    /// `RolloutManager::new` rejects.
    #[must_use]
    pub fn new(
        regions: usize,
        min_joins: usize,
        promote_max_error_pct: u64,
        latency_budget_us: u64,
    ) -> Self {
        assert!(regions > 0, "a staged rollout needs at least one region");
        Self {
            managers: (0..regions)
                .map(|_| RolloutManager::new(min_joins, promote_max_error_pct, latency_budget_us))
                .collect(),
            decisions: vec![None; regions],
            status: StagedStatus::InFlight { region: 0 },
        }
    }

    /// Where the wave stands.
    #[must_use]
    pub fn status(&self) -> StagedStatus {
        self.status
    }

    /// The region whose canary is currently live, if the wave is still
    /// in flight.
    #[must_use]
    pub fn current_region(&self) -> Option<u32> {
        match self.status {
            StagedStatus::InFlight { region } => Some(region),
            StagedStatus::Completed | StagedStatus::Aborted { .. } => None,
        }
    }

    /// Final decision per region: `None` for regions the wave never
    /// reached (after an abort).
    #[must_use]
    pub fn decisions(&self) -> &[Option<RolloutDecision>] {
        &self.decisions
    }

    /// Record a canary-arm join for the in-flight region. Joins for any
    /// other region (or after the wave ended) are stale traffic and are
    /// dropped.
    pub fn record_canary(&mut self, region: u32, mape_micros: u64, latency_us: u64) {
        if self.current_region() == Some(region) {
            self.managers[region as usize].record_canary(mape_micros, latency_us);
        }
    }

    /// Record a primary-arm join observed in the in-flight region.
    pub fn record_primary(&mut self, region: u32, mape_micros: u64) {
        if self.current_region() == Some(region) {
            self.managers[region as usize].record_primary(mape_micros);
        }
    }

    /// Evaluate the in-flight region's guardrails and advance the wave:
    /// a promotion moves the canary to the next region (completing the
    /// wave after the last), a rollback aborts it, pending stays put.
    /// Returns the in-flight region's decision, or `Pending` when the
    /// wave has already ended.
    pub fn evaluate(&mut self) -> RolloutDecision {
        let Some(region) = self.current_region() else {
            return RolloutDecision::Pending;
        };
        let decision = self.managers[region as usize].evaluate();
        match decision {
            RolloutDecision::Pending => {}
            RolloutDecision::Promote => {
                self.decisions[region as usize] = Some(decision);
                let next = region as usize + 1;
                self.status = if next == self.managers.len() {
                    StagedStatus::Completed
                } else {
                    StagedStatus::InFlight { region: next as u32 }
                };
            }
            RolloutDecision::RollbackError | RolloutDecision::RollbackLatency => {
                self.decisions[region as usize] = Some(decision);
                self.status = StagedStatus::Aborted { region, decision };
            }
        }
        decision
    }

    /// Regions that promoted so far.
    #[must_use]
    pub fn promoted_regions(&self) -> u64 {
        self.decisions
            .iter()
            .filter(|d| matches!(d, Some(RolloutDecision::Promote)))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_promote(wave: &mut StagedRegionRollout, region: u32) {
        wave.record_canary(region, 50_000, 1_000);
        wave.record_primary(region, 100_000);
    }

    #[test]
    fn wave_advances_region_by_region_and_completes() {
        let mut wave = StagedRegionRollout::new(3, 1, 90, 10_000);
        assert_eq!(wave.current_region(), Some(0));
        for region in 0..3u32 {
            feed_promote(&mut wave, region);
            assert_eq!(wave.evaluate(), RolloutDecision::Promote, "region {region}");
        }
        assert_eq!(wave.status(), StagedStatus::Completed);
        assert_eq!(wave.promoted_regions(), 3);
        assert_eq!(wave.evaluate(), RolloutDecision::Pending, "ended waves stay ended");
    }

    #[test]
    fn rollback_aborts_the_wave_and_skips_later_regions() {
        let mut wave = StagedRegionRollout::new(3, 1, 90, 10_000);
        feed_promote(&mut wave, 0);
        assert_eq!(wave.evaluate(), RolloutDecision::Promote);
        // Region 1's canary is worse than its primary: rollback.
        wave.record_canary(1, 200_000, 1_000);
        wave.record_primary(1, 100_000);
        assert_eq!(wave.evaluate(), RolloutDecision::RollbackError);
        assert_eq!(
            wave.status(),
            StagedStatus::Aborted { region: 1, decision: RolloutDecision::RollbackError }
        );
        assert_eq!(wave.decisions(), &[
            Some(RolloutDecision::Promote),
            Some(RolloutDecision::RollbackError),
            None,
        ]);
        // Joins for the region the wave never reached are dropped.
        feed_promote(&mut wave, 2);
        assert_eq!(wave.evaluate(), RolloutDecision::Pending);
        assert_eq!(wave.promoted_regions(), 1);
    }

    #[test]
    fn stale_traffic_for_other_regions_is_ignored() {
        let mut wave = StagedRegionRollout::new(2, 1, 90, 10_000);
        // Joins for region 1 while region 0 is in flight must not
        // advance region 1's manager.
        feed_promote(&mut wave, 1);
        assert_eq!(wave.evaluate(), RolloutDecision::Pending, "region 0 has no joins");
        feed_promote(&mut wave, 0);
        assert_eq!(wave.evaluate(), RolloutDecision::Promote);
        // Region 1 starts from scratch.
        assert_eq!(wave.evaluate(), RolloutDecision::Pending);
        feed_promote(&mut wave, 1);
        assert_eq!(wave.evaluate(), RolloutDecision::Promote);
        assert_eq!(wave.status(), StagedStatus::Completed);
    }

    #[test]
    fn latency_breach_aborts_with_the_latency_decision() {
        let mut wave = StagedRegionRollout::new(2, 1, 90, 500);
        wave.record_canary(0, 10_000, 501);
        wave.record_primary(0, 100_000);
        assert_eq!(wave.evaluate(), RolloutDecision::RollbackLatency);
        assert!(matches!(wave.status(), StagedStatus::Aborted { region: 0, .. }));
    }
}
