//! Byte-stable lifecycle report.
//!
//! Everything the controller measures folds into a [`LifecycleReport`]
//! rendered as hand-rolled JSON with a fixed key order. Error rates
//! are accumulated as integer APE micros and rendered with
//! `"{}.{:06}"`, latencies and times stay integer µs — no float
//! formatting ambiguity anywhere, so two runs (at any worker count)
//! producing equal state produce equal bytes.

use eda_cloud_fleet::Histogram;

/// Running mean of integer APE micros for one error bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanApe {
    sum_micros: u64,
    joins: u64,
}

impl MeanApe {
    /// Fold one join's APE (micros) into the mean.
    pub fn record(&mut self, ape_micros: u64) {
        self.sum_micros += ape_micros;
        self.joins += 1;
    }

    /// Floor-division mean in micros; 0 when no joins landed.
    #[must_use]
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.joins).unwrap_or(0)
    }

    /// Number of joins folded in.
    #[must_use]
    pub fn joins(&self) -> u64 {
        self.joins
    }
}

/// Prediction-error buckets for one flow stage, split by drift phase
/// and serving model. `post_rollout_frozen` and `post_rollout_active`
/// cover the *same* joins (those served by a retrained snapshot on the
/// shifted distribution), so comparing them answers "did the rollout
/// beat the frozen baseline on identical traffic".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageErrors {
    /// Serving error before the drift point (primary model).
    pub pre_drift: MeanApe,
    /// Frozen bootstrap model's error on every post-drift join.
    pub post_drift_frozen: MeanApe,
    /// Frozen model's error on joins served by a retrained snapshot.
    pub post_rollout_frozen: MeanApe,
    /// Retrained snapshot's error on those same joins.
    pub post_rollout_active: MeanApe,
}

/// Lifecycle control-plane counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounters {
    /// Requests served.
    pub requests: u64,
    /// Result-cache hits across all model versions.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// GCN batch forwards executed by serving (one per miss).
    pub gcn_predictions: u64,
    /// Ground-truth feedback joins processed.
    pub feedback_joins: u64,
    /// Joins whose request was served by the primary arm.
    pub primary_joins: u64,
    /// Joins whose request was served by the canary arm.
    pub canary_joins: u64,
    /// Per-stage drift detections fired.
    pub drift_detections: u64,
    /// Shadow retrains completed.
    pub retrains: u64,
    /// Canaries published to the registry.
    pub canaries_started: u64,
    /// Candidates promoted to primary.
    pub promotions: u64,
    /// Candidates rolled back by a guardrail.
    pub rollbacks: u64,
    /// Feedback joins lost to an injected drop fault (zero outside
    /// fault-injection harnesses); `feedback_joins + feedback_dropped`
    /// always equals `requests` once the stream drains.
    pub feedback_dropped: u64,
}

/// One control-plane event on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Simulated time the event fired, µs.
    pub time_us: u64,
    /// Request ordinal of the feedback join that triggered it.
    pub ordinal: u64,
    /// Event kind: `drift_detected`, `retrained`, `canary_started`,
    /// `promoted`, or `rolled_back`.
    pub kind: &'static str,
    /// Stage name for per-stage events, `-` otherwise.
    pub stage: &'static str,
    /// Snapshot version involved (candidate or primary), 0 if n/a.
    pub version: u32,
}

/// The folded outcome of one lifecycle run.
#[derive(Debug, Clone)]
pub struct LifecycleReport {
    /// Workload / controller seed.
    pub seed: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Ordinal where ground-truth drift was injected.
    pub drift_at: u64,
    /// Multiplicative drift factor.
    pub drift_factor: f64,
    /// Control-plane counters.
    pub counters: LifecycleCounters,
    /// Primary version when the stream ended.
    pub final_primary_version: u32,
    /// Per-stage error buckets, in `STAGE_NAMES` order.
    pub stages: [StageErrors; 4],
    /// Control-plane events in firing order.
    pub timeline: Vec<TimelineEvent>,
    /// Mean serving latency, µs (floor division).
    pub mean_latency_us: u64,
    /// Nearest-rank p95 serving latency, µs.
    pub p95_latency_us: u64,
    /// Simulated time of the last processed event, µs.
    pub makespan_us: u64,
    /// Serving latency distribution, ms buckets.
    pub latency_hist: Histogram,
}

/// Render integer APE micros as a decimal fraction (1.000000 = 100%).
fn fmt_micros(micros: u64) -> String {
    format!("{}.{:06}", micros / 1_000_000, micros % 1_000_000)
}

impl LifecycleReport {
    /// Canonical JSON rendering: fixed key order, integer times,
    /// micros-rendered error rates. Byte-identical across runs and
    /// worker counts for identical controller state.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!("  \"drift_at\": {},\n", self.drift_at));
        s.push_str(&format!("  \"drift_factor\": {:.6},\n", self.drift_factor));
        s.push_str("  \"counters\": {\n");
        s.push_str(&format!("    \"requests\": {},\n", c.requests));
        s.push_str(&format!("    \"cache_hits\": {},\n", c.cache_hits));
        s.push_str(&format!("    \"cache_misses\": {},\n", c.cache_misses));
        s.push_str(&format!("    \"gcn_predictions\": {},\n", c.gcn_predictions));
        s.push_str(&format!("    \"feedback_joins\": {},\n", c.feedback_joins));
        s.push_str(&format!("    \"primary_joins\": {},\n", c.primary_joins));
        s.push_str(&format!("    \"canary_joins\": {},\n", c.canary_joins));
        s.push_str(&format!("    \"drift_detections\": {},\n", c.drift_detections));
        s.push_str(&format!("    \"retrains\": {},\n", c.retrains));
        s.push_str(&format!("    \"canaries_started\": {},\n", c.canaries_started));
        s.push_str(&format!("    \"promotions\": {},\n", c.promotions));
        s.push_str(&format!("    \"rollbacks\": {},\n", c.rollbacks));
        s.push_str(&format!("    \"feedback_dropped\": {}\n", c.feedback_dropped));
        s.push_str("  },\n");
        s.push_str(&format!("  \"final_primary_version\": {},\n", self.final_primary_version));
        s.push_str("  \"stages\": [\n");
        for (k, name) in eda_cloud_serve::STAGE_NAMES.iter().enumerate() {
            let e = &self.stages[k];
            s.push_str("    {\n");
            s.push_str(&format!("      \"stage\": \"{name}\",\n"));
            s.push_str(&format!(
                "      \"pre_drift_mape\": {},\n",
                fmt_micros(e.pre_drift.mean_micros())
            ));
            s.push_str(&format!("      \"pre_drift_joins\": {},\n", e.pre_drift.joins()));
            s.push_str(&format!(
                "      \"post_drift_frozen_mape\": {},\n",
                fmt_micros(e.post_drift_frozen.mean_micros())
            ));
            s.push_str(&format!(
                "      \"post_rollout_frozen_mape\": {},\n",
                fmt_micros(e.post_rollout_frozen.mean_micros())
            ));
            s.push_str(&format!(
                "      \"post_rollout_active_mape\": {},\n",
                fmt_micros(e.post_rollout_active.mean_micros())
            ));
            s.push_str(&format!(
                "      \"post_rollout_joins\": {}\n",
                e.post_rollout_active.joins()
            ));
            s.push_str(if k + 1 < 4 { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ],\n");
        s.push_str("  \"timeline\": [\n");
        for (i, e) in self.timeline.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"time_us\": {}, \"ordinal\": {}, \"event\": \"{}\", \
                 \"stage\": \"{}\", \"version\": {}}}{}\n",
                e.time_us,
                e.ordinal,
                e.kind,
                e.stage,
                e.version,
                if i + 1 < self.timeline.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"mean_latency_us\": {},\n", self.mean_latency_us));
        s.push_str(&format!("  \"p95_latency_us\": {},\n", self.p95_latency_us));
        s.push_str(&format!("  \"makespan_us\": {},\n", self.makespan_us));
        s.push_str(&format!("  \"latency_hist\": {}\n", self.latency_hist.to_json()));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micros_render_with_six_digits() {
        assert_eq!(fmt_micros(0), "0.000000");
        assert_eq!(fmt_micros(125_000), "0.125000");
        assert_eq!(fmt_micros(1_000_000), "1.000000");
        assert_eq!(fmt_micros(2_345_678), "2.345678");
    }

    #[test]
    fn mean_ape_floors_and_handles_empty() {
        let mut m = MeanApe::default();
        assert_eq!(m.mean_micros(), 0);
        m.record(10);
        m.record(11);
        assert_eq!(m.mean_micros(), 10, "floor division");
        assert_eq!(m.joins(), 2);
    }

    #[test]
    fn report_json_is_stable_and_parseable_shaped() {
        let report = LifecycleReport {
            seed: 7,
            requests: 10,
            drift_at: 3,
            drift_factor: 2.2,
            counters: LifecycleCounters { requests: 10, ..Default::default() },
            final_primary_version: 2,
            stages: [StageErrors::default(); 4],
            timeline: vec![TimelineEvent {
                time_us: 1_000,
                ordinal: 5,
                kind: "promoted",
                stage: "-",
                version: 2,
            }],
            mean_latency_us: 900,
            p95_latency_us: 1_800,
            makespan_us: 60_000,
            latency_hist: Histogram::new(vec![1.0, 10.0]),
        };
        let a = report.to_json();
        assert_eq!(a, report.to_json());
        assert!(a.contains("\"drift_factor\": 2.200000"));
        assert!(a.contains("\"event\": \"promoted\""));
        assert!(a.contains("\"stage\": \"synthesis\""));
        assert_eq!(a.matches("pre_drift_mape").count(), 4);
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }
}
