//! Deterministic continual-learning model lifecycle.
//!
//! The paper trains its GCN runtime predictor once, offline; the serve
//! tier froze that model behind a registry. This crate closes the
//! train → serve loop: a controller runs in simulated time alongside
//! serving and manages the model under traffic.
//!
//! * **Feedback collection** ([`FeedbackEvent`], [`ReplayBuffer`]) —
//!   each served prediction is joined with the ground-truth runtimes
//!   its job observes (a deterministic [`RuntimeOracle`] standing in
//!   for the flow engines, with injectable distribution drift), and
//!   the design's graph views are relabeled into bounded per-stage
//!   replay buffers.
//! * **Drift detection** ([`DesignBaseline`], [`DriftDetector`]) —
//!   per-design log-bias profiling plus a two-sided Page-Hinkley
//!   cumulative test over integer bias-deviation micros; no
//!   floating-point state, so detections are byte-stable.
//! * **Shadow retraining** ([`Retrainer`]) — a copy of the serving
//!   snapshot is fine-tuned on the replay buffers through the existing
//!   Adam path, fanned over stage threads and joined by stage index.
//! * **Canary rollout** ([`RolloutManager`]) — the candidate is
//!   published to the [`eda_cloud_serve::ModelRegistry`] as a canary
//!   serving a deterministic slice of ordinals; integer guardrails
//!   (error ratio, latency budget) promote it or roll it back.
//! * **Staged region rollout** ([`StagedRegionRollout`]) — the same
//!   canary machinery driven region by region: each region's
//!   guardrails must promote before the next region's canary goes
//!   live, and any rollback aborts the whole wave.
//!
//! Everything folds into a [`LifecycleReport`] whose JSON rendering is
//! byte-identical across runs and worker counts.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_lifecycle::{LifecycleConfig, LifecycleController};
//!
//! let config = LifecycleConfig {
//!     requests: 160,
//!     drift_at: 50,
//!     calibration: 12,
//!     min_retrain: 6,
//!     canary_min: 5,
//!     bootstrap_epochs: 10,
//!     retrain_epochs: 10,
//!     ..Default::default()
//! };
//! let controller = LifecycleController::new(config)?;
//! let (report, _) = controller.run()?;
//! assert!(report.counters.drift_detections > 0);
//! assert!(report.counters.promotions + report.counters.rollbacks > 0);
//! # Ok::<(), eda_cloud_lifecycle::LifecycleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod controller;
mod drift;
mod error;
mod faults;
mod feedback;
mod oracle;
mod regions;
mod report;
mod retrain;
mod rollout;

pub use config::LifecycleConfig;
pub use controller::{LifecycleController, MODEL_NAME};
pub use drift::{DesignBaseline, DriftDetector, DriftSignal};
pub use error::LifecycleError;
pub use faults::{LifecycleFaults, NoLifecycleFaults, SharedLifecycleFaults};
pub use feedback::{ape_micros, log_bias_micros, Arm, FeedbackEvent, ReplayBuffer};
pub use oracle::RuntimeOracle;
pub use regions::{StagedRegionRollout, StagedStatus};
pub use report::{LifecycleCounters, LifecycleReport, MeanApe, StageErrors, TimelineEvent};
pub use retrain::Retrainer;
pub use rollout::{RolloutDecision, RolloutManager};
