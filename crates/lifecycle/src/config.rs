//! Lifecycle controller configuration.

use crate::LifecycleError;

/// Every knob of the lifecycle controller: the synthetic workload it
/// serves, the drift it injects into ground truth, the detector and
/// retrainer thresholds, and the canary rollout policy. Defaults are
/// the golden-report parameters: drift injected a third of the way
/// into the stream is detected, retrained away, canaried, and promoted
/// well before the stream ends.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleConfig {
    /// Number of requests in the synthetic stream.
    pub requests: usize,
    /// Mean Poisson arrival rate, requests per second.
    pub rate_per_sec: f64,
    /// Seed for the workload, bootstrap, and every retrain shuffle.
    pub seed: u64,
    /// Threads for stage-model fan-outs (capped at 4, one per stage);
    /// 0 picks the available parallelism. Never changes results.
    pub workers: usize,
    /// Request ordinal at which ground-truth runtimes shift; set at or
    /// past `requests` to disable drift.
    pub drift_at: u64,
    /// Multiplicative runtime shift applied from `drift_at` onward.
    pub drift_factor: f64,
    /// Simulated delay between a response and its ground-truth
    /// feedback join, µs (the flow "executes" before truth arrives).
    pub feedback_delay_us: u64,
    /// Serving result-cache capacity (entries); 0 disables caching.
    pub cache_capacity: usize,
    /// Simulated service cost of a cache miss (one GCN forward), µs.
    pub per_miss_us: u64,
    /// Simulated service cost of a cache hit, µs.
    pub per_hit_us: u64,
    /// Fine-tune epochs used to bootstrap the first snapshot from the
    /// oracle-labeled design pool; 0 serves the raw seeded model.
    pub bootstrap_epochs: usize,
    /// Fine-tune epochs per shadow retrain; 0 publishes an unchanged
    /// candidate (useful to exercise the rollback path).
    pub retrain_epochs: usize,
    /// Learning rate for bootstrap and retrains.
    pub learning_rate: f64,
    /// Per-stage replay-buffer capacity (samples).
    pub replay_capacity: usize,
    /// Distinct designs each stage buffer must hold after a drift
    /// detection before a retrain launches (the controller additionally
    /// waits until the buffers cover every design seen in traffic —
    /// partial-coverage fine-tunes distort the designs they miss).
    pub min_retrain: usize,
    /// Primary-arm joins the drift detector calibrates its baseline
    /// over before the Page-Hinkley test arms.
    pub calibration: usize,
    /// Page-Hinkley slack per observation, log-bias micros (1e6 = one
    /// natural-log unit; a drift factor `f` shifts the bias by
    /// `ln(f) * 1e6`).
    pub ph_delta_micros: i64,
    /// Page-Hinkley firing threshold, cumulative log-bias micros.
    pub ph_lambda_micros: i64,
    /// Route every `canary_every`-th request ordinal to the candidate.
    pub canary_every: u64,
    /// Joins required on *each* arm before guardrails are evaluated.
    pub canary_min: usize,
    /// Promote only if `canary_mape * 100 <= pct * primary_mape`.
    pub promote_max_error_pct: u64,
    /// Promote only if the canary's mean serving latency stays within
    /// this budget, µs.
    pub canary_latency_budget_us: u64,
    /// Publish each retrained candidate as an int8 quantized snapshot
    /// instead of float, so the canary judges the quantized serving
    /// path head-to-head against the float primary. Guardrails,
    /// routing, and promotion are identical either way.
    pub quantize_canary: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            requests: 320,
            rate_per_sec: 200.0,
            seed: 7,
            workers: 1,
            drift_at: 106,
            drift_factor: 2.2,
            feedback_delay_us: 25_000,
            cache_capacity: 32,
            per_miss_us: 1_000,
            per_hit_us: 50,
            bootstrap_epochs: 40,
            retrain_epochs: 60,
            learning_rate: 3e-3,
            replay_capacity: 48,
            min_retrain: 12,
            calibration: 24,
            ph_delta_micros: 250_000,
            ph_lambda_micros: 2_500_000,
            canary_every: 4,
            canary_min: 8,
            promote_max_error_pct: 90,
            canary_latency_budget_us: 50_000,
            quantize_canary: false,
        }
    }
}

impl LifecycleConfig {
    /// Check every knob is in range.
    ///
    /// # Errors
    ///
    /// Returns [`LifecycleError::Config`] naming the offending knob.
    pub fn validate(&self) -> Result<(), LifecycleError> {
        let err = |m: &str| {
            Err(LifecycleError::Config {
                message: m.to_owned(),
            })
        };
        // NaN compares Greater with nothing, so this also rejects NaN.
        let positive =
            |x: f64| x.partial_cmp(&0.0) == Some(std::cmp::Ordering::Greater) && x.is_finite();
        if self.requests == 0 {
            return err("requests must be positive");
        }
        if !positive(self.rate_per_sec) {
            return err("rate_per_sec must be positive");
        }
        if !positive(self.drift_factor) {
            return err("drift_factor must be positive");
        }
        if !positive(self.learning_rate) {
            return err("learning_rate must be positive");
        }
        if self.canary_every == 0 {
            return err("canary_every must be positive");
        }
        if self.canary_min == 0 {
            return err("canary_min must be positive");
        }
        if self.calibration == 0 {
            return err("calibration must be positive");
        }
        if self.min_retrain == 0 {
            return err("min_retrain must be positive");
        }
        if self.replay_capacity < self.min_retrain {
            return err("replay_capacity must be >= min_retrain");
        }
        if self.promote_max_error_pct == 0 {
            return err("promote_max_error_pct must be positive");
        }
        if self.ph_delta_micros < 0 || self.ph_lambda_micros <= 0 {
            return err("Page-Hinkley thresholds must be non-negative / positive");
        }
        Ok(())
    }

    /// Resolve the worker knob: explicit values pass through, 0 means
    /// the machine's available parallelism; at most 4 either way.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        let w = if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        };
        w.min(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        LifecycleConfig::default()
            .validate()
            .expect("defaults are sane");
    }

    #[test]
    fn each_bad_knob_is_named() {
        let cases: Vec<(LifecycleConfig, &str)> = vec![
            (
                LifecycleConfig {
                    requests: 0,
                    ..Default::default()
                },
                "requests",
            ),
            (
                LifecycleConfig {
                    rate_per_sec: 0.0,
                    ..Default::default()
                },
                "rate_per_sec",
            ),
            (
                LifecycleConfig {
                    drift_factor: -1.0,
                    ..Default::default()
                },
                "drift_factor",
            ),
            (
                LifecycleConfig {
                    learning_rate: 0.0,
                    ..Default::default()
                },
                "learning_rate",
            ),
            (
                LifecycleConfig {
                    canary_every: 0,
                    ..Default::default()
                },
                "canary_every",
            ),
            (
                LifecycleConfig {
                    canary_min: 0,
                    ..Default::default()
                },
                "canary_min",
            ),
            (
                LifecycleConfig {
                    calibration: 0,
                    ..Default::default()
                },
                "calibration",
            ),
            (
                LifecycleConfig {
                    min_retrain: 0,
                    ..Default::default()
                },
                "min_retrain",
            ),
            (
                LifecycleConfig {
                    replay_capacity: 1,
                    ..Default::default()
                },
                "replay_capacity",
            ),
            (
                LifecycleConfig {
                    promote_max_error_pct: 0,
                    ..Default::default()
                },
                "promote_max_error_pct",
            ),
            (
                LifecycleConfig {
                    ph_lambda_micros: 0,
                    ..Default::default()
                },
                "Page-Hinkley",
            ),
        ];
        for (config, needle) in cases {
            let e = config.validate().expect_err(needle);
            assert!(
                e.to_string().contains(needle),
                "{e} should mention {needle}"
            );
        }
    }

    #[test]
    fn worker_resolution_caps_at_four() {
        assert_eq!(
            LifecycleConfig {
                workers: 2,
                ..Default::default()
            }
            .resolved_workers(),
            2
        );
        assert_eq!(
            LifecycleConfig {
                workers: 16,
                ..Default::default()
            }
            .resolved_workers(),
            4
        );
        assert!(
            LifecycleConfig {
                workers: 0,
                ..Default::default()
            }
            .resolved_workers()
                >= 1
        );
    }
}
