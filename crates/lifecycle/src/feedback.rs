//! Feedback joins and the bounded replay buffer.
//!
//! When a served job "executes", its ground-truth runtimes come back
//! and are joined with the predictions that were served — the raw
//! material for both drift detection (prediction error over time) and
//! retraining (relabeled graph samples in a bounded replay buffer).

use eda_cloud_gcn::GraphSample;
use eda_cloud_serve::ServeDesign;
use std::collections::VecDeque;
use std::sync::Arc;

/// Which model arm served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arm {
    /// The primary (baseline) snapshot.
    Primary,
    /// The canary candidate.
    Canary,
}

/// One served prediction joined with its observed ground truth.
#[derive(Debug, Clone)]
pub struct FeedbackEvent {
    /// Request ordinal this feedback belongs to.
    pub ordinal: u64,
    /// Snapshot version that served the request.
    pub version: u32,
    /// Arm that served the request.
    pub arm: Arm,
    /// The design that was predicted.
    pub design: Arc<ServeDesign>,
    /// Served per-stage predictions, `[stage][vcpu]` seconds.
    pub predicted: [[f64; 4]; 4],
    /// Observed per-stage ground truth, `[stage][vcpu]` seconds.
    pub actual: [[f64; 4]; 4],
    /// Serving latency of the request, µs.
    pub latency_us: u64,
}

/// Absolute percentage error between a predicted and an actual runtime
/// vector, averaged over the four vCPU points and fixed-pointed to
/// micros (1_000_000 = 100%). All downstream drift statistics stay in
/// this integer domain, so accumulation order can never introduce
/// floating-point divergence.
#[must_use]
pub fn ape_micros(predicted: &[f64; 4], actual: &[f64; 4]) -> u64 {
    let mut sum = 0.0;
    for j in 0..4 {
        debug_assert!(actual[j] > 0.0, "ground truth must be positive");
        sum += (predicted[j] - actual[j]).abs() / actual[j];
    }
    (sum / 4.0 * 1_000_000.0).round() as u64
}

/// Signed log-space prediction bias, averaged over the four vCPU
/// points and fixed-pointed to micros: positive means the model
/// under-predicts. This is the drift detector's observable — a
/// multiplicative runtime shift by factor `f` moves it by exactly
/// `ln(f)` for *every* design and stage, so drift separates cleanly
/// from the per-design residual noise that dominates percentage error
/// on a partially-fit model.
#[must_use]
pub fn log_bias_micros(predicted: &[f64; 4], actual: &[f64; 4]) -> i64 {
    let mut sum = 0.0;
    for j in 0..4 {
        debug_assert!(actual[j] > 0.0 && predicted[j] > 0.0, "runtimes must be positive");
        sum += actual[j].ln() - predicted[j].ln();
    }
    (sum / 4.0 * 1_000_000.0).round() as i64
}

/// Bounded FIFO buffer of relabeled training samples for one stage.
/// When full, the oldest sample falls out — the buffer always holds
/// the freshest window of the observed distribution. Samples can be
/// keyed by design fingerprint: a keyed push *replaces* an earlier
/// sample with the same key, so the buffer holds at most one (the
/// freshest) sample per design — fine-tuning on a lopsided,
/// duplicate-heavy window distorts the model on under-represented
/// designs, so replay coverage matters more than replay volume.
#[derive(Debug, Clone, Default)]
pub struct ReplayBuffer {
    capacity: usize,
    samples: VecDeque<(Option<u64>, GraphSample)>,
    pushed: u64,
}

impl ReplayBuffer {
    /// An empty buffer holding at most `capacity` samples.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, samples: VecDeque::with_capacity(capacity), pushed: 0 }
    }

    /// Append an unkeyed sample, evicting the oldest if the buffer is
    /// full.
    pub fn push(&mut self, sample: GraphSample) {
        self.insert(None, sample);
    }

    /// Append a sample keyed by design fingerprint, replacing any
    /// earlier sample with the same key (the replacement moves to the
    /// freshest slot). Evicts the oldest entry if the buffer is full.
    pub fn push_keyed(&mut self, key: u64, sample: GraphSample) {
        self.samples.retain(|(k, _)| *k != Some(key));
        self.insert(Some(key), sample);
    }

    fn insert(&mut self, key: Option<u64>, sample: GraphSample) {
        if self.capacity == 0 {
            return;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back((key, sample));
        self.pushed += 1;
    }

    /// Whether a keyed sample for this design is currently held.
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.samples.iter().any(|(k, _)| *k == Some(key))
    }

    /// Samples currently held, oldest first.
    #[must_use]
    pub fn samples(&self) -> Vec<&GraphSample> {
        self.samples.iter().map(|(_, s)| s).collect()
    }

    /// Samples in canonical order: unkeyed entries first (oldest
    /// first), then keyed entries by ascending key. Fine-tuning is
    /// order-sensitive (the epoch shuffle maps positions, not
    /// contents), so training from the canonical order makes the
    /// retrained model a function of the sample *set* rather than of
    /// the arrival order traffic happened to produce.
    #[must_use]
    pub fn samples_canonical(&self) -> Vec<&GraphSample> {
        let mut entries: Vec<&(Option<u64>, GraphSample)> = self.samples.iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        entries.iter().map(|(_, s)| s).collect()
    }

    /// Number of samples currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop every sample (capacity unchanged).
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_serve::design_pool;

    #[test]
    fn ape_micros_is_exact_on_round_numbers() {
        assert_eq!(ape_micros(&[1.0; 4], &[1.0; 4]), 0);
        assert_eq!(ape_micros(&[2.0; 4], &[1.0; 4]), 1_000_000);
        assert_eq!(ape_micros(&[1.5, 1.0, 1.0, 1.0], &[1.0; 4]), 125_000);
        // Symmetric under sign of the error.
        assert_eq!(ape_micros(&[0.5; 4], &[1.0; 4]), 500_000);
    }

    #[test]
    fn log_bias_reflects_multiplicative_shifts_exactly() {
        assert_eq!(log_bias_micros(&[1.0; 4], &[1.0; 4]), 0);
        // A uniform 2.2x runtime shift moves the bias by ln(2.2) for
        // any prediction vector.
        let p = [3.0, 2.0, 1.5, 1.2];
        let a = [4.0, 2.5, 1.4, 1.1];
        let shifted = a.map(|v| v * 2.2);
        let jump = log_bias_micros(&p, &shifted) - log_bias_micros(&p, &a);
        let expected = (2.2f64.ln() * 1e6).round() as i64;
        assert!((jump - expected).abs() <= 1, "jump {jump} vs ln(2.2) {expected}");
        // Over-prediction is negative.
        assert!(log_bias_micros(&[10.0; 4], &[1.0; 4]) < 0);
    }

    #[test]
    fn buffer_evicts_oldest_when_full() {
        let pool = design_pool();
        let mut buffer = ReplayBuffer::new(3);
        for (i, design) in pool.iter().take(5).enumerate() {
            buffer.push(design.netlist.with_targets([(i + 1) as f64; 4]));
        }
        assert_eq!(buffer.len(), 3);
        assert_eq!(buffer.total_pushed(), 5);
        let held: Vec<f64> = buffer.samples().iter().map(|s| s.targets_secs[0]).collect();
        assert_eq!(held, vec![3.0, 4.0, 5.0], "oldest two evicted");
        buffer.clear();
        assert!(buffer.is_empty());
        assert_eq!(buffer.total_pushed(), 5, "clear keeps the lifetime count");
    }

    #[test]
    fn keyed_pushes_replace_stale_samples_per_design() {
        let pool = design_pool();
        let mut buffer = ReplayBuffer::new(4);
        buffer.push_keyed(pool[0].fingerprint, pool[0].netlist.with_targets([1.0; 4]));
        buffer.push_keyed(pool[1].fingerprint, pool[1].netlist.with_targets([2.0; 4]));
        // Fresher truth for design 0 replaces the stale sample and
        // moves it to the freshest slot.
        buffer.push_keyed(pool[0].fingerprint, pool[0].netlist.with_targets([3.0; 4]));
        assert_eq!(buffer.len(), 2, "one sample per design");
        assert!(buffer.contains_key(pool[0].fingerprint));
        assert!(!buffer.contains_key(pool[2].fingerprint));
        let held: Vec<f64> = buffer.samples().iter().map(|s| s.targets_secs[0]).collect();
        assert_eq!(held, vec![2.0, 3.0], "replacement is freshest");
    }

    #[test]
    fn zero_capacity_buffer_stays_empty() {
        let pool = design_pool();
        let mut buffer = ReplayBuffer::new(0);
        buffer.push(pool[0].netlist.clone());
        assert!(buffer.is_empty());
    }
}
