//! Typed lifecycle errors.

use eda_cloud_serve::ServeError;
use std::error::Error;
use std::fmt;

/// Everything that can go wrong running the lifecycle controller.
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleError {
    /// A configuration knob is out of range.
    Config {
        /// What is wrong with the configuration.
        message: String,
    },
    /// The serving layer (registry, snapshots) rejected an operation.
    Serve(ServeError),
}

impl fmt::Display for LifecycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config { message } => write!(f, "invalid lifecycle config: {message}"),
            Self::Serve(e) => write!(f, "serving layer error: {e}"),
        }
    }
}

impl Error for LifecycleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Serve(e) => Some(e),
            Self::Config { .. } => None,
        }
    }
}

impl From<ServeError> for LifecycleError {
    fn from(e: ServeError) -> Self {
        Self::Serve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let c = LifecycleError::Config { message: "requests must be positive".into() };
        assert!(c.to_string().contains("requests"));
        assert!(c.source().is_none());
        let s = LifecycleError::from(ServeError::UnknownModel { name: "prod".into() });
        assert!(s.to_string().contains("prod"));
        assert!(s.source().is_some());
    }
}
