//! The standard-cell library container.

use crate::cell::{CellKind, CellType, PinDirection, PinSpec};
use crate::error::TechError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A collection of standard-cell masters addressable by name or function.
///
/// # Examples
///
/// ```
/// use eda_cloud_tech::{Library, CellKind};
///
/// let lib = Library::synthetic_14nm();
/// assert!(lib.len() > 10);
/// let inv = lib.cell_by_kind(CellKind::Inv).expect("has inverter");
/// assert_eq!(inv.kind, CellKind::Inv);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    /// Human-readable library name.
    name: String,
    cells: Vec<CellType>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
    #[serde(skip)]
    by_kind: HashMap<CellKind, Vec<usize>>,
}

impl Library {
    /// Create an empty library with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            cells: Vec::new(),
            by_name: HashMap::new(),
            by_kind: HashMap::new(),
        }
    }

    /// The synthetic 14nm-class library used throughout the reproduction.
    ///
    /// It substitutes for the GF 14nm PDK of the paper; values are in the
    /// range of published 14/16nm FinFET libraries. Each combinational
    /// function is offered at drive strengths X1 and X2.
    #[must_use]
    pub fn synthetic_14nm() -> Self {
        let mut lib = Self::new("synth14");
        let base: &[(CellKind, f64, f64, f64, f64, f64)] = &[
            // kind, area um^2, intrinsic ps, R kohm, input cap fF, leakage nW
            (CellKind::Inv, 0.196, 6.0, 2.2, 0.85, 1.2),
            (CellKind::Buf, 0.294, 11.0, 2.0, 0.90, 1.6),
            (CellKind::Nand2, 0.294, 8.5, 2.6, 1.00, 1.9),
            (CellKind::Nand3, 0.392, 11.5, 3.0, 1.05, 2.6),
            (CellKind::Nor2, 0.294, 9.5, 3.1, 1.00, 1.9),
            (CellKind::And2, 0.392, 13.0, 2.4, 0.95, 2.2),
            (CellKind::Or2, 0.392, 14.0, 2.5, 0.95, 2.2),
            (CellKind::Xor2, 0.588, 18.0, 2.9, 1.40, 3.5),
            (CellKind::Xnor2, 0.588, 18.5, 2.9, 1.40, 3.5),
            (CellKind::Aoi21, 0.392, 12.0, 3.2, 1.10, 2.4),
            (CellKind::Oai21, 0.392, 12.5, 3.2, 1.10, 2.4),
            (CellKind::Mux2, 0.588, 16.0, 2.7, 1.20, 3.0),
            (CellKind::Maj3, 0.686, 19.0, 3.0, 1.30, 3.8),
            (CellKind::Dff, 1.176, 42.0, 2.8, 1.10, 6.5),
            (CellKind::Tie0, 0.098, 0.0, 0.0, 0.0, 0.3),
            (CellKind::Tie1, 0.098, 0.0, 0.0, 0.0, 0.3),
        ];
        for &(kind, area, intrinsic, res, cap, leak) in base {
            lib.push(Self::make_cell(kind, 1, area, intrinsic, res, cap, leak));
            if !matches!(kind, CellKind::Tie0 | CellKind::Tie1) {
                // X2: double area & leakage, halve resistance, +20% cap.
                lib.push(Self::make_cell(
                    kind,
                    2,
                    area * 1.8,
                    intrinsic * 0.95,
                    res * 0.55,
                    cap * 1.2,
                    leak * 2.0,
                ));
            }
        }
        lib
    }

    fn make_cell(
        kind: CellKind,
        drive: u8,
        area_um2: f64,
        intrinsic_delay_ps: f64,
        drive_resistance_kohm: f64,
        input_cap_ff: f64,
        leakage_nw: f64,
    ) -> CellType {
        let mut pins = Vec::new();
        if kind == CellKind::Dff {
            pins.push(PinSpec {
                name: "D".to_owned(),
                direction: PinDirection::Input,
                cap_ff: input_cap_ff,
            });
            pins.push(PinSpec {
                name: "CK".to_owned(),
                direction: PinDirection::Input,
                cap_ff: input_cap_ff * 0.8,
            });
            pins.push(PinSpec {
                name: "Q".to_owned(),
                direction: PinDirection::Output,
                cap_ff: 0.0,
            });
        } else {
            const NAMES: [&str; 3] = ["A", "B", "C"];
            for name in NAMES.iter().take(kind.input_count()) {
                pins.push(PinSpec {
                    name: (*name).to_owned(),
                    direction: PinDirection::Input,
                    cap_ff: input_cap_ff,
                });
            }
            pins.push(PinSpec {
                name: "Y".to_owned(),
                direction: PinDirection::Output,
                cap_ff: 0.0,
            });
        }
        CellType {
            name: format!("{kind}_X{drive}"),
            kind,
            drive,
            area_um2,
            intrinsic_delay_ps,
            drive_resistance_kohm,
            input_cap_ff,
            leakage_nw,
            pins,
        }
    }

    /// Add a cell master.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name is already present.
    pub fn push(&mut self, cell: CellType) {
        assert!(
            !self.by_name.contains_key(&cell.name),
            "duplicate cell name `{}`",
            cell.name
        );
        let idx = self.cells.len();
        self.by_name.insert(cell.name.clone(), idx);
        self.by_kind.entry(cell.kind).or_default().push(idx);
        self.cells.push(cell);
    }

    /// Library name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of cell masters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library holds no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate over all cell masters.
    pub fn cells(&self) -> impl Iterator<Item = &CellType> {
        self.cells.iter()
    }

    /// Look up a cell by exact name.
    ///
    /// # Errors
    ///
    /// Returns [`TechError::UnknownCell`] if no such cell exists.
    pub fn cell(&self, name: &str) -> Result<&CellType, TechError> {
        self.by_name
            .get(name)
            .map(|&i| &self.cells[i])
            .ok_or_else(|| TechError::UnknownCell(name.to_owned()))
    }

    /// The lowest-drive cell implementing `kind`, if any.
    #[must_use]
    pub fn cell_by_kind(&self, kind: CellKind) -> Option<&CellType> {
        self.by_kind
            .get(&kind)
            .and_then(|v| v.iter().map(|&i| &self.cells[i]).min_by_key(|c| c.drive))
    }

    /// All drive variants implementing `kind`, weakest first.
    #[must_use]
    pub fn variants(&self, kind: CellKind) -> Vec<&CellType> {
        let mut v: Vec<&CellType> = self
            .by_kind
            .get(&kind)
            .map(|v| v.iter().map(|&i| &self.cells[i]).collect())
            .unwrap_or_default();
        v.sort_by_key(|c| c.drive);
        v
    }

    /// Rebuild the name/kind indices (needed after deserialization).
    pub fn reindex(&mut self) {
        self.by_name.clear();
        self.by_kind.clear();
        for (i, c) in self.cells.iter().enumerate() {
            self.by_name.insert(c.name.clone(), i);
            self.by_kind.entry(c.kind).or_default().push(i);
        }
    }
}

impl Default for Library {
    fn default() -> Self {
        Self::synthetic_14nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_library_covers_all_kinds() {
        let lib = Library::synthetic_14nm();
        for kind in CellKind::ALL {
            assert!(lib.cell_by_kind(kind).is_some(), "missing {kind}");
        }
    }

    #[test]
    fn lookup_by_name() {
        let lib = Library::synthetic_14nm();
        let c = lib.cell("NAND2_X1").expect("exists");
        assert_eq!(c.kind, CellKind::Nand2);
        assert!(lib.cell("NAND2_X9").is_err());
    }

    #[test]
    fn variants_sorted_by_drive() {
        let lib = Library::synthetic_14nm();
        let v = lib.variants(CellKind::Inv);
        assert_eq!(v.len(), 2);
        assert!(v[0].drive < v[1].drive);
        // Stronger drive: lower resistance, bigger area.
        assert!(v[1].drive_resistance_kohm < v[0].drive_resistance_kohm);
        assert!(v[1].area_um2 > v[0].area_um2);
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_name_panics() {
        let mut lib = Library::synthetic_14nm();
        let cell = lib.cell("INV_X1").expect("exists").clone();
        lib.push(cell);
    }

    #[test]
    fn pin_structure() {
        let lib = Library::synthetic_14nm();
        let dff = lib.cell_by_kind(CellKind::Dff).expect("dff");
        assert_eq!(dff.output_pin().name, "Q");
        assert_eq!(dff.input_pins().count(), 2); // D + CK
        let mux = lib.cell_by_kind(CellKind::Mux2).expect("mux");
        assert_eq!(mux.input_pins().count(), 3);
        assert_eq!(mux.output_pin().name, "Y");
    }

    #[test]
    fn reindex_after_manual_clear() {
        let mut lib = Library::synthetic_14nm();
        lib.reindex();
        assert!(lib.cell("INV_X1").is_ok());
    }

    #[test]
    fn default_is_synthetic() {
        assert_eq!(Library::default().name(), "synth14");
    }
}
