//! Standard-cell descriptions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The logical function class of a standard cell.
///
/// The set covers what the simple cut-based technology mapper in
/// `eda-cloud-flow` can target plus sequential and I/O helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 3-input NAND.
    Nand3,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// And-Or-Invert 2-1 (`!(a&b | c)`).
    Aoi21,
    /// Or-And-Invert 2-1 (`!((a|b) & c)`).
    Oai21,
    /// 2:1 multiplexer.
    Mux2,
    /// Majority-of-3 (full-adder carry).
    Maj3,
    /// Positive-edge D flip-flop.
    Dff,
    /// Constant-0 tie cell.
    Tie0,
    /// Constant-1 tie cell.
    Tie1,
}

impl CellKind {
    /// All kinds in a stable order.
    pub const ALL: [CellKind; 16] = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Aoi21,
        CellKind::Oai21,
        CellKind::Mux2,
        CellKind::Maj3,
        CellKind::Dff,
        CellKind::Tie0,
        CellKind::Tie1,
    ];

    /// Number of data inputs this kind consumes.
    #[must_use]
    pub fn input_count(self) -> usize {
        match self {
            CellKind::Tie0 | CellKind::Tie1 => 0,
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2 => 2,
            CellKind::Nand3 | CellKind::Aoi21 | CellKind::Oai21 | CellKind::Mux2 | CellKind::Maj3 => 3,
        }
    }

    /// Whether the cell is sequential (stateful).
    #[must_use]
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff)
    }

    /// Evaluate the cell's boolean function over its inputs.
    ///
    /// For [`CellKind::Dff`] this returns the input (combinational view of
    /// the data pin, used by structural checks, not simulation).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.input_count()`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(
            inputs.len(),
            self.input_count(),
            "cell {self} expects {} inputs, got {}",
            self.input_count(),
            inputs.len()
        );
        match self {
            CellKind::Tie0 => false,
            CellKind::Tie1 => true,
            CellKind::Inv => !inputs[0],
            CellKind::Buf | CellKind::Dff => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nand3 => !(inputs[0] & inputs[1] & inputs[2]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            CellKind::Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Maj3 => {
                (inputs[0] & inputs[1]) | (inputs[1] & inputs[2]) | (inputs[0] & inputs[2])
            }
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Buf => "BUF",
            CellKind::Nand2 => "NAND2",
            CellKind::Nand3 => "NAND3",
            CellKind::Nor2 => "NOR2",
            CellKind::And2 => "AND2",
            CellKind::Or2 => "OR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Xnor2 => "XNOR2",
            CellKind::Aoi21 => "AOI21",
            CellKind::Oai21 => "OAI21",
            CellKind::Mux2 => "MUX2",
            CellKind::Maj3 => "MAJ3",
            CellKind::Dff => "DFF",
            CellKind::Tie0 => "TIE0",
            CellKind::Tie1 => "TIE1",
        };
        f.write_str(s)
    }
}

/// Direction of a cell pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PinDirection {
    /// Signal flows into the cell.
    Input,
    /// Signal flows out of the cell.
    Output,
}

/// A pin on a standard-cell master.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PinSpec {
    /// Pin name (e.g. `"A"`, `"Y"`).
    pub name: String,
    /// Signal direction.
    pub direction: PinDirection,
    /// Input capacitance in femtofarads (0 for outputs).
    pub cap_ff: f64,
}

/// A standard-cell master: function, geometry, and timing parameters.
///
/// Timing uses a linear delay model, see [`CellType::delay_ps`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellType {
    /// Library cell name, e.g. `"NAND2_X1"`.
    pub name: String,
    /// Logical function class.
    pub kind: CellKind,
    /// Relative drive strength (1, 2, 4, ...).
    pub drive: u8,
    /// Cell area in square micrometres.
    pub area_um2: f64,
    /// Intrinsic (unloaded) delay in picoseconds.
    pub intrinsic_delay_ps: f64,
    /// Output drive resistance in kΩ; load-dependent delay is
    /// `drive_resistance_kohm * load_ff` ps per fF·kΩ.
    pub drive_resistance_kohm: f64,
    /// Capacitance of each input pin in femtofarads.
    pub input_cap_ff: f64,
    /// Leakage power in nanowatts.
    pub leakage_nw: f64,
    /// Pin list (inputs `A`, `B`, ... then output `Y`; `D`/`Q`/`CK` for DFF).
    pub pins: Vec<PinSpec>,
}

impl CellType {
    /// Total delay in picoseconds when driving `load_ff` femtofarads.
    #[must_use]
    pub fn delay_ps(&self, load_ff: f64) -> f64 {
        self.intrinsic_delay_ps + self.drive_resistance_kohm * load_ff
    }

    /// Names of input pins in declaration order.
    pub fn input_pins(&self) -> impl Iterator<Item = &PinSpec> {
        self.pins
            .iter()
            .filter(|p| p.direction == PinDirection::Input)
    }

    /// The single output pin.
    ///
    /// # Panics
    ///
    /// Panics if the cell has no output pin (library construction
    /// guarantees one).
    #[must_use]
    pub fn output_pin(&self) -> &PinSpec {
        self.pins
            .iter()
            .find(|p| p.direction == PinDirection::Output)
            .expect("every cell master has an output pin")
    }
}

impl fmt::Display for CellType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} x{})", self.name, self.kind, self.drive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_counts_match_eval_arity() {
        for kind in CellKind::ALL {
            let n = kind.input_count();
            let inputs = vec![false; n];
            // Must not panic.
            let _ = kind.eval(&inputs);
        }
    }

    #[test]
    fn eval_truth_tables() {
        assert!(CellKind::Nand2.eval(&[false, true]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xor2.eval(&[true, true]));
        assert!(CellKind::Maj3.eval(&[true, true, false]));
        assert!(!CellKind::Maj3.eval(&[true, false, false]));
        assert!(CellKind::Mux2.eval(&[false, true, true]));
        assert!(!CellKind::Mux2.eval(&[false, true, false]));
        assert!(!CellKind::Aoi21.eval(&[true, true, false]));
        assert!(CellKind::Aoi21.eval(&[true, false, false]));
        assert!(!CellKind::Oai21.eval(&[true, false, true]));
        assert!(CellKind::Tie1.eval(&[]));
        assert!(!CellKind::Tie0.eval(&[]));
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn eval_wrong_arity_panics() {
        let _ = CellKind::Nand2.eval(&[true]);
    }

    #[test]
    fn sequential_flag() {
        assert!(CellKind::Dff.is_sequential());
        assert!(!CellKind::Nand2.is_sequential());
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(CellKind::Nand2.to_string(), "NAND2");
        assert_eq!(CellKind::Aoi21.to_string(), "AOI21");
    }
}
