//! Synthetic standard-cell technology library.
//!
//! The DATE 2021 paper characterizes a commercial EDA flow on a GF 14nm
//! technology node. That PDK is proprietary, so this crate provides a
//! self-contained substitute: a small standard-cell library with areas,
//! pin capacitances, leakage, and a linear delay model
//! (`delay = intrinsic + drive_resistance * load_capacitance`).
//!
//! Absolute values are loosely modeled on published 14/16nm-class
//! FinFET libraries; only *relative* behaviour matters for the paper's
//! experiments (runtime characterization and prediction), which this
//! library preserves.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_tech::{Library, CellKind};
//!
//! let lib = Library::synthetic_14nm();
//! let nand = lib.cell_by_kind(CellKind::Nand2).expect("NAND2 exists");
//! assert!(nand.area_um2 > 0.0);
//! let delay = nand.delay_ps(2.0 * nand.input_cap_ff);
//! assert!(delay > nand.intrinsic_delay_ps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod delay;
mod error;
mod library;

pub use cell::{CellKind, CellType, PinDirection, PinSpec};
pub use delay::{DelayModel, LinearDelay};
pub use error::TechError;
pub use library::Library;
