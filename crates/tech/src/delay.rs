//! Delay models.

use crate::CellType;
use serde::{Deserialize, Serialize};

/// A gate delay model: maps a cell master and its output load to a delay.
///
/// The trait exists so STA can be tested against alternative models
/// (e.g. a constant-delay model in unit tests) without changing the
/// timing-graph code.
pub trait DelayModel {
    /// Delay in picoseconds through `cell` when driving `load_ff`.
    fn gate_delay_ps(&self, cell: &CellType, load_ff: f64) -> f64;

    /// Interconnect delay in picoseconds for a net of `fanout` sinks and
    /// estimated `wirelength_um` micrometres.
    fn wire_delay_ps(&self, fanout: usize, wirelength_um: f64) -> f64;
}

/// The default linear (lumped-RC-like) delay model.
///
/// Gate delay is `intrinsic + R_drive * C_load`. Wire delay uses a simple
/// per-micron RC estimate scaled by fanout, which is adequate for the
/// runtime-characterization experiments where only relative magnitudes
/// matter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearDelay {
    /// Wire resistance per micron in Ω/µm.
    pub wire_res_ohm_per_um: f64,
    /// Wire capacitance per micron in fF/µm.
    pub wire_cap_ff_per_um: f64,
}

impl LinearDelay {
    /// Model with 14nm-class metal parasitics.
    #[must_use]
    pub fn new() -> Self {
        Self {
            wire_res_ohm_per_um: 2.2,
            wire_cap_ff_per_um: 0.18,
        }
    }

    /// Capacitance contributed by a wire of the given length.
    #[must_use]
    pub fn wire_cap_ff(&self, wirelength_um: f64) -> f64 {
        self.wire_cap_ff_per_um * wirelength_um
    }
}

impl Default for LinearDelay {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayModel for LinearDelay {
    fn gate_delay_ps(&self, cell: &CellType, load_ff: f64) -> f64 {
        cell.delay_ps(load_ff)
    }

    fn wire_delay_ps(&self, fanout: usize, wirelength_um: f64) -> f64 {
        // 0.5 * R * C Elmore-style estimate, in (Ω * fF) = 1e-3 ps units.
        let r = self.wire_res_ohm_per_um * wirelength_um;
        let c = self.wire_cap_ff_per_um * wirelength_um;
        0.5 * r * c * 1e-3 * (1.0 + 0.1 * fanout as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    #[test]
    fn gate_delay_monotone_in_load() {
        let lib = Library::synthetic_14nm();
        let model = LinearDelay::new();
        for cell in lib.cells().filter(|c| c.drive_resistance_kohm > 0.0) {
            let d1 = model.gate_delay_ps(cell, 1.0);
            let d2 = model.gate_delay_ps(cell, 10.0);
            assert!(d2 > d1, "{}: delay must grow with load", cell.name);
        }
    }

    #[test]
    fn wire_delay_grows_with_length_and_fanout() {
        let model = LinearDelay::new();
        assert!(model.wire_delay_ps(1, 100.0) > model.wire_delay_ps(1, 10.0));
        assert!(model.wire_delay_ps(8, 100.0) > model.wire_delay_ps(1, 100.0));
        assert_eq!(model.wire_delay_ps(1, 0.0), 0.0);
    }
}
