//! Error types for the technology library.

use std::error::Error;
use std::fmt;

/// Errors raised when querying a [`crate::Library`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// No cell with the requested name exists in the library.
    UnknownCell(String),
    /// No cell implementing the requested function class exists.
    UnknownKind(String),
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownCell(name) => write!(f, "unknown cell `{name}` in library"),
            TechError::UnknownKind(kind) => {
                write!(f, "no cell implementing function `{kind}` in library")
            }
        }
    }
}

impl Error for TechError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TechError::UnknownCell("X".into()).to_string(),
            "unknown cell `X` in library"
        );
        assert!(TechError::UnknownKind("NAND9".into())
            .to_string()
            .contains("NAND9"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TechError>();
    }
}
