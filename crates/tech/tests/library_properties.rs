//! Property-based tests over the technology library.

use eda_cloud_tech::{CellKind, DelayModel, Library, LinearDelay};
use proptest::prelude::*;

proptest! {
    /// Delay is monotone in load for every driving cell.
    #[test]
    fn delay_monotone_in_load(load_a in 0.0f64..50.0, load_b in 0.0f64..50.0) {
        let lib = Library::synthetic_14nm();
        let model = LinearDelay::new();
        let (lo, hi) = if load_a <= load_b { (load_a, load_b) } else { (load_b, load_a) };
        for cell in lib.cells().filter(|c| c.drive_resistance_kohm > 0.0) {
            prop_assert!(model.gate_delay_ps(cell, lo) <= model.gate_delay_ps(cell, hi));
        }
    }

    /// Stronger drives are never slower at the same load, for every
    /// function class that offers multiple drives.
    #[test]
    fn stronger_drive_not_slower(load in 5.0f64..80.0) {
        let lib = Library::synthetic_14nm();
        for kind in CellKind::ALL {
            let variants = lib.variants(kind);
            for pair in variants.windows(2) {
                prop_assert!(
                    pair[1].delay_ps(load) <= pair[0].delay_ps(load) + 1e-9,
                    "{kind} at load {load}"
                );
            }
        }
    }

    /// Cell evaluation is total for all input combinations at each arity.
    #[test]
    fn eval_is_total(bits in 0u8..8) {
        for kind in CellKind::ALL {
            let n = kind.input_count();
            let inputs: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            let _ = kind.eval(&inputs);
        }
    }
}

#[test]
fn every_combinational_kind_has_exactly_one_output() {
    let lib = Library::synthetic_14nm();
    for cell in lib.cells() {
        assert_eq!(
            cell.pins.iter().filter(|p| p.name == cell.output_pin().name).count(),
            1,
            "{}",
            cell.name
        );
        assert_eq!(cell.input_pins().count(), cell.kind.input_count().max(
            // DFF has D + CK even though eval arity is 1.
            if cell.kind == CellKind::Dff { 2 } else { 0 }
        ));
    }
}
