//! Hierarchical spans on a logical clock, with canonical merge.
//!
//! A span's identity is its **ordinal key**: the root ordinal followed
//! by one child ordinal per nesting level. Instrumented code assigns
//! root ordinals from canonical data (a sweep's job index, a fleet
//! job's id), and child ordinals are allocated in creation order under
//! the parent — which is serial per parent, because a span describes
//! one logical unit of work executing on one thread at a time. The key
//! is therefore a pure function of the work, never of scheduling, and
//! sorting the completed span records by `(key, path)` yields the same
//! byte sequence at any worker count.

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One completed span, as merged into a [`Trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Logical-clock key: root ordinal, then one child ordinal per
    /// nesting level. `key.len()` is the span's depth + 1.
    pub key: Vec<u64>,
    /// Slash-joined label path, e.g. `"job/0003/routing/iter/2"`.
    pub path: String,
    /// Key/value attributes in insertion order.
    pub attrs: Vec<(String, String)>,
    /// Named counters (accumulated over the span's lifetime), sorted by
    /// name.
    pub counters: BTreeMap<String, u64>,
}

struct TracerCore {
    records: Mutex<Vec<SpanRecord>>,
    /// Next root ordinal for [`Tracer::root`]; advanced past any
    /// explicit [`Tracer::root_at`] ordinal so the two allocation modes
    /// never collide.
    roots: AtomicU64,
}

/// Handle to a trace in progress. Cheap to clone (one `Arc`); a
/// disabled tracer makes every span operation a single branch.
#[derive(Clone)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl Tracer {
    /// An enabled tracer with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            core: Some(Arc::new(TracerCore {
                records: Mutex::new(Vec::new()),
                roots: AtomicU64::new(0),
            })),
        }
    }

    /// A tracer that records nothing; all spans derived from it are
    /// no-ops.
    #[must_use]
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Whether spans created from this tracer record anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Open a root span with the next sequential ordinal. Deterministic
    /// when roots are opened from a single thread (e.g. the fleet
    /// simulator's event loop).
    #[must_use]
    pub fn root(&self, label: &str) -> Span {
        let Some(core) = &self.core else { return Span { core: None } };
        let ordinal = core.roots.fetch_add(1, Ordering::Relaxed);
        Span::open(core.clone(), vec![ordinal], label.to_owned())
    }

    /// Open a root span at an explicit ordinal — the canonical choice
    /// for parallel fan-outs, where the job index (not the scheduling
    /// order) must determine span identity. Sequential ordinals handed
    /// out by [`Tracer::root`] afterwards continue past the maximum
    /// explicit ordinal seen, so the two modes never collide.
    #[must_use]
    pub fn root_at(&self, ordinal: u64, label: &str) -> Span {
        let Some(core) = &self.core else { return Span { core: None } };
        core.roots.fetch_max(ordinal.saturating_add(1), Ordering::Relaxed);
        Span::open(core.clone(), vec![ordinal], label.to_owned())
    }

    /// Adopt every record of an already-drained trace under a new
    /// root: `ordinal` is prepended to each record's key and `prefix`
    /// to each path. Lets a harness that runs phases on private
    /// tracers fold their spans into a caller's tracer without key
    /// collisions between phases; the adopted records keep their
    /// relative canonical order, and a later [`Tracer::drain`] re-sorts
    /// globally. No-op on a disabled tracer.
    pub fn adopt(&self, ordinal: u64, prefix: &str, trace: Trace) {
        let Some(core) = &self.core else { return };
        let mut buf = core.records.lock().expect("trace buffer");
        for mut r in trace.records {
            r.key.insert(0, ordinal);
            r.path = format!("{prefix}/{}", r.path);
            buf.push(r);
        }
    }

    /// Take every completed span recorded so far and merge it in
    /// canonical `(key, path)` order. Call after the instrumented work
    /// has finished (open spans record on drop).
    #[must_use]
    pub fn drain(&self) -> Trace {
        let mut records = match &self.core {
            Some(core) => std::mem::take(&mut *core.records.lock().expect("trace buffer")),
            None => Vec::new(),
        };
        records.sort_by(|a, b| a.key.cmp(&b.key).then_with(|| a.path.cmp(&b.path)));
        Trace { records }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

struct SpanCore {
    tracer: Arc<TracerCore>,
    key: Vec<u64>,
    path: String,
    children: AtomicU64,
    data: Mutex<SpanData>,
}

#[derive(Default)]
struct SpanData {
    attrs: Vec<(String, String)>,
    counters: BTreeMap<String, u64>,
}

impl Drop for SpanCore {
    fn drop(&mut self) {
        let data = std::mem::take(self.data.get_mut().expect("span data"));
        let record = SpanRecord {
            key: std::mem::take(&mut self.key),
            path: std::mem::take(&mut self.path),
            attrs: data.attrs,
            counters: data.counters,
        };
        self.tracer.records.lock().expect("trace buffer").push(record);
    }
}

/// A span in progress. Clones share the same record; the record is
/// pushed to the tracer when the last clone drops.
#[derive(Clone)]
pub struct Span {
    core: Option<Arc<SpanCore>>,
}

impl Span {
    /// A span that records nothing (the default for execution contexts
    /// without tracing).
    #[must_use]
    pub fn disabled() -> Self {
        Self { core: None }
    }

    /// Whether this span records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    fn open(tracer: Arc<TracerCore>, key: Vec<u64>, path: String) -> Self {
        Self {
            core: Some(Arc::new(SpanCore {
                tracer,
                key,
                path,
                children: AtomicU64::new(0),
                data: Mutex::new(SpanData::default()),
            })),
        }
    }

    /// Open a child span. The child's ordinal is the number of children
    /// opened under this span so far — deterministic, because one span
    /// describes one serial unit of work.
    #[must_use]
    pub fn child(&self, label: &str) -> Span {
        let Some(core) = &self.core else { return Span { core: None } };
        let ordinal = core.children.fetch_add(1, Ordering::Relaxed);
        let mut key = core.key.clone();
        key.push(ordinal);
        Span::open(core.tracer.clone(), key, format!("{}/{label}", core.path))
    }

    /// Add `delta` to a named counter on this span.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(core) = &self.core {
            let mut data = core.data.lock().expect("span data");
            *data.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Record a key/value attribute on this span (insertion order is
    /// preserved in the export).
    pub fn attr(&self, name: &str, value: impl fmt::Display) {
        if let Some(core) = &self.core {
            let mut data = core.data.lock().expect("span data");
            data.attrs.push((name.to_owned(), value.to_string()));
        }
    }
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.core {
            Some(core) => f.debug_struct("Span").field("path", &core.path).finish(),
            None => f.debug_struct("Span").field("path", &"<disabled>").finish(),
        }
    }
}

/// A drained trace: completed span records in canonical order, plus the
/// exporters.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    records: Vec<SpanRecord>,
}

impl Trace {
    /// The span records in canonical `(key, path)` order.
    #[must_use]
    pub fn records(&self) -> &[SpanRecord] {
        &self.records
    }

    /// Number of spans in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Compact byte-stable JSON: one object per span in canonical
    /// order, keys in fixed order, counters sorted by name.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"version\":1,\"spans\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let key: Vec<String> = r.key.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{{\"key\":[{}],\"path\":\"{}\"",
                key.join(","),
                escape(&r.path)
            );
            if !r.attrs.is_empty() {
                out.push_str(",\"attrs\":{");
                for (j, (k, v)) in r.attrs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", escape(k), escape(v));
                }
                out.push('}');
            }
            if !r.counters.is_empty() {
                out.push_str(",\"counters\":{");
                for (j, (k, v)) in r.counters.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":{}", escape(k), v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Chrome-trace (`chrome://tracing`, Perfetto, speedscope) export.
    ///
    /// The trace has no wall-clock data by design, so timestamps are
    /// synthetic: spans are laid out in canonical preorder, each span
    /// occupying one time unit plus the units of its subtree. The
    /// *shape* — which phases exist, how deep, how many iterations — is
    /// exactly the flamegraph one would read from a timed profile; the
    /// widths count spans, not seconds. Each root ordinal gets its own
    /// thread lane.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        // Preorder == canonical order (keys sort by prefix), so a
        // span's subtree is the contiguous run of records whose key
        // extends its own.
        const UNIT_US: usize = 1000;
        let n = self.records.len();
        let mut subtree = vec![1usize; n];
        let mut stack: Vec<usize> = Vec::new();
        for i in 0..n {
            while let Some(&top) = stack.last() {
                let tk = &self.records[top].key;
                let ck = &self.records[i].key;
                if ck.len() > tk.len() && ck[..tk.len()] == tk[..] {
                    break;
                }
                stack.pop();
            }
            for &ancestor in &stack {
                subtree[ancestor] += 1;
            }
            stack.push(i);
        }

        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let name = r.path.rsplit('/').next().unwrap_or(&r.path);
            let tid = r.key.first().copied().unwrap_or(0);
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{tid},\"args\":{{\"path\":\"{}\"",
                escape(name),
                i * UNIT_US,
                subtree[i] * UNIT_US,
                escape(&r.path)
            );
            for (k, v) in &r.attrs {
                let _ = write!(out, ",\"{}\":\"{}\"", escape(k), escape(v));
            }
            for (k, v) in &r.counters {
                let _ = write!(out, ",\"{}\":{}", escape(k), v);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adopt_namespaces_keys_and_paths() {
        let phase = Tracer::new();
        {
            let root = phase.root_at(3, "job/0003");
            root.attr("fault", "vm_stall");
        }
        let parent = Tracer::new();
        {
            let own = parent.root_at(9, "own");
            drop(own);
        }
        parent.adopt(1, "fleet", phase.drain());
        let trace = parent.drain();
        let keyed: Vec<(&[u64], &str)> =
            trace.records().iter().map(|r| (r.key.as_slice(), r.path.as_str())).collect();
        assert_eq!(keyed, vec![(&[1, 3][..], "fleet/job/0003"), (&[9][..], "own")]);
        assert_eq!(trace.records()[0].attrs, vec![("fault".into(), "vm_stall".into())]);
        // Adopting into a disabled tracer records nothing and does not
        // panic.
        Tracer::disabled().adopt(0, "x", Tracer::new().drain());
    }

    #[test]
    fn span_nesting_builds_paths_and_keys() {
        let tracer = Tracer::new();
        {
            let root = tracer.root_at(2, "job/0002");
            let stage = root.child("placement");
            let it0 = stage.child("iter/0");
            let it1 = stage.child("iter/1");
            it0.counter("moves", 5);
            it1.counter("moves", 7);
            it1.counter("moves", 1);
            root.attr("deadline", 100);
        }
        let trace = tracer.drain();
        let paths: Vec<&str> = trace.records().iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "job/0002",
                "job/0002/placement",
                "job/0002/placement/iter/0",
                "job/0002/placement/iter/1"
            ]
        );
        assert_eq!(trace.records()[0].key, vec![2]);
        assert_eq!(trace.records()[3].key, vec![2, 0, 1]);
        assert_eq!(trace.records()[3].counters["moves"], 8);
        assert_eq!(trace.records()[0].attrs, vec![("deadline".to_owned(), "100".to_owned())]);
    }

    #[test]
    fn canonical_merge_is_scheduling_independent() {
        // Open roots from racing threads in arbitrary order; the drained
        // trace must come out identical to a serial build.
        let build = |threads: bool| -> String {
            let tracer = Tracer::new();
            if threads {
                std::thread::scope(|s| {
                    for i in (0..16u64).rev() {
                        let tracer = &tracer;
                        s.spawn(move || {
                            let root = tracer.root_at(i, &format!("job/{i:04}"));
                            let child = root.child("work");
                            child.counter("items", i);
                        });
                    }
                });
            } else {
                for i in 0..16u64 {
                    let root = tracer.root_at(i, &format!("job/{i:04}"));
                    let child = root.child("work");
                    child.counter("items", i);
                }
            }
            tracer.drain().to_json()
        };
        let serial = build(false);
        for _ in 0..4 {
            assert_eq!(build(true), serial);
        }
    }

    #[test]
    fn sequential_roots_continue_past_explicit_ordinals() {
        let tracer = Tracer::new();
        {
            let _a = tracer.root_at(5, "explicit");
            let _b = tracer.root("sequential");
        }
        let trace = tracer.drain();
        assert_eq!(trace.records()[0].key, vec![5]);
        assert_eq!(trace.records()[1].key, vec![6]);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let root = tracer.root("ignored");
        let child = root.child("ignored");
        child.counter("x", 1);
        child.attr("k", "v");
        assert!(!child.is_enabled());
        assert!(tracer.drain().is_empty());
        assert!(Span::disabled().child("x").core.is_none());
    }

    #[test]
    fn drain_takes_ownership() {
        let tracer = Tracer::new();
        drop(tracer.root("one"));
        assert_eq!(tracer.drain().len(), 1);
        assert!(tracer.drain().is_empty(), "second drain starts empty");
    }

    #[test]
    fn json_exports_are_stable_and_escaped() {
        let tracer = Tracer::new();
        {
            let root = tracer.root_at(0, "job");
            root.attr("note", "say \"hi\"\n");
            root.counter("n", 2);
            let _child = root.child("phase");
        }
        let trace = tracer.drain();
        let json = trace.to_json();
        assert_eq!(
            json,
            "{\"version\":1,\"spans\":[{\"key\":[0],\"path\":\"job\",\"attrs\":{\"note\":\"say \\\"hi\\\"\\n\"},\"counters\":{\"n\":2}},{\"key\":[0,0],\"path\":\"job/phase\"}]}"
        );
        let chrome = trace.to_chrome_json();
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"dur\":2000"), "root spans its child: {chrome}");
        assert!(chrome.contains("\"name\":\"phase\""));
    }

    #[test]
    fn chrome_subtree_durations_nest() {
        let tracer = Tracer::new();
        {
            let a = tracer.root_at(0, "a");
            let b = a.child("b");
            let _c = b.child("c");
            let _d = a.child("d");
            let _e = tracer.root_at(1, "e");
        }
        let trace = tracer.drain();
        let chrome = trace.to_chrome_json();
        // a covers b, c, d (4 units); b covers c (2 units); e is 1 unit.
        assert!(chrome.contains("\"name\":\"a\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":0,\"dur\":4000"));
        assert!(chrome.contains("\"name\":\"b\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1000,\"dur\":2000"));
        assert!(chrome.contains("\"name\":\"e\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":4000,\"dur\":1000"));
    }
}
