//! Operational metrics: counters, gauges, and fixed-bucket histograms.
//!
//! Metrics capture quantities that legitimately depend on wall-clock
//! and scheduling — sweep queue-wait, worker occupancy — and are
//! therefore kept out of the deterministic trace. The JSON rendering
//! itself is byte-stable (BTree key order, six-decimal floats), so a
//! metrics dump diffs cleanly; only the *values* may vary between runs.

use crate::json::{escape, fmt_f64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default histogram bucket edges (log-spaced), used when a histogram
/// is observed before being registered with explicit edges.
const DEFAULT_EDGES: [f64; 8] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0];

/// A histogram over fixed, ascending bucket edges. A value lands in the
/// first bucket whose upper edge is `>=` the value; values beyond the
/// last edge — and NaN, which compares greater than nothing — land in
/// the overflow bucket, so `counts` has `edges.len() + 1` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// A histogram over the given edges. Non-finite edges are dropped
    /// and the rest sorted and deduplicated; an empty edge list falls
    /// back to the default log-spaced buckets (this constructor never
    /// panics — bad edges cannot take down an instrumented run).
    #[must_use]
    pub fn new(edges: Vec<f64>) -> Self {
        let mut edges: Vec<f64> = edges.into_iter().filter(|e| e.is_finite()).collect();
        edges.sort_by(f64::total_cmp);
        edges.dedup();
        if edges.is_empty() {
            edges = DEFAULT_EDGES.to_vec();
        }
        let counts = vec![0; edges.len() + 1];
        Self { edges, counts }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        let bucket = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[bucket] += 1;
    }

    /// Bucket upper edges.
    #[must_use]
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    fn to_json(&self) -> String {
        let edges: Vec<String> = self.edges.iter().map(|e| fmt_f64(*e)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"edges\":[{}],\"counts\":[{}]}}",
            edges.join(","),
            counts.join(",")
        )
    }
}

#[derive(Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A shared metrics registry. Cheap to clone (one `Arc`); a disabled
/// registry makes every recording call a single branch.
#[derive(Clone)]
pub struct Metrics {
    inner: Option<Arc<Mutex<MetricsInner>>>,
}

impl Metrics {
    /// An enabled, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(MetricsInner::default()))) }
    }

    /// A registry that records nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether recording calls do anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to a named counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            let mut m = inner.lock().expect("metrics registry");
            *m.counters.entry(name.to_owned()).or_insert(0) += delta;
        }
    }

    /// Set a named gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.lock().expect("metrics registry").gauges.insert(name.to_owned(), value);
        }
    }

    /// Pre-register a histogram with explicit bucket edges. Replaces
    /// any same-named histogram (and its counts).
    pub fn register_histogram(&self, name: &str, edges: Vec<f64>) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("metrics registry")
                .histograms
                .insert(name.to_owned(), Histogram::new(edges));
        }
    }

    /// Record one observation into a named histogram, creating it with
    /// the default log-spaced edges if it was never registered.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .lock()
                .expect("metrics registry")
                .histograms
                .entry(name.to_owned())
                .or_insert_with(|| Histogram::new(Vec::new()))
                .record(value);
        }
    }

    /// Current value of a counter (0 when absent or disabled).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner.lock().expect("metrics registry").counters.get(name).copied().unwrap_or(0)
        })
    }

    /// Current value of a gauge, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.lock().expect("metrics registry").gauges.get(name).copied())
    }

    /// Byte-stable JSON dump: counters, gauges, then histograms, each
    /// sorted by name.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let Some(inner) = &self.inner else {
            return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}".to_owned();
        };
        let m = inner.lock().expect("metrics registry");
        for (i, (k, v)) in m.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in m.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), fmt_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in m.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), h.to_json());
        }
        out.push_str("}}");
        out
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::disabled()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("enabled", &self.is_enabled()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_includes_edges_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 100.1, f64::NAN] {
            h.record(v);
        }
        // <=1: {0.5, 1.0}; <=10: {1.5, 10.0}; <=100: {99.9, 100.0};
        // overflow: {100.1, NaN}.
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_sanitizes_edges_instead_of_panicking() {
        let h = Histogram::new(vec![10.0, f64::NAN, 1.0, 10.0]);
        assert_eq!(h.edges(), &[1.0, 10.0]);
        let d = Histogram::new(Vec::new());
        assert_eq!(d.edges().len(), DEFAULT_EDGES.len());
    }

    #[test]
    fn registry_round_trips_byte_stable_json() {
        let m = Metrics::new();
        m.add("jobs", 2);
        m.add("jobs", 3);
        m.set_gauge("occupancy", 0.75);
        m.register_histogram("wait", vec![1.0, 2.0]);
        m.observe("wait", 1.5);
        assert_eq!(m.counter("jobs"), 5);
        assert_eq!(m.gauge("occupancy"), Some(0.75));
        assert_eq!(
            m.to_json(),
            "{\"counters\":{\"jobs\":5},\"gauges\":{\"occupancy\":0.750000},\"histograms\":{\"wait\":{\"edges\":[1.000000,2.000000],\"counts\":[0,1,0]}}}"
        );
    }

    #[test]
    fn disabled_registry_is_inert() {
        let m = Metrics::disabled();
        m.add("jobs", 1);
        m.observe("wait", 1.0);
        m.set_gauge("g", 1.0);
        assert_eq!(m.counter("jobs"), 0);
        assert_eq!(m.gauge("g"), None);
        assert_eq!(m.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }

    #[test]
    fn unregistered_histogram_gets_default_edges() {
        let m = Metrics::new();
        m.observe("adhoc", 5.0);
        assert!(m.to_json().contains("\"adhoc\""));
    }
}
