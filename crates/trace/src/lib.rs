//! Deterministic structured tracing and metrics for the EDA-on-cloud
//! workspace.
//!
//! The paper's characterization methodology instruments flow stages
//! with performance counters and attributes runtime to algorithmic
//! phases; this crate gives the reproduction the same power over *its
//! own* execution — the flow engines, the sweep pool, and the fleet
//! simulator — without giving up the workspace's determinism
//! guarantees.
//!
//! Two deliberately separate facilities:
//!
//! * [`Tracer`] / [`Span`] — hierarchical spans keyed by a **logical
//!   clock**, not wall-clock time. A span's identity is its ordinal
//!   key: the root ordinal followed by one child ordinal per nesting
//!   level (stage → phase → iteration). Spans record counters and
//!   key/value attributes into per-span buffers; [`Tracer::drain`]
//!   merges all buffers in canonical `(key, path)` order, so the
//!   exported trace is **byte-identical across worker counts and
//!   repeated runs** — thread scheduling can reorder span *completion*
//!   but never span *identity*.
//! * [`Metrics`] — an operational registry (counters, gauges,
//!   fixed-bucket histograms) for quantities that are genuinely
//!   wall-clock- or scheduling-dependent, such as sweep queue-wait and
//!   worker occupancy. Metrics render byte-stable JSON (fixed key
//!   order, six-decimal floats) but are *not* expected to be identical
//!   across worker counts; that is exactly why they are not part of the
//!   trace.
//!
//! Both are zero-dependency (std only) and cheap when disabled: the
//! handles are a single `Option<Arc<..>>`, so every instrumentation
//! call on a disabled [`Tracer`]/[`Span`]/[`Metrics`] is one branch on
//! `None`.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_trace::Tracer;
//!
//! let tracer = Tracer::new();
//! {
//!     let job = tracer.root_at(0, "job/0000");
//!     let stage = job.child("routing");
//!     stage.counter("ripup_rounds", 3);
//!     stage.attr("instance", "c5.xlarge");
//! }
//! let trace = tracer.drain();
//! assert_eq!(trace.records().len(), 2);
//! assert_eq!(trace.records()[1].path, "job/0000/routing");
//! assert!(trace.to_json().starts_with("{\"version\":1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod metrics;
mod span;

pub use metrics::{Histogram, Metrics};
pub use span::{Span, SpanRecord, Trace, Tracer};
