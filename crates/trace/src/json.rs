//! Byte-stable JSON helpers shared by the trace and metrics exporters.
//!
//! Same conventions as the fleet report's hand-rolled JSON: keys in a
//! fixed order, floats printed with six decimal places, no whitespace —
//! two values are equal iff their JSON strings are byte-identical.

use std::fmt::Write as _;

/// Render an `f64` with six decimal places (the workspace's byte-stable
/// float convention). Non-finite values render as quoted strings so the
/// output stays parseable.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v.is_nan() {
        "\"NaN\"".to_owned()
    } else if v > 0.0 {
        "\"inf\"".to_owned()
    } else {
        "\"-inf\"".to_owned()
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_are_six_decimal_and_total() {
        assert_eq!(fmt_f64(1.0), "1.000000");
        assert_eq!(fmt_f64(0.1234567), "0.123457");
        assert_eq!(fmt_f64(f64::NAN), "\"NaN\"");
        assert_eq!(fmt_f64(f64::INFINITY), "\"inf\"");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "\"-inf\"");
    }

    #[test]
    fn escapes_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }
}
