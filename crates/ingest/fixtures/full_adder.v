// Structural full adder mapped onto the synth14 library. Exercises
// ANSI port declarations, wires, named connections, an escaped
// identifier, and both comment styles. Written for this test suite.
module full_adder (
  input  a,
  input  b,
  input  cin,
  output sum,
  output cout
);
  wire \ab.xor ;  /* escaped identifier: dot is legal when escaped */
  XOR2_X1 g0 (.A(a), .B(b), .Y(\ab.xor ));
  XOR2_X1 g1 (.A(\ab.xor ), .B(cin), .Y(sum));
  MAJ3_X1 g2 (.A(a), .B(b), .C(cin), .Y(cout));
endmodule
