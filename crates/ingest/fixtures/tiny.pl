UCLA pl 1.0
p0 0 0 : N
p1 8 4 : N
a0 4 2 : N
a1 6 3 : N
