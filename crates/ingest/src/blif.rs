//! Real-world BLIF reader: `.names` truth tables lowered to gates,
//! `.latch` lowered to DFFs, `.gate` instantiations, multi-model files.
//!
//! This extends the write-oriented BLIF subset in
//! `eda_cloud_netlist::formats` (which only round-trips its own `.gate`
//! output) to the dialect real benchmark suites use. Every failure is a
//! typed, positioned [`IngestError`] — the parser never panics, however
//! torn or hostile the input. Constructs outside the subset (`.subckt`
//! hierarchies, `.exdc` don't-care networks) are rejected with
//! [`IngestError::Unsupported`] rather than silently mis-read.

use crate::error::IngestError;
use crate::text::{fields_with_cols, logical_lines, LogicalLine};
use eda_cloud_netlist::{NetId, Netlist};
use eda_cloud_tech::{CellKind, Library};
use std::collections::HashMap;

/// Parse a (possibly multi-model) BLIF document against `lib`. The
/// first `.model` is the top; later models are parsed identically and
/// returned in file order. Structural validation (undriven nets,
/// combinational loops) is the pipeline's job — this function only
/// guarantees the returned netlists are *buildable* (no double drivers,
/// all references interned).
///
/// # Errors
///
/// Returns a positioned [`IngestError`] on any malformed, truncated, or
/// unsupported input.
pub fn parse_blif(text: &str, lib: &Library) -> Result<Vec<Netlist>, IngestError> {
    let lines = logical_lines(text, '#');
    let mut models: Vec<Netlist> = Vec::new();
    let mut builder: Option<ModelBuilder> = None;
    for line in &lines {
        let fields = fields_with_cols(&line.text);
        let Some(&(first_col, first)) = fields.first() else {
            continue;
        };
        if first.starts_with('.') {
            match first {
                ".model" => {
                    if let Some(done) = builder.take() {
                        models.push(done.build(lib)?);
                    }
                    let name = fields.get(1).map_or("blif", |&(_, f)| f).to_owned();
                    builder = Some(ModelBuilder::new(name));
                }
                ".end" => {
                    if let Some(done) = builder.take() {
                        models.push(done.build(lib)?);
                    }
                }
                ".subckt" | ".exdc" | ".search" | ".clock" => {
                    return Err(IngestError::Unsupported {
                        line: line.lno,
                        construct: first.to_owned(),
                    });
                }
                _ => {
                    let b = builder.get_or_insert_with(|| ModelBuilder::new("blif".to_owned()));
                    b.directive(line, &fields, first_col, first)?;
                }
            }
        } else {
            let b = builder.get_or_insert_with(|| ModelBuilder::new("blif".to_owned()));
            b.table_row(line, &fields)?;
        }
    }
    if let Some(done) = builder.take() {
        models.push(done.build(lib)?);
    }
    if models.is_empty() {
        return Err(IngestError::Parse {
            line: text.lines().count().max(1),
            col: 0,
            message: "document declares no model".into(),
        });
    }
    Ok(models)
}

/// One `.names` table: signal list (last = output) plus cube rows.
struct NamesTable {
    lno: usize,
    col: usize,
    signals: Vec<String>,
    rows: Vec<(usize, String, char)>,
}

/// One `.latch`: data in, state out, optional control net.
struct Latch {
    lno: usize,
    col: usize,
    input: String,
    output: String,
    control: Option<String>,
}

/// One `.gate`: master plus formal=actual bindings.
struct Gate {
    lno: usize,
    col: usize,
    master: String,
    conns: Vec<(String, String)>,
}

struct ModelBuilder {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<(usize, usize, String)>,
    tables: Vec<NamesTable>,
    latches: Vec<Latch>,
    gates: Vec<Gate>,
    /// Whether the most recent directive was `.names` (rows attach).
    open_table: bool,
}

impl ModelBuilder {
    fn new(name: String) -> Self {
        Self {
            name,
            inputs: Vec::new(),
            outputs: Vec::new(),
            tables: Vec::new(),
            latches: Vec::new(),
            gates: Vec::new(),
            open_table: false,
        }
    }

    fn directive(
        &mut self,
        line: &LogicalLine,
        fields: &[(usize, &str)],
        first_col: usize,
        first: &str,
    ) -> Result<(), IngestError> {
        self.open_table = false;
        let perr = |col: usize, message: String| IngestError::Parse {
            line: line.lno,
            col,
            message,
        };
        match first {
            ".inputs" => {
                self.inputs.extend(fields[1..].iter().map(|&(_, f)| f.to_owned()));
            }
            ".outputs" => {
                for &(col, f) in &fields[1..] {
                    self.outputs.push((line.lno, col, f.to_owned()));
                }
            }
            ".names" => {
                if fields.len() < 2 {
                    return Err(perr(first_col, "`.names` needs at least an output".into()));
                }
                self.tables.push(NamesTable {
                    lno: line.lno,
                    col: fields[1].0,
                    signals: fields[1..].iter().map(|&(_, f)| f.to_owned()).collect(),
                    rows: Vec::new(),
                });
                self.open_table = true;
            }
            ".latch" => {
                if fields.len() < 3 {
                    return Err(perr(first_col, "`.latch` needs input and output".into()));
                }
                let input = fields[1].1.to_owned();
                let output = fields[2].1.to_owned();
                let rest = &fields[3..];
                let mut control = None;
                let init = match rest {
                    [] => None,
                    [(_, init)] => Some(*init),
                    [(_, ty), (ctl_col, ctl), tail @ ..] => {
                        if !matches!(*ty, "re" | "fe" | "ah" | "al" | "as") {
                            return Err(perr(rest[0].0, format!("unknown latch type `{ty}`")));
                        }
                        if *ctl != "NIL" {
                            control = Some((*ctl).to_owned());
                        }
                        let _ = ctl_col;
                        match tail {
                            [] => None,
                            [(_, init)] => Some(*init),
                            _ => {
                                return Err(perr(
                                    tail[1].0,
                                    "too many fields on `.latch`".into(),
                                ))
                            }
                        }
                    }
                };
                if let Some(init) = init {
                    if !matches!(init, "0" | "1" | "2" | "3") {
                        return Err(perr(
                            fields.last().unwrap().0,
                            format!("bad latch init value `{init}`"),
                        ));
                    }
                }
                self.latches.push(Latch {
                    lno: line.lno,
                    col: fields[2].0,
                    input,
                    output,
                    control,
                });
            }
            ".gate" => {
                let Some(&(master_col, master)) = fields.get(1) else {
                    return Err(perr(first_col, "missing gate master".into()));
                };
                let mut conns = Vec::new();
                for &(col, f) in &fields[2..] {
                    let (pin, net) = f
                        .split_once('=')
                        .ok_or_else(|| perr(col, format!("bad connection `{f}`")))?;
                    conns.push((pin.to_owned(), net.to_owned()));
                }
                self.gates.push(Gate {
                    lno: line.lno,
                    col: master_col,
                    master: master.to_owned(),
                    conns,
                });
            }
            other => {
                return Err(perr(first_col, format!("unrecognized directive `{other}`")));
            }
        }
        Ok(())
    }

    fn table_row(
        &mut self,
        line: &LogicalLine,
        fields: &[(usize, &str)],
    ) -> Result<(), IngestError> {
        let perr = |col: usize, message: String| IngestError::Parse {
            line: line.lno,
            col,
            message,
        };
        if !self.open_table {
            return Err(perr(fields[0].0, format!("stray line `{}`", line.text)));
        }
        let table = self.tables.last_mut().expect("open_table implies a table");
        let want_inputs = table.signals.len() - 1;
        let (cube, out, out_col) = match (want_inputs, fields) {
            (0, [(col, out)]) => (String::new(), out, col),
            (_, [(ccol, cube), (ocol, out)]) if want_inputs > 0 => {
                if cube.len() != want_inputs {
                    return Err(perr(
                        *ccol,
                        format!("cube `{cube}` has {} columns, table has {want_inputs} inputs", cube.len()),
                    ));
                }
                ((*cube).to_owned(), out, ocol)
            }
            _ => {
                return Err(perr(
                    fields[0].0,
                    format!("bad truth-table row `{}`", line.text),
                ))
            }
        };
        if cube.chars().any(|c| !matches!(c, '0' | '1' | '-')) {
            return Err(perr(fields[0].0, format!("bad cube `{cube}`")));
        }
        let out_char = match *out {
            "0" => '0',
            "1" => '1',
            other => return Err(perr(*out_col, format!("bad output value `{other}`"))),
        };
        if let Some(&(_, _, first)) = table.rows.first() {
            if first != out_char {
                return Err(perr(
                    *out_col,
                    "truth table mixes ON-set and OFF-set rows".into(),
                ));
            }
        }
        table.rows.push((line.lno, cube, out_char));
        Ok(())
    }

    fn build(self, lib: &Library) -> Result<Netlist, IngestError> {
        let mut lower = Lowerer::new(Netlist::new(self.name, lib.name()), lib);
        for pi in &self.inputs {
            lower.add_input(pi);
        }
        for table in &self.tables {
            lower.lower_names(table)?;
        }
        for latch in &self.latches {
            lower.lower_latch(latch)?;
        }
        for gate in &self.gates {
            lower.lower_gate(gate)?;
        }
        let mut nl = lower.finish();
        for (lno, col, po) in &self.outputs {
            let id = nl
                .nets()
                .iter()
                .position(|n| &n.name == po)
                .ok_or_else(|| IngestError::Parse {
                    line: *lno,
                    col: *col,
                    message: format!("output `{po}` references unknown net"),
                })?;
            nl.add_output(po.clone(), id as NetId);
        }
        Ok(nl)
    }
}

/// Builds gates into a netlist with interning, double-driver guards,
/// and fresh temp nets for lowering trees.
struct Lowerer<'a> {
    nl: Netlist,
    lib: &'a Library,
    net_ids: HashMap<String, NetId>,
    tmp: usize,
}

impl<'a> Lowerer<'a> {
    fn new(nl: Netlist, lib: &'a Library) -> Self {
        Self { nl, lib, net_ids: HashMap::new(), tmp: 0 }
    }

    fn add_input(&mut self, name: &str) {
        if !self.net_ids.contains_key(name) {
            let id = self.nl.add_input(name.to_owned());
            self.net_ids.insert(name.to_owned(), id);
        }
    }

    fn intern(&mut self, name: &str) -> NetId {
        if let Some(&id) = self.net_ids.get(name) {
            id
        } else {
            let id = self.nl.add_net(name.to_owned());
            self.net_ids.insert(name.to_owned(), id);
            id
        }
    }

    fn temp(&mut self) -> NetId {
        let id = self.nl.add_net(format!("_t{}", self.tmp));
        self.tmp += 1;
        id
    }

    fn master(&self, kind: CellKind, lno: usize) -> Result<(String, CellKind), IngestError> {
        let cell = self.lib.cell_by_kind(kind).ok_or_else(|| IngestError::Parse {
            line: lno,
            col: 0,
            message: format!("library `{}` has no {kind} master", self.lib.name()),
        })?;
        Ok((cell.name.clone(), cell.kind))
    }

    /// Guard [`Netlist::add_cell`]'s double-driver panic with a typed
    /// error, then emit the cell.
    fn emit(
        &mut self,
        kind: CellKind,
        inputs: Vec<NetId>,
        output: NetId,
        lno: usize,
        col: usize,
    ) -> Result<(), IngestError> {
        if self.nl.nets()[output as usize].driver.is_some() {
            return Err(IngestError::Parse {
                line: lno,
                col,
                message: format!(
                    "net `{}` already has a driver",
                    self.nl.nets()[output as usize].name
                ),
            });
        }
        let (master, kind) = self.master(kind, lno)?;
        let inst = format!("g{}", self.nl.cell_count());
        self.nl.add_cell(inst, master, kind, inputs, output);
        Ok(())
    }

    /// Reduce `nets` with a balanced-enough left fold of 2-input
    /// `kind` gates, writing the final result into `target`.
    fn reduce_into(
        &mut self,
        kind: CellKind,
        nets: &[NetId],
        target: NetId,
        lno: usize,
        col: usize,
    ) -> Result<(), IngestError> {
        match nets {
            [] => unreachable!("callers handle empty reductions"),
            [single] => self.emit(CellKind::Buf, vec![*single], target, lno, col),
            more => {
                let mut acc = more[0];
                for (i, &next) in more[1..].iter().enumerate() {
                    let out = if i + 2 == more.len() { target } else { self.temp() };
                    self.emit(kind, vec![acc, next], out, lno, col)?;
                    acc = out;
                }
                Ok(())
            }
        }
    }

    fn lower_names(&mut self, table: &NamesTable) -> Result<(), IngestError> {
        let (lno, col) = (table.lno, table.col);
        let (in_names, out_name) = table.signals.split_at(table.signals.len() - 1);
        let in_nets: Vec<NetId> = in_names.iter().map(|n| self.intern(n)).collect();
        let target = self.intern(&out_name[0]);
        let phase = table.rows.first().map_or('0', |&(_, _, out)| out);
        let tie = |v: bool| if v { CellKind::Tie1 } else { CellKind::Tie0 };
        // No rows => constant 0. A row with an all-dash (or empty)
        // cube covers the whole input space => constant at the phase.
        if table.rows.is_empty() {
            return self.emit(tie(false), vec![], target, lno, col);
        }
        if table.rows.iter().any(|(_, cube, _)| cube.chars().all(|c| c == '-')) {
            return self.emit(tie(phase == '1'), vec![], target, lno, col);
        }
        // Each cube ANDs its literals ('0' literals go through an INV).
        let mut cube_nets = Vec::with_capacity(table.rows.len());
        for (row_lno, cube, _) in &table.rows {
            let mut lits = Vec::new();
            for (pos, ch) in cube.chars().enumerate() {
                match ch {
                    '1' => lits.push(in_nets[pos]),
                    '0' => {
                        let inv = self.temp();
                        self.emit(CellKind::Inv, vec![in_nets[pos]], inv, *row_lno, 0)?;
                        lits.push(inv);
                    }
                    _ => {}
                }
            }
            let cube_net = if lits.len() == 1 {
                lits[0]
            } else {
                let out = self.temp();
                self.reduce_into(CellKind::And2, &lits, out, *row_lno, 0)?;
                out
            };
            cube_nets.push(cube_net);
        }
        // ON-set rows OR into the target; OFF-set rows OR then invert.
        if phase == '1' {
            self.reduce_into(CellKind::Or2, &cube_nets, target, lno, col)
        } else {
            let off = if cube_nets.len() == 1 {
                cube_nets[0]
            } else {
                let out = self.temp();
                self.reduce_into(CellKind::Or2, &cube_nets, out, lno, col)?;
                out
            };
            self.emit(CellKind::Inv, vec![off], target, lno, col)
        }
    }

    fn lower_latch(&mut self, latch: &Latch) -> Result<(), IngestError> {
        let d = self.intern(&latch.input);
        let q = self.intern(&latch.output);
        // The control net (or the implicit global `clock`) is promoted
        // to a primary input when nothing else declares or drives it.
        let ctl_name = latch.control.as_deref().unwrap_or("clock");
        let ck = match self.net_ids.get(ctl_name) {
            Some(&id) => id,
            None => {
                let id = self.nl.add_input(ctl_name.to_owned());
                self.net_ids.insert(ctl_name.to_owned(), id);
                id
            }
        };
        let (master, kind) = self.master(CellKind::Dff, latch.lno)?;
        if self.nl.nets()[q as usize].driver.is_some() {
            return Err(IngestError::Parse {
                line: latch.lno,
                col: latch.col,
                message: format!("net `{}` already has a driver", latch.output),
            });
        }
        let inst = format!("g{}", self.nl.cell_count());
        self.nl.add_cell(inst, master, kind, vec![d, ck], q);
        Ok(())
    }

    fn lower_gate(&mut self, gate: &Gate) -> Result<(), IngestError> {
        let master = self.lib.cell(&gate.master).map_err(|e| IngestError::Parse {
            line: gate.lno,
            col: gate.col,
            message: e.to_string(),
        })?;
        let (master_name, kind) = (master.name.clone(), master.kind);
        let mut by_pin: HashMap<&str, &str> = HashMap::new();
        for (pin, net) in &gate.conns {
            by_pin.insert(pin.as_str(), net.as_str());
        }
        let mut input_nets = Vec::new();
        for pin in master.input_pins() {
            let net = *by_pin.get(pin.name.as_str()).ok_or_else(|| IngestError::Parse {
                line: gate.lno,
                col: gate.col,
                message: format!("missing pin `{}` on {}", pin.name, gate.master),
            })?;
            input_nets.push(self.intern(net));
        }
        let out_pin = master.output_pin().name.clone();
        let out_name = *by_pin.get(out_pin.as_str()).ok_or_else(|| IngestError::Parse {
            line: gate.lno,
            col: gate.col,
            message: format!("missing output pin `{out_pin}`"),
        })?;
        let out_net = self.intern(out_name);
        if self.nl.nets()[out_net as usize].driver.is_some() {
            return Err(IngestError::Parse {
                line: gate.lno,
                col: gate.col,
                message: format!("net `{out_name}` already has a driver"),
            });
        }
        let inst = format!("g{}", self.nl.cell_count());
        self.nl.add_cell(inst, master_name, kind, input_nets, out_net);
        Ok(())
    }

    fn finish(self) -> Netlist {
        self.nl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::NetDriver;

    fn lib() -> Library {
        Library::synthetic_14nm()
    }

    #[test]
    fn parses_names_tables_into_gates() {
        // c17-style NAND via OFF-set: output 0 only when both inputs 1.
        let text = "\
.model nand_test
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let models = parse_blif(text, &lib()).expect("parses");
        assert_eq!(models.len(), 1);
        let nl = &models[0];
        nl.check().expect("valid");
        // AND + INV (single cube, OFF-set phase).
        assert_eq!(nl.cell_count(), 2);
        let y = nl.primary_outputs()[0].1;
        assert!(matches!(nl.nets()[y as usize].driver, Some(NetDriver::Cell(_))));
        // Semantics: y = !(a & b). `simulate` returns PO values.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = nl.simulate(&[a, b]).expect("simulates");
            assert_eq!(values[0], !(a & b), "a={a} b={b}");
        }
    }

    #[test]
    fn on_set_cubes_or_together() {
        // y = a XOR b expressed as ON-set cubes.
        let text = "\
.model xor_test
.inputs a b
.outputs y
.names a b y
10 1
01 1
.end
";
        let nl = &parse_blif(text, &lib()).expect("parses")[0];
        nl.check().expect("valid");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = nl.simulate(&[a, b]).expect("simulates");
            assert_eq!(values[0], a ^ b, "a={a} b={b}");
        }
    }

    #[test]
    fn constants_buffers_and_inverters() {
        let text = "\
.model consts
.inputs a
.outputs one zero buf inv
.names one
1
.names zero
.names a buf
1 1
.names a inv
0 1
.end
";
        let nl = &parse_blif(text, &lib()).expect("parses")[0];
        nl.check().expect("valid");
        let po = |name: &str| {
            nl.primary_outputs().iter().position(|(n, _)| n == name).expect("PO")
        };
        for a in [false, true] {
            let values = nl.simulate(&[a]).expect("simulates");
            assert!(values[po("one")]);
            assert!(!values[po("zero")]);
            assert_eq!(values[po("buf")], a);
            assert_eq!(values[po("inv")], !a);
        }
    }

    #[test]
    fn latches_become_dffs_with_promoted_clock() {
        let text = "\
.model counter_bit
.inputs d
.outputs q
.latch d q re clk 0
.end
";
        let nl = &parse_blif(text, &lib()).expect("parses")[0];
        nl.check().expect("valid");
        assert_eq!(nl.cell_count(), 1);
        assert_eq!(nl.cells()[0].kind, CellKind::Dff);
        assert_eq!(nl.cells()[0].inputs.len(), 2, "D and CK");
        // `clk` was auto-promoted to a primary input.
        assert!(nl
            .primary_inputs()
            .iter()
            .any(|&n| nl.nets()[n as usize].name == "clk"));
        // NIL control falls back to the implicit global clock.
        let nil = "\
.model nil_latch
.inputs d
.outputs q
.latch d q re NIL
.end
";
        let nl = &parse_blif(nil, &lib()).expect("parses")[0];
        assert!(nl
            .primary_inputs()
            .iter()
            .any(|&n| nl.nets()[n as usize].name == "clock"));
    }

    #[test]
    fn multi_model_files_yield_every_model() {
        let text = "\
.model top
.inputs a b
.outputs y
.names a b y
11 1
.end
.model helper
.inputs x
.outputs z
.names x z
0 1
.end
";
        let models = parse_blif(text, &lib()).expect("parses");
        assert_eq!(models.len(), 2);
        assert_eq!(models[0].name(), "top");
        assert_eq!(models[1].name(), "helper");
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model c\n.inputs a \\\n  b\n.outputs y\n.names a b y\n11 1\n.end\n";
        let nl = &parse_blif(text, &lib()).expect("parses")[0];
        assert_eq!(nl.primary_inputs().len(), 2);
    }

    #[test]
    fn gate_form_still_parses() {
        let text = "\
.model g
.inputs a b
.outputs y
.gate AND2_X1 A=a B=b Y=y
.end
";
        let nl = &parse_blif(text, &lib()).expect("parses")[0];
        nl.check().expect("valid");
        assert_eq!(nl.cells()[0].kind, CellKind::And2);
    }

    #[test]
    fn errors_are_typed_and_positioned() {
        let l = lib();
        // Unsupported construct.
        let e = parse_blif(".model m\n.subckt sub a=b\n.end\n", &l).unwrap_err();
        assert_eq!(e, IngestError::Unsupported { line: 2, construct: ".subckt".into() });
        // Mixed phases.
        let e = parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n0 0\n.end\n", &l)
            .unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 6, .. }), "{e}");
        // Wrong cube width.
        let e = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n", &l)
            .unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 5, .. }), "{e}");
        // Double driver.
        let e = parse_blif(
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
            &l,
        )
        .unwrap_err();
        assert!(e.to_string().contains("already has a driver"), "{e}");
        // Ghost output.
        let e = parse_blif(".model m\n.inputs a\n.outputs ghost\n.end\n", &l).unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 3, .. }), "{e}");
        // Stray row outside a table.
        let e = parse_blif(".model m\n11 1\n.end\n", &l).unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 2, .. }), "{e}");
        // Empty document.
        assert!(parse_blif("", &l).is_err());
        assert!(parse_blif("# only comments\n", &l).is_err());
    }
}
