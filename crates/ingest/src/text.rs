//! Line/column-preserving text helpers shared by the parsers.

/// One logical line: physical continuation lines (trailing `\`) joined
/// with single spaces, comments stripped, tagged with the 1-based
/// number of its first physical line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LogicalLine {
    /// 1-based first physical line number.
    pub lno: usize,
    /// The joined, comment-stripped text.
    pub text: String,
}

/// Split into logical lines: strip `comment`-to-end-of-line, join lines
/// ending in `\`, drop blanks. Columns reported against a logical line
/// refer to its joined text.
pub(crate) fn logical_lines(text: &str, comment: char) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    let mut pending: Option<LogicalLine> = None;
    for (i, raw) in text.lines().enumerate() {
        let body = match raw.find(comment) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let (body, continues) = match body.trim_end().strip_suffix('\\') {
            Some(stripped) => (stripped.trim(), true),
            None => (body.trim(), false),
        };
        let line = match pending.take() {
            Some(mut prev) => {
                if !body.is_empty() {
                    if !prev.text.is_empty() {
                        prev.text.push(' ');
                    }
                    prev.text.push_str(body);
                }
                prev
            }
            None => LogicalLine { lno: i + 1, text: body.to_owned() },
        };
        if continues {
            pending = Some(line);
        } else if !line.text.is_empty() {
            out.push(line);
        }
    }
    if let Some(line) = pending {
        // Trailing `\` at end of input: keep what we have.
        if !line.text.is_empty() {
            out.push(line);
        }
    }
    out
}

/// Whitespace-split `line` into `(1-based byte column, field)` pairs.
pub(crate) fn fields_with_cols(line: &str) -> Vec<(usize, &str)> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let start = i;
        while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i > start {
            out.push((start + 1, &line[start..i]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn joins_continuations_and_strips_comments() {
        let text = "# header\n.inputs a b \\\n  c d # tail\n\n.end\n";
        let lines = logical_lines(text, '#');
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].lno, 2);
        assert_eq!(lines[0].text, ".inputs a b c d");
        assert_eq!(lines[1].text, ".end");
    }

    #[test]
    fn trailing_continuation_does_not_lose_text() {
        let lines = logical_lines(".inputs a \\", '#');
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].text, ".inputs a");
    }

    #[test]
    fn columns_are_one_based_byte_offsets() {
        let fields = fields_with_cols("  .gate  AND2_X1 A=x");
        assert_eq!(fields, vec![(3, ".gate"), (10, "AND2_X1"), (18, "A=x")]);
    }
}
