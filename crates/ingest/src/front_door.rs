//! The front door: format dispatch, the full pipeline, and the
//! [`Ingestor`] implementation the server mounts.
//!
//! One call to [`FrontDoor::ingest_doc`] takes an untrusted
//! [`UploadDoc`] through byte quotas → parse → validate → size quotas
//! → canonicalize → featurize → OOD score, producing a byte-stable
//! [`IngestReport`] and a servable [`ServeDesign`]. The design's
//! fingerprint is computed under a constant internal name, so it
//! depends only on the canonical structure — two uploads of the same
//! circuit under different names share one result-cache entry.

use crate::blif::parse_blif;
use crate::bookshelf::parse_bookshelf;
use crate::error::IngestError;
use crate::ood::OodGate;
use crate::pipeline::{canonicalize, validate, IngestQuotas, IngestReport};
use crate::verilog::parse_verilog;
use eda_cloud_gcn::{FeatureProfile, GraphSample};
use eda_cloud_netlist::DesignGraph;
use eda_cloud_serve::{design_pool, IngestOutcome, IngestSummary, Ingestor, ServeDesign, UploadDoc};
use eda_cloud_tech::Library;
use std::sync::Arc;

/// Admission and flagging knobs for the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontDoorConfig {
    /// Size/degree ceilings enforced on every upload.
    pub quotas: IngestQuotas,
    /// OOD flagging threshold in integer micros (`1_000_000` = one
    /// corpus deviation). Flagged designs are still served.
    pub ood_threshold_micros: u64,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        Self { quotas: IngestQuotas::default(), ood_threshold_micros: 3_000_000 }
    }
}

/// The production [`Ingestor`]: parsers + pipeline + OOD gate bound to
/// one cell library and one training-corpus profile. Stateless per
/// upload, so outcomes are pure functions of document content — the
/// contract the server's ingest cache relies on.
pub struct FrontDoor {
    lib: Library,
    config: FrontDoorConfig,
    gate: OodGate,
}

impl FrontDoor {
    /// Bind to an explicit corpus profile.
    #[must_use]
    pub fn new(profile: FeatureProfile, config: FrontDoorConfig) -> Self {
        Self {
            lib: Library::synthetic_14nm(),
            gate: OodGate::new(profile, config.ood_threshold_micros),
            config,
        }
    }

    /// Bind to the profile of the server's synthetic design pool — the
    /// same corpus the serving GCN trains on.
    #[must_use]
    pub fn with_pool_profile(config: FrontDoorConfig) -> Self {
        let pool = design_pool();
        let views: Vec<GraphSample> = pool.iter().map(|d| d.netlist.clone()).collect();
        Self::new(FeatureProfile::from_samples(&views), config)
    }

    /// The configured quotas.
    #[must_use]
    pub fn quotas(&self) -> &IngestQuotas {
        &self.config.quotas
    }

    /// Run the full pipeline on one upload.
    ///
    /// # Errors
    ///
    /// Returns the typed [`IngestError`] for the first stage that
    /// rejects: byte quota, parse, validation, size quota, or an
    /// unknown format tag.
    pub fn ingest_doc(
        &self,
        doc: &UploadDoc,
    ) -> Result<(IngestReport, Arc<ServeDesign>), IngestError> {
        self.config.quotas.check_bytes(&doc.text)?;
        let shape = match doc.format.as_str() {
            "blif" => self.netlist_shape(parse_blif(&doc.text, &self.lib)?.swap_remove(0))?,
            "verilog" => self.netlist_shape(parse_verilog(&doc.text, &self.lib)?)?,
            "bookshelf" => {
                let design = parse_bookshelf(&doc.name, &doc.text)?;
                let nodes = design.nodes.len() as u64;
                self.config.quotas.check_graph(nodes, design.max_degree() as u64)?;
                let graph = design.to_graph();
                let (pis, pos) = {
                    let g = &graph;
                    let term = |i: usize| design.nodes[i].terminal;
                    let fanin = |i: usize| g.in_neighbors(i).len();
                    let (mut pis, mut pos) = (0u64, 0u64);
                    for i in 0..design.nodes.len() {
                        if term(i) {
                            if fanin(i) == 0 {
                                pis += 1;
                            } else {
                                pos += 1;
                            }
                        }
                    }
                    (pis, pos)
                };
                let cells = design.nodes.iter().filter(|n| !n.terminal).count() as u64;
                Shape { graph, pis, pos, cells, registers: 0, depth: 0 }
            }
            other => return Err(IngestError::UnknownFormat { format: other.to_owned() }),
        };
        let view = GraphSample::new(&shape.graph, [1.0; 4]);
        // Constant internal name: the fingerprint sees only canonical
        // structure, never the client-supplied name.
        let mut design = ServeDesign::new("ingest", view.clone(), view.clone());
        design.name.clone_from(&doc.name);
        let (ood_distance_micros, ood) = self.gate.score(&view);
        let report = IngestReport {
            name: doc.name.clone(),
            format: doc.format.clone(),
            upload_bytes: doc.text.len() as u64,
            fingerprint: design.fingerprint,
            nodes: shape.graph.node_count() as u64,
            edges: shape.graph.edge_count() as u64,
            pis: shape.pis,
            pos: shape.pos,
            cells: shape.cells,
            registers: shape.registers,
            depth: shape.depth,
            ood_distance_micros,
            ood,
        };
        Ok((report, Arc::new(design)))
    }

    /// Validate, size-check, canonicalize, and featurize a parsed
    /// netlist (BLIF and Verilog share this tail).
    fn netlist_shape(&self, nl: eda_cloud_netlist::Netlist) -> Result<Shape, IngestError> {
        validate(&nl)?;
        let nodes =
            (nl.cell_count() + nl.primary_inputs().len() + nl.primary_outputs().len()) as u64;
        let degree = nl.nets().iter().map(|n| n.sinks.len()).max().unwrap_or(0) as u64;
        self.config.quotas.check_graph(nodes, degree)?;
        let canon = canonicalize(&nl, &self.lib)?;
        let registers =
            canon.cells().iter().filter(|c| c.kind.is_sequential()).count() as u64;
        Ok(Shape {
            graph: DesignGraph::from_netlist(&canon),
            pis: canon.primary_inputs().len() as u64,
            pos: canon.primary_outputs().len() as u64,
            cells: canon.cell_count() as u64,
            registers,
            depth: canon.depth() as u64,
        })
    }
}

/// What every format reduces to before featurization.
struct Shape {
    graph: DesignGraph,
    pis: u64,
    pos: u64,
    cells: u64,
    registers: u64,
    depth: u64,
}

impl Ingestor for FrontDoor {
    fn ingest(&self, doc: &UploadDoc) -> IngestOutcome {
        match self.ingest_doc(doc) {
            Ok((report, design)) => IngestOutcome::Accepted(IngestSummary {
                design,
                nodes: report.nodes,
                ood_distance_micros: report.ood_distance_micros,
                ood: report.ood,
            }),
            Err(e) => IngestOutcome::Rejected { reason: e.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;

    fn door() -> FrontDoor {
        FrontDoor::with_pool_profile(FrontDoorConfig::default())
    }

    #[test]
    fn every_fixture_ingests_end_to_end() {
        let door = door();
        for doc in fixtures::uploads() {
            let (report, design) = door
                .ingest_doc(&doc)
                .unwrap_or_else(|e| panic!("fixture {} rejected: {e}", doc.name));
            assert_eq!(report.name, doc.name);
            assert!(report.nodes > 0, "{}", doc.name);
            assert!(report.fingerprint == design.fingerprint);
            assert_eq!(design.name, doc.name);
        }
    }

    #[test]
    fn fingerprints_are_layout_stable_across_names() {
        let door = door();
        let a = UploadDoc::new(
            "mine",
            "blif",
            ".model mine\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
        );
        let b = UploadDoc::new(
            "theirs",
            "blif",
            ".model theirs\n.inputs l r\n.outputs o\n.names l r o\n11 0\n.end\n",
        );
        let (ra, da) = door.ingest_doc(&a).expect("a");
        let (rb, db) = door.ingest_doc(&b).expect("b");
        assert_eq!(da.fingerprint, db.fingerprint, "structure is the identity");
        assert_eq!(ra.fingerprint, rb.fingerprint);
        assert_ne!(da.name, db.name, "names stay client-facing");
    }

    #[test]
    fn rejections_carry_the_typed_reason() {
        let door = door();
        let outcome = door.ingest(&UploadDoc::new("bad", "blif", ".model m\n.subckt x a=b\n"));
        let IngestOutcome::Rejected { reason } = outcome else {
            panic!("hostile upload accepted");
        };
        assert!(reason.contains("unsupported construct at line 2"), "{reason}");
        let outcome = door.ingest(&UploadDoc::new("bad", "edif", "(edif)"));
        let IngestOutcome::Rejected { reason } = outcome else {
            panic!("unknown format accepted");
        };
        assert!(reason.contains("edif"), "{reason}");
    }

    #[test]
    fn quotas_reject_before_expensive_work() {
        let tiny = FrontDoorConfig {
            quotas: IngestQuotas { max_bytes: 16, max_nodes: 4, max_degree: 1 },
            ..FrontDoorConfig::default()
        };
        let door = FrontDoor::with_pool_profile(tiny);
        let doc = UploadDoc::new("c17", "blif", fixtures::C17_BLIF);
        let e = door.ingest_doc(&doc).unwrap_err();
        assert!(matches!(e, IngestError::Quota { what: "bytes", .. }), "{e}");
        let roomy = FrontDoorConfig {
            quotas: IngestQuotas { max_bytes: 1 << 20, max_nodes: 4, max_degree: 1_024 },
            ..FrontDoorConfig::default()
        };
        let e = FrontDoor::with_pool_profile(roomy).ingest_doc(&doc).unwrap_err();
        assert!(matches!(e, IngestError::Quota { what: "nodes", .. }), "{e}");
    }

    #[test]
    fn bookshelf_uploads_score_far_from_the_netlist_corpus() {
        let door = door();
        let doc = UploadDoc::new("tiny", "bookshelf", fixtures::stitch_bookshelf(
            fixtures::TINY_NODES,
            fixtures::TINY_NETS,
            Some(fixtures::TINY_PL),
        ));
        let (report, _) = door.ingest_doc(&doc).expect("ingests");
        assert_eq!(report.format, "bookshelf");
        assert_eq!(report.depth, 0);
        assert!(report.ood_distance_micros > 0);
    }
}
