//! Out-of-distribution gate for ingested designs.
//!
//! The serving GCN was trained on the synthetic corpus; an uploaded
//! design far outside that distribution gets predictions the model was
//! never calibrated for. The gate scores each ingested graph against a
//! [`FeatureProfile`] of the training corpus (integer-micros mean
//! absolute deviation, fully deterministic) and flags — but does not
//! reject — designs beyond a configured distance. Flagged counts
//! surface in `ServeReport` so operators can see when the upload mix
//! drifts away from what the predictor knows.

use eda_cloud_gcn::{FeatureProfile, GraphSample};

/// Distance threshold semantics: `1_000_000` micros is one corpus
/// mean-absolute-deviation averaged across features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OodGate {
    profile: FeatureProfile,
    threshold_micros: u64,
}

impl OodGate {
    /// Wrap a corpus profile with a flagging threshold.
    #[must_use]
    pub fn new(profile: FeatureProfile, threshold_micros: u64) -> Self {
        Self { profile, threshold_micros }
    }

    /// The configured threshold in micros.
    #[must_use]
    pub fn threshold_micros(&self) -> u64 {
        self.threshold_micros
    }

    /// Score a graph: `(distance in micros, flagged)`.
    #[must_use]
    pub fn score(&self, sample: &GraphSample) -> (u64, bool) {
        let d = self.profile.distance_micros(sample);
        (d, d > self.threshold_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample(family: &str, size: u32) -> GraphSample {
        let aig = generators::build_family(family, size).expect("known family");
        GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4])
    }

    #[test]
    fn corpus_members_score_below_far_outliers() {
        let corpus: Vec<GraphSample> =
            (2..8).map(|s| sample("adder", s)).collect();
        let profile = FeatureProfile::from_samples(&corpus);
        let gate = OodGate::new(profile, 2_000_000);
        let (near, near_flag) = gate.score(&sample("adder", 5));
        // A much larger design from a different family sits further out.
        let (far, _) = gate.score(&sample("multiplier", 24));
        assert!(near < far, "near={near} far={far}");
        assert!(!near_flag, "in-corpus design flagged at {near}");
    }

    #[test]
    fn scoring_is_deterministic() {
        let corpus: Vec<GraphSample> = (2..6).map(|s| sample("parity", s)).collect();
        let gate = OodGate::new(FeatureProfile::from_samples(&corpus), 1_000_000);
        let probe = sample("adder", 6);
        assert_eq!(gate.score(&probe), gate.score(&probe));
    }
}
