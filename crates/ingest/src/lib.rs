//! External design ingestion: the front door that turns untrusted
//! user-uploaded netlist text into validated, fingerprinted, servable
//! designs.
//!
//! The DATE 2021 serving story assumes designs arrive from the trusted
//! synthetic corpus. Real deployments take uploads from users, which
//! changes the contract completely: input is hostile until proven
//! otherwise. This crate is that proof, in five stages:
//!
//! 1. **Parse** — [`blif`] (`.names` truth tables, `.latch`, `.gate`,
//!    multi-model files), [`verilog`] (structural gate-level subset
//!    with escaped identifiers), and [`bookshelf`]
//!    (`.nodes`/`.nets`/`.pl`). Every parser returns typed,
//!    position-annotated [`IngestError`]s and never panics.
//! 2. **Validate** — combinational-loop detection, undriven and
//!    floating-net lints, per-cell arity checks
//!    ([`pipeline::validate`]).
//! 3. **Quota** — byte ceilings before parsing, node/degree ceilings
//!    after, each rejection typed ([`IngestQuotas`]).
//! 4. **Canonicalize** — deterministic structural renaming so
//!    layout-identical uploads yield byte-identical artifacts and
//!    name-independent fingerprints ([`pipeline::canonicalize`]).
//! 5. **Score** — an OOD gate measuring each graph against the
//!    training-corpus feature profile in integer micros ([`OodGate`]);
//!    flagged designs are served but surfaced in `ServeReport`.
//!
//! [`FrontDoor`] composes the stages and implements the server's
//! [`eda_cloud_serve::Ingestor`] trait, so `RequestKind::Ingest`
//! requests flow through bounded admission, the fingerprint-keyed
//! ingest cache, and quarantine accounting like any other traffic.
//! [`fixtures`] embeds the checked-in conformance corpus.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
pub mod bookshelf;
mod error;
pub mod fixtures;
mod front_door;
mod ood;
pub mod pipeline;
mod text;
pub mod verilog;

pub use error::IngestError;
pub use front_door::{FrontDoor, FrontDoorConfig};
pub use ood::OodGate;
pub use pipeline::{IngestQuotas, IngestReport};
