//! Validation, canonicalization, and the byte-stable ingest report.
//!
//! Order of operations for a netlist-shaped upload:
//!
//! 1. **Byte quota** — checked against the raw text before any parse.
//! 2. **Parse** — format-specific, positioned errors (`blif`/`verilog`).
//! 3. **Validate** — structural `check()` (undriven nets, dangling
//!    references, combinational loops) plus arity and floating-net
//!    lints the builder cannot catch.
//! 4. **Size quotas** — node count and max net degree after parsing,
//!    so a hostile upload cannot smuggle a huge graph past admission.
//! 5. **Canonicalize** — deterministic structural renaming so two
//!    uploads of the same circuit under different names produce
//!    byte-identical downstream artifacts.
//!
//! Every rejection is a typed [`IngestError`]; nothing in this module
//! panics on user input.

use crate::error::IngestError;
use eda_cloud_netlist::{NetDriver, NetId, Netlist};
use eda_cloud_tech::{CellKind, Library};

/// Admission ceilings enforced on every upload. Byte quota applies to
/// the raw text before parsing; node/degree quotas apply to the parsed
/// design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestQuotas {
    /// Maximum raw upload size in bytes.
    pub max_bytes: u64,
    /// Maximum graph nodes (cells + PIs + POs).
    pub max_nodes: u64,
    /// Maximum sinks on any single net.
    pub max_degree: u64,
}

impl Default for IngestQuotas {
    fn default() -> Self {
        Self { max_bytes: 1 << 20, max_nodes: 50_000, max_degree: 1_024 }
    }
}

impl IngestQuotas {
    /// Enforce the byte ceiling on raw upload text.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Quota`] when the text is over the limit.
    pub fn check_bytes(&self, text: &str) -> Result<(), IngestError> {
        let got = text.len() as u64;
        if got > self.max_bytes {
            return Err(IngestError::Quota { what: "bytes", got, limit: self.max_bytes });
        }
        Ok(())
    }

    /// Enforce the parsed-design ceilings.
    ///
    /// # Errors
    ///
    /// Returns [`IngestError::Quota`] naming the violated dimension.
    pub fn check_graph(&self, nodes: u64, max_degree: u64) -> Result<(), IngestError> {
        if nodes > self.max_nodes {
            return Err(IngestError::Quota { what: "nodes", got: nodes, limit: self.max_nodes });
        }
        if max_degree > self.max_degree {
            return Err(IngestError::Quota {
                what: "degree",
                got: max_degree,
                limit: self.max_degree,
            });
        }
        Ok(())
    }
}

/// Structural validation beyond what the netlist builder enforces:
/// `check()` (undriven nets, dangling references, combinational
/// loops), per-cell input arity, and floating nets (driven but with no
/// sink and not a primary output — dead logic that would silently skew
/// the GCN's fanout features).
///
/// # Errors
///
/// Returns [`IngestError::Validation`] describing the first violated
/// invariant.
pub fn validate(nl: &Netlist) -> Result<(), IngestError> {
    nl.check()?;
    for cell in nl.cells() {
        let expected = match cell.kind {
            // DFFs carry D plus CK; `input_count` counts data pins.
            CellKind::Dff => 2,
            other => other.input_count(),
        };
        if cell.inputs.len() != expected {
            return Err(IngestError::Validation {
                message: format!(
                    "cell `{}` ({}) has {} inputs, expected {expected}",
                    cell.name,
                    cell.kind,
                    cell.inputs.len()
                ),
            });
        }
    }
    let po_nets: std::collections::HashSet<NetId> =
        nl.primary_outputs().iter().map(|&(_, n)| n).collect();
    for (ni, net) in nl.nets().iter().enumerate() {
        if net.sinks.is_empty() && !po_nets.contains(&(ni as NetId)) {
            return Err(IngestError::Validation {
                message: format!("net `{}` floats: no sinks and not a primary output", net.name),
            });
        }
    }
    Ok(())
}

/// Rebuild `nl` with deterministic structural names so layout-identical
/// uploads become byte-identical designs: PIs become `p{i}` (interface
/// order), cell output nets `n{i}` and cells `g{i}` in a structural
/// order — sorted by `(logic level, master, fanin count, fanout,
/// original index)` — and POs become `o{i}` (interface order). Must be
/// called after [`validate`]; the cell order is build-safe because all
/// nets are created before any cell claims its driver slot.
///
/// # Errors
///
/// Returns [`IngestError::Validation`] if the netlist has a
/// combinational cycle (callers running [`validate`] first never see
/// this).
pub fn canonicalize(nl: &Netlist, lib: &Library) -> Result<Netlist, IngestError> {
    let order = nl.topological_cells()?;
    // Combinational logic level, as in `Netlist::depth`.
    let mut level = vec![0usize; nl.cell_count()];
    for &cid in &order {
        let cell = &nl.cells()[cid as usize];
        if cell.kind.is_sequential() {
            continue;
        }
        let mut l = 0;
        for &inet in &cell.inputs {
            if let Some(NetDriver::Cell(d)) = nl.nets()[inet as usize].driver {
                if !nl.cells()[d as usize].kind.is_sequential() {
                    l = l.max(level[d as usize] + 1);
                }
            }
        }
        level[cid as usize] = l.max(1);
    }
    let mut canon: Vec<usize> = (0..nl.cell_count()).collect();
    canon.sort_by(|&a, &b| {
        let cell = |i: usize| &nl.cells()[i];
        let key = |i: usize| {
            (
                level[i],
                &cell(i).cell_name,
                cell(i).inputs.len(),
                nl.nets()[cell(i).output as usize].sinks.len(),
                i,
            )
        };
        key(a).cmp(&key(b))
    });
    let mut out = Netlist::new(nl.name(), lib.name());
    let mut net_map: Vec<NetId> = vec![NetId::MAX; nl.nets().len()];
    for (i, &pi) in nl.primary_inputs().iter().enumerate() {
        net_map[pi as usize] = out.add_input(format!("p{i}"));
    }
    for (i, &ci) in canon.iter().enumerate() {
        let onet = nl.cells()[ci].output as usize;
        net_map[onet] = out.add_net(format!("n{i}"));
    }
    for (i, &ci) in canon.iter().enumerate() {
        let cell = &nl.cells()[ci];
        let inputs: Vec<NetId> = cell.inputs.iter().map(|&n| net_map[n as usize]).collect();
        out.add_cell(
            format!("g{i}"),
            cell.cell_name.clone(),
            cell.kind,
            inputs,
            net_map[cell.output as usize],
        );
    }
    for (i, (_, net)) in nl.primary_outputs().iter().enumerate() {
        out.add_output(format!("o{i}"), net_map[*net as usize]);
    }
    Ok(out)
}

/// The byte-stable per-design record the front door emits: identity,
/// size, structure, and the OOD verdict. Field order in
/// [`IngestReport::to_json`] is fixed; floats never appear, so the
/// encoding is stable across platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Client-supplied design name.
    pub name: String,
    /// Upload format tag (`"blif"`, `"verilog"`, `"bookshelf"`).
    pub format: String,
    /// Raw upload size in bytes.
    pub upload_bytes: u64,
    /// Structural fingerprint of the canonical design (name-independent).
    pub fingerprint: u64,
    /// Graph nodes served to the GCN.
    pub nodes: u64,
    /// Graph edges served to the GCN.
    pub edges: u64,
    /// Primary inputs (terminals with no fanin for Bookshelf).
    pub pis: u64,
    /// Primary outputs (terminals with fanin for Bookshelf).
    pub pos: u64,
    /// Cell instances (movable nodes for Bookshelf).
    pub cells: u64,
    /// Sequential elements.
    pub registers: u64,
    /// Combinational depth in cell levels (0 for Bookshelf).
    pub depth: u64,
    /// Distance from the training-corpus profile, in integer micros
    /// (1_000_000 = one corpus deviation).
    pub ood_distance_micros: u64,
    /// Whether the distance crossed the configured OOD threshold.
    pub ood: bool,
}

impl IngestReport {
    /// Encode with a fixed key order. Fingerprints render as
    /// zero-padded hex so the width is constant.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"format\":\"{}\",\"upload_bytes\":{},\"fingerprint\":\"{:016x}\",\"nodes\":{},\"edges\":{},\"pis\":{},\"pos\":{},\"cells\":{},\"registers\":{},\"depth\":{},\"ood_distance_micros\":{},\"ood\":{}}}",
            self.name,
            self.format,
            self.upload_bytes,
            self.fingerprint,
            self.nodes,
            self.edges,
            self.pis,
            self.pos,
            self.cells,
            self.registers,
            self.depth,
            self.ood_distance_micros,
            self.ood,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blif::parse_blif;
    use eda_cloud_netlist::formats::write_blif;
    use eda_cloud_tech::Library;

    fn lib() -> Library {
        Library::synthetic_14nm()
    }

    fn xor_blif(a: &str, b: &str, y: &str, model: &str) -> String {
        format!(
            ".model {model}\n.inputs {a} {b}\n.outputs {y}\n.names {a} {b} {y}\n10 1\n01 1\n.end\n"
        )
    }

    #[test]
    fn quotas_reject_with_typed_errors() {
        let q = IngestQuotas { max_bytes: 8, max_nodes: 10, max_degree: 2 };
        assert!(q.check_bytes("tiny").is_ok());
        let e = q.check_bytes("far too many bytes").unwrap_err();
        assert!(matches!(e, IngestError::Quota { what: "bytes", .. }), "{e}");
        assert!(q.check_graph(10, 2).is_ok());
        let e = q.check_graph(11, 1).unwrap_err();
        assert!(matches!(e, IngestError::Quota { what: "nodes", .. }), "{e}");
        let e = q.check_graph(5, 3).unwrap_err();
        assert!(matches!(e, IngestError::Quota { what: "degree", .. }), "{e}");
    }

    #[test]
    fn validate_catches_floating_nets_and_cycles() {
        let l = lib();
        // A gate output that feeds nothing and is not a PO.
        let floating = "\
.model f
.inputs a b
.outputs y
.names a b y
11 1
.names a b dead
10 1
.end
";
        let nl = &parse_blif(floating, &l).expect("parses")[0];
        let e = validate(nl).unwrap_err();
        assert!(e.to_string().contains("floats"), "{e}");
        // A combinational loop (x drives itself through two gates).
        let looped = "\
.model l
.inputs a
.outputs y
.names a u y
11 1
.names y u
1 1
.end
";
        let nl = &parse_blif(looped, &l).expect("parses")[0];
        let e = validate(nl).unwrap_err();
        assert!(matches!(e, IngestError::Validation { .. }), "{e}");
    }

    #[test]
    fn canonicalization_is_name_independent() {
        let l = lib();
        let first = &parse_blif(&xor_blif("a", "b", "y", "mine"), &l).expect("parses")[0];
        let second =
            &parse_blif(&xor_blif("left", "right", "out", "theirs"), &l).expect("parses")[0];
        validate(first).expect("valid");
        validate(second).expect("valid");
        let ca = canonicalize(first, &l).expect("canon");
        let cb = canonicalize(second, &l).expect("canon");
        // Identical structure, different names: after canonicalization
        // the BLIF dumps differ only in the `.model` header line.
        let body = |nl: &Netlist| {
            let dump = write_blif(nl, &Library::synthetic_14nm());
            dump.split_once('\n').map(|(_, rest)| rest.to_owned()).unwrap_or(dump)
        };
        assert_eq!(body(&ca), body(&cb));
        assert_ne!(ca.name(), cb.name(), "design names stay client-facing");
    }

    #[test]
    fn canonical_order_is_structural_not_textual() {
        let l = lib();
        // The same two-gate circuit written in both file orders.
        let fwd = "\
.model o
.inputs a b
.outputs y
.gate NAND2_X1 A=a B=b Y=w
.gate INV_X1 A=w Y=y
.end
";
        let rev = "\
.model o
.inputs a b
.outputs y
.gate INV_X1 A=w Y=y
.gate NAND2_X1 A=a B=b Y=w
.end
";
        let a = canonicalize(&parse_blif(fwd, &l).expect("parses")[0], &l).expect("canon");
        let b = canonicalize(&parse_blif(rev, &l).expect("parses")[0], &l).expect("canon");
        assert_eq!(write_blif(&a, &l), write_blif(&b, &l));
        // And the canonical netlist still simulates identically.
        let orig = &parse_blif(fwd, &l).expect("parses")[0];
        for (x, y) in [(false, false), (true, false), (true, true)] {
            let vo = orig.simulate(&[x, y]).expect("orig");
            let vc = a.simulate(&[x, y]).expect("canon");
            assert_eq!(vo, vc, "PO values under x={x} y={y}");
        }
    }

    #[test]
    fn reports_encode_with_fixed_key_order() {
        let r = IngestReport {
            name: "c17".into(),
            format: "blif".into(),
            upload_bytes: 123,
            fingerprint: 0xdead_beef,
            nodes: 17,
            edges: 20,
            pis: 5,
            pos: 2,
            cells: 10,
            registers: 0,
            depth: 3,
            ood_distance_micros: 750_000,
            ood: false,
        };
        assert_eq!(
            r.to_json(),
            "{\"name\":\"c17\",\"format\":\"blif\",\"upload_bytes\":123,\
\"fingerprint\":\"00000000deadbeef\",\"nodes\":17,\"edges\":20,\"pis\":5,\"pos\":2,\
\"cells\":10,\"registers\":0,\"depth\":3,\"ood_distance_micros\":750000,\"ood\":false}"
        );
    }
}
