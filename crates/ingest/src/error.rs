//! Typed, position-annotated errors for the ingestion front door.

use eda_cloud_netlist::NetlistError;
use std::fmt;

/// Everything that can make an upload unservable. Parsers never panic
/// on malformed input — every failure mode is a variant here, and
/// parse-shaped failures carry a 1-based line (and column when the
/// offending token is known).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The text is not well-formed in its claimed format.
    Parse {
        /// 1-based line of the failure (0 when unknown).
        line: usize,
        /// 1-based column (byte offset within the line) of the
        /// offending token; 0 when unknown.
        col: usize,
        /// What was malformed.
        message: String,
    },
    /// The text is well-formed but uses a construct outside the
    /// supported subset (e.g. BLIF `.subckt`, behavioral Verilog).
    Unsupported {
        /// 1-based line of the construct.
        line: usize,
        /// The construct, as written.
        construct: String,
    },
    /// The design parsed but violates a structural invariant:
    /// combinational loop, undriven or multiply-driven net, bad arity.
    Validation {
        /// The violated invariant.
        message: String,
    },
    /// The design exceeds an admission quota and was rejected before
    /// any expensive processing.
    Quota {
        /// The quota dimension (`"bytes"`, `"nodes"`, `"degree"`, …).
        what: &'static str,
        /// The design's value.
        got: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// The upload declared a format the front door does not speak.
    UnknownFormat {
        /// The declared format tag.
        format: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line, col, message } => {
                if *col > 0 {
                    write!(f, "parse error at line {line}, col {col}: {message}")
                } else if *line > 0 {
                    write!(f, "parse error at line {line}: {message}")
                } else {
                    write!(f, "parse error: {message}")
                }
            }
            Self::Unsupported { line, construct } => {
                write!(f, "unsupported construct at line {line}: `{construct}`")
            }
            Self::Validation { message } => write!(f, "validation failed: {message}"),
            Self::Quota { what, got, limit } => {
                write!(f, "quota exceeded: {got} {what} > limit {limit}")
            }
            Self::UnknownFormat { format } => write!(f, "unknown upload format `{format}`"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<NetlistError> for IngestError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::Parse { line, col, message } => Self::Parse { line, col, message },
            other => Self::Validation { message: other.to_string() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_positions_and_facts() {
        let e = IngestError::Parse { line: 4, col: 9, message: "bad token".into() };
        let s = e.to_string();
        assert!(s.contains("line 4") && s.contains("col 9"), "{s}");
        let e = IngestError::Parse { line: 4, col: 0, message: "truncated".into() };
        assert!(!e.to_string().contains("col"), "{e}");
        let e = IngestError::Quota { what: "nodes", got: 9_999, limit: 100 };
        assert!(e.to_string().contains("9999 nodes"), "{e}");
        let e = IngestError::Unsupported { line: 2, construct: ".subckt".into() };
        assert!(e.to_string().contains(".subckt"), "{e}");
    }

    #[test]
    fn netlist_errors_map_with_positions_intact() {
        let e: IngestError =
            NetlistError::Parse { line: 3, col: 7, message: "m".into() }.into();
        assert_eq!(e, IngestError::Parse { line: 3, col: 7, message: "m".into() });
        let e: IngestError = NetlistError::CombinationalCycle.into();
        assert!(matches!(e, IngestError::Validation { .. }));
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<IngestError>();
    }
}
