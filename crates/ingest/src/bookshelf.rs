//! Bookshelf placement-benchmark reader (`.nodes` / `.nets` / `.pl`).
//!
//! Bookshelf describes a placed design, not a logic network, so the
//! reader produces a [`BookshelfDesign`] rather than a `Netlist`: named
//! nodes with dimensions and placement, plus hyperedges with pinned
//! directions. [`BookshelfDesign::to_graph`] lowers it to the same
//! star-model [`DesignGraph`] the GCN consumes — each net contributes
//! one edge from its driver (the first `O` pin, or the first pin when
//! no direction is given) to every other pin.
//!
//! Uploads carry all three files in one text, delimited by `@nodes`,
//! `@nets`, and `@pl` section markers (the bench runner stitches
//! sibling files into this form). `@pl` is optional.

use crate::error::IngestError;
use crate::text::{fields_with_cols, logical_lines};
use eda_cloud_netlist::{DesignGraph, NodeFeatures, FEATURE_DIM};
use std::collections::HashMap;

/// One placeable node (cell or terminal).
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfNode {
    /// Node name as written.
    pub name: String,
    /// Width in sites.
    pub width: f64,
    /// Height in rows.
    pub height: f64,
    /// Whether the node is a fixed terminal (I/O pad).
    pub terminal: bool,
    /// Placement from `.pl`, when present.
    pub position: Option<(f64, f64)>,
}

/// One hyperedge: `(node index, direction char)` per pin.
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfNet {
    /// Net name (or a synthesized `net{i}` when unnamed).
    pub name: String,
    /// Pins as `(node index, direction)`; direction is `'I'`, `'O'`,
    /// or `'B'` when given, `'B'` otherwise.
    pub pins: Vec<(usize, char)>,
}

/// A parsed Bookshelf design.
#[derive(Debug, Clone, PartialEq)]
pub struct BookshelfDesign {
    /// Design name (from the upload, not the file).
    pub name: String,
    /// All nodes, file order.
    pub nodes: Vec<BookshelfNode>,
    /// All nets, file order.
    pub nets: Vec<BookshelfNet>,
}

/// Parse a stitched Bookshelf upload (see module docs for the section
/// markers). Declared `NumNodes` / `NumNets` / `NetDegree` counts are
/// checked against what the file actually contains.
///
/// # Errors
///
/// Returns a positioned [`IngestError`] on malformed or inconsistent
/// input.
pub fn parse_bookshelf(name: &str, text: &str) -> Result<BookshelfDesign, IngestError> {
    let mut sections: Vec<(&str, usize, Vec<crate::text::LogicalLine>)> = Vec::new();
    for line in logical_lines(text, '#') {
        if let Some(marker) = line.text.strip_prefix('@') {
            let marker = marker.trim();
            if !matches!(marker, "nodes" | "nets" | "pl") {
                return Err(IngestError::Parse {
                    line: line.lno,
                    col: 1,
                    message: format!("unknown section marker `@{marker}`"),
                });
            }
            sections.push((
                match marker {
                    "nodes" => "nodes",
                    "nets" => "nets",
                    _ => "pl",
                },
                line.lno,
                Vec::new(),
            ));
        } else {
            match sections.last_mut() {
                Some((_, _, lines)) => lines.push(line),
                None => {
                    return Err(IngestError::Parse {
                        line: line.lno,
                        col: 1,
                        message: "expected `@nodes` section marker before content".into(),
                    })
                }
            }
        }
    }
    let section = |want: &str| sections.iter().find(|(tag, _, _)| *tag == want);
    let Some((_, _, node_lines)) = section("nodes") else {
        return Err(IngestError::Parse {
            line: text.lines().count().max(1),
            col: 0,
            message: "missing `@nodes` section".into(),
        });
    };
    let Some((_, _, net_lines)) = section("nets") else {
        return Err(IngestError::Parse {
            line: text.lines().count().max(1),
            col: 0,
            message: "missing `@nets` section".into(),
        });
    };
    let mut nodes = parse_nodes(node_lines)?;
    let index: HashMap<String, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.name.clone(), i))
        .collect();
    let nets = parse_nets(net_lines, &index)?;
    if let Some((_, _, pl_lines)) = section("pl") {
        parse_pl(pl_lines, &index, &mut nodes)?;
    }
    Ok(BookshelfDesign { name: name.to_owned(), nodes, nets })
}

fn parse_num(field: (usize, &str), lno: usize) -> Result<f64, IngestError> {
    field.1.parse::<f64>().map_err(|_| IngestError::Parse {
        line: lno,
        col: field.0,
        message: format!("expected a number, found `{}`", field.1),
    })
}

/// Shared handling for `UCLA <kind> 1.0` headers and `Key : value`
/// declaration lines. Returns the declared value when the line is a
/// declaration of `key`.
fn header_or_decl(fields: &[(usize, &str)], lno: usize, key: &str) -> Result<Option<u64>, IngestError> {
    if fields.first().is_some_and(|&(_, f)| f == "UCLA") {
        return Ok(Some(u64::MAX)); // header: consumed, no value
    }
    if fields.first().is_some_and(|&(_, f)| f.eq_ignore_ascii_case(key)) {
        let value = match fields {
            [_, (_, ":"), v] => *v,
            [_, v] if v.1.starts_with(':') => (v.0, &v.1[1..]),
            _ => {
                return Err(IngestError::Parse {
                    line: lno,
                    col: fields[0].0,
                    message: format!("malformed `{key}` declaration"),
                })
            }
        };
        let n = value.1.parse::<u64>().map_err(|_| IngestError::Parse {
            line: lno,
            col: value.0,
            message: format!("expected a count, found `{}`", value.1),
        })?;
        return Ok(Some(n));
    }
    Ok(None)
}

fn parse_nodes(lines: &[crate::text::LogicalLine]) -> Result<Vec<BookshelfNode>, IngestError> {
    let mut nodes = Vec::new();
    let mut declared: Option<u64> = None;
    for line in lines {
        let fields = fields_with_cols(&line.text);
        if fields.is_empty() {
            continue;
        }
        if let Some(n) = header_or_decl(&fields, line.lno, "NumNodes")? {
            if n != u64::MAX {
                declared = Some(n);
            }
            continue;
        }
        if header_or_decl(&fields, line.lno, "NumTerminals")?.is_some() {
            continue;
        }
        // `name width height [terminal]`
        let [name, width, height, rest @ ..] = fields.as_slice() else {
            return Err(IngestError::Parse {
                line: line.lno,
                col: fields[0].0,
                message: format!("bad node line `{}`", line.text),
            });
        };
        let terminal = match rest {
            [] => false,
            [(_, t)] if t.eq_ignore_ascii_case("terminal") => true,
            [(col, t)] => {
                return Err(IngestError::Parse {
                    line: line.lno,
                    col: *col,
                    message: format!("expected `terminal`, found `{t}`"),
                })
            }
            _ => {
                return Err(IngestError::Parse {
                    line: line.lno,
                    col: rest[1].0,
                    message: "too many fields on node line".into(),
                })
            }
        };
        nodes.push(BookshelfNode {
            name: name.1.to_owned(),
            width: parse_num(*width, line.lno)?,
            height: parse_num(*height, line.lno)?,
            terminal,
            position: None,
        });
    }
    if let Some(declared) = declared {
        if declared != nodes.len() as u64 {
            return Err(IngestError::Validation {
                message: format!(
                    "NumNodes declares {declared} but file lists {}",
                    nodes.len()
                ),
            });
        }
    }
    Ok(nodes)
}

fn parse_nets(
    lines: &[crate::text::LogicalLine],
    index: &HashMap<String, usize>,
) -> Result<Vec<BookshelfNet>, IngestError> {
    let mut nets: Vec<BookshelfNet> = Vec::new();
    let mut declared: Option<u64> = None;
    let mut expecting_pins = 0usize;
    for line in lines {
        let fields = fields_with_cols(&line.text);
        if fields.is_empty() {
            continue;
        }
        if expecting_pins > 0 {
            // `nodename [I|O|B] [: x y]`
            let (node_col, node_name) = fields[0];
            let &node = index.get(node_name).ok_or_else(|| IngestError::Parse {
                line: line.lno,
                col: node_col,
                message: format!("pin references unknown node `{node_name}`"),
            })?;
            let dir = match fields.get(1) {
                Some(&(_, d)) if matches!(d, "I" | "O" | "B") => d.chars().next().unwrap(),
                Some(&(_, ":")) | None => 'B',
                Some(&(col, other)) => {
                    return Err(IngestError::Parse {
                        line: line.lno,
                        col,
                        message: format!("bad pin direction `{other}`"),
                    })
                }
            };
            nets.last_mut().expect("expecting_pins implies a net").pins.push((node, dir));
            expecting_pins -= 1;
            continue;
        }
        if let Some(n) = header_or_decl(&fields, line.lno, "NumNets")? {
            if n != u64::MAX {
                declared = Some(n);
            }
            continue;
        }
        if header_or_decl(&fields, line.lno, "NumPins")?.is_some() {
            continue;
        }
        if fields[0].1.eq_ignore_ascii_case("NetDegree") {
            // `NetDegree : k [name]`
            let (degree, name) = match fields.as_slice() {
                [_, (_, ":"), k, rest @ ..] => (*k, rest.first()),
                [_, k, rest @ ..] if k.1.starts_with(':') => ((k.0, &k.1[1..]), rest.first()),
                _ => {
                    return Err(IngestError::Parse {
                        line: line.lno,
                        col: fields[0].0,
                        message: "malformed `NetDegree` line".into(),
                    })
                }
            };
            let k = degree.1.parse::<usize>().map_err(|_| IngestError::Parse {
                line: line.lno,
                col: degree.0,
                message: format!("bad net degree `{}`", degree.1),
            })?;
            let name = name
                .map(|&(_, n)| n.to_owned())
                .unwrap_or_else(|| format!("net{}", nets.len()));
            nets.push(BookshelfNet { name, pins: Vec::with_capacity(k) });
            expecting_pins = k;
            continue;
        }
        return Err(IngestError::Parse {
            line: line.lno,
            col: fields[0].0,
            message: format!("bad nets line `{}`", line.text),
        });
    }
    if expecting_pins > 0 {
        let net = nets.last().expect("pins pending implies a net");
        return Err(IngestError::Validation {
            message: format!(
                "net `{}` declares {} more pin(s) than the file provides",
                net.name,
                expecting_pins
            ),
        });
    }
    if let Some(declared) = declared {
        if declared != nets.len() as u64 {
            return Err(IngestError::Validation {
                message: format!("NumNets declares {declared} but file lists {}", nets.len()),
            });
        }
    }
    Ok(nets)
}

fn parse_pl(
    lines: &[crate::text::LogicalLine],
    index: &HashMap<String, usize>,
    nodes: &mut [BookshelfNode],
) -> Result<(), IngestError> {
    for line in lines {
        let fields = fields_with_cols(&line.text);
        if fields.is_empty() || fields[0].1 == "UCLA" {
            continue;
        }
        // `name x y [: orientation [/FIXED]]`
        let [name, x, y, ..] = fields.as_slice() else {
            return Err(IngestError::Parse {
                line: line.lno,
                col: fields[0].0,
                message: format!("bad placement line `{}`", line.text),
            });
        };
        let &node = index.get(name.1).ok_or_else(|| IngestError::Parse {
            line: line.lno,
            col: name.0,
            message: format!("placement references unknown node `{}`", name.1),
        })?;
        nodes[node].position = Some((parse_num(*x, line.lno)?, parse_num(*y, line.lno)?));
    }
    Ok(())
}

impl BookshelfDesign {
    /// Number of pins across all nets.
    pub fn pin_count(&self) -> usize {
        self.nets.iter().map(|n| n.pins.len()).sum()
    }

    /// Largest net degree (0 when there are no nets).
    pub fn max_degree(&self) -> usize {
        self.nets.iter().map(|n| n.pins.len()).max().unwrap_or(0)
    }

    /// Lower to the GCN's star-model graph: one node per Bookshelf
    /// node, one edge per (driver, sink) pair per net. The driver is
    /// the first `O` pin, falling back to the first pin. Features
    /// follow the [`NodeFeatures`] layout with placement-flavoured
    /// stand-ins: terminals count as I/Os, movable cells as gates,
    /// area from `width * height`.
    pub fn to_graph(&self) -> DesignGraph {
        let n = self.nodes.len();
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.pin_count());
        let mut fanin = vec![0usize; n];
        let mut fanout = vec![0usize; n];
        for net in &self.nets {
            let Some(&(driver, _)) = net
                .pins
                .iter()
                .find(|&&(_, d)| d == 'O')
                .or_else(|| net.pins.first())
            else {
                continue;
            };
            for &(sink, _) in &net.pins {
                if sink != driver {
                    edges.push((driver as u32, sink as u32));
                    fanout[driver] += 1;
                    fanin[sink] += 1;
                }
            }
        }
        let max_area = self
            .nodes
            .iter()
            .map(|nd| nd.width * nd.height)
            .fold(1.0_f64, f64::max);
        let features: Vec<NodeFeatures> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| {
                let mut f = [0.0; FEATURE_DIM];
                // Terminals play the I/O role: sources look like PIs,
                // sinks like POs. Movable cells are "gates".
                f[0] = f64::from(u8::from(nd.terminal && fanin[i] == 0));
                f[1] = f64::from(u8::from(nd.terminal && fanin[i] > 0));
                f[2] = f64::from(u8::from(!nd.terminal));
                f[3] = 0.0;
                f[4] = fanin[i] as f64 / 4.0;
                f[5] = (1.0 + fanout[i] as f64).ln();
                f[6] = 0.0;
                f[7] = 0.0;
                f[8] = (nd.width * nd.height) / max_area;
                f[9] = 1.0;
                NodeFeatures(f)
            })
            .collect();
        DesignGraph::from_edges(self.name.clone(), n, &edges, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "\
@nodes
UCLA nodes 1.0
NumNodes : 4
NumTerminals : 2
  p0 1 1 terminal
  p1 1 1 terminal
  a0 2 1
  a1 3 2
@nets
UCLA nets 1.0
NumNets : 2
NumPins : 5
NetDegree : 3 n0
  p0 O
  a0 I
  a1 I
NetDegree : 2 n1
  a1 O
  p1 I
@pl
UCLA pl 1.0
p0 0 0 : N
a0 4 2 : N
";

    #[test]
    fn parses_all_three_sections() {
        let d = parse_bookshelf("tiny", TINY).expect("parses");
        assert_eq!(d.nodes.len(), 4);
        assert_eq!(d.nets.len(), 2);
        assert_eq!(d.pin_count(), 5);
        assert_eq!(d.max_degree(), 3);
        assert!(d.nodes[0].terminal);
        assert_eq!(d.nodes[0].position, Some((0.0, 0.0)));
        assert_eq!(d.nodes[2].position, Some((4.0, 2.0)));
        assert_eq!(d.nodes[3].position, None);
    }

    #[test]
    fn star_model_graph_has_driver_to_sink_edges() {
        let d = parse_bookshelf("tiny", TINY).expect("parses");
        let g = d.to_graph();
        assert_eq!(g.node_count(), 4);
        // n0 contributes p0->a0, p0->a1; n1 contributes a1->p1.
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn count_mismatches_are_validation_errors() {
        let bad = TINY.replace("NumNodes : 4", "NumNodes : 5");
        let e = parse_bookshelf("tiny", &bad).unwrap_err();
        assert!(matches!(e, IngestError::Validation { .. }), "{e}");
        let bad = TINY.replace("NetDegree : 3 n0", "NetDegree : 4 n0");
        let e = parse_bookshelf("tiny", &bad).unwrap_err();
        assert!(matches!(e, IngestError::Parse { .. } | IngestError::Validation { .. }), "{e}");
    }

    #[test]
    fn errors_are_typed_and_positioned() {
        // Content before any marker.
        let e = parse_bookshelf("x", "UCLA nodes 1.0\n").unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 1, .. }), "{e}");
        // Unknown marker.
        let e = parse_bookshelf("x", "@scl\n").unwrap_err();
        assert!(e.to_string().contains("@scl"), "{e}");
        // Unknown pin node.
        let bad = TINY.replace("  a0 I", "  ghost I");
        let e = parse_bookshelf("x", &bad).unwrap_err();
        assert!(e.to_string().contains("ghost"), "{e}");
        // Missing sections.
        assert!(parse_bookshelf("x", "@nodes\na 1 1\n").is_err());
        assert!(parse_bookshelf("x", "").is_err());
    }
}
