//! Structural (gate-level) Verilog reader.
//!
//! The supported subset is what a mapped netlist looks like: one
//! `module` with ANSI or non-ANSI port declarations, `wire`
//! declarations, and library-cell instances with *named* port
//! connections. Escaped identifiers (`\foo.bar `) are honoured. Line
//! (`//`) and block (`/* */`) comments are stripped by the tokenizer.
//! Behavioral constructs (`assign`, `always`, `reg`, …) are rejected
//! with [`IngestError::Unsupported`]; everything else malformed gets a
//! positioned [`IngestError::Parse`]. The reader round-trips
//! `eda_cloud_netlist::formats::write_verilog` output.

use crate::error::IngestError;
use eda_cloud_netlist::{NetId, Netlist};
use eda_cloud_tech::Library;
use std::collections::HashMap;

/// Parse one structural Verilog module against `lib`. Like the BLIF
/// reader this only guarantees buildability; structural validation is
/// the pipeline's job.
///
/// # Errors
///
/// Returns a positioned [`IngestError`] on malformed, truncated, or
/// behavioral input.
pub fn parse_verilog(text: &str, lib: &Library) -> Result<Netlist, IngestError> {
    let toks = tokenize(text)?;
    let mut p = Parser { toks, i: 0 };
    let module = p.module()?;
    if let Some(tok) = p.peek() {
        if tok.text == "module" {
            return Err(IngestError::Unsupported {
                line: tok.line,
                construct: "second module".into(),
            });
        }
        return Err(p.err_at(tok.line, tok.col, format!("unexpected `{}`", tok.text)));
    }
    module.build(lib)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Ident,
    Sym,
}

#[derive(Debug, Clone)]
struct Tok {
    line: usize,
    col: usize,
    kind: TokKind,
    text: String,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, IngestError> {
    let mut toks = Vec::new();
    let mut chars = text.char_indices().peekable();
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset of current line start
    macro_rules! col {
        ($pos:expr) => {
            $pos - line_start + 1
        };
    }
    while let Some(&(pos, ch)) = chars.peek() {
        match ch {
            '\n' => {
                chars.next();
                line += 1;
                line_start = pos + 1;
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                let (start_line, start_col) = (line, col!(pos));
                chars.next();
                match chars.peek().map(|&(_, c)| c) {
                    Some('/') => {
                        for (_, c) in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                        // Approximate: line_start only matters for
                        // columns, which reset at the next newline.
                        line_start = chars.peek().map_or(text.len(), |&(p, _)| p);
                    }
                    Some('*') => {
                        chars.next();
                        let mut closed = false;
                        let mut prev = ' ';
                        for (p, c) in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                line_start = p + 1;
                            }
                            if prev == '*' && c == '/' {
                                closed = true;
                                break;
                            }
                            prev = c;
                        }
                        if !closed {
                            return Err(IngestError::Parse {
                                line: start_line,
                                col: start_col,
                                message: "unterminated block comment".into(),
                            });
                        }
                    }
                    _ => {
                        return Err(IngestError::Parse {
                            line: start_line,
                            col: start_col,
                            message: "stray `/`".into(),
                        })
                    }
                }
            }
            '\\' => {
                // Escaped identifier: backslash to the next whitespace.
                let (start_line, start_col) = (line, col!(pos));
                chars.next();
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    name.push(c);
                    chars.next();
                }
                if name.is_empty() {
                    return Err(IngestError::Parse {
                        line: start_line,
                        col: start_col,
                        message: "empty escaped identifier".into(),
                    });
                }
                toks.push(Tok { line: start_line, col: start_col, kind: TokKind::Ident, text: name });
            }
            '(' | ')' | ',' | ';' | '.' | '=' | '@' | '[' | ']' | '{' | '}' | ':' | '#'
            | '*' | '+' | '-' | '?' | '~' | '&' | '|' | '^' | '<' | '>' | '!' | '%' => {
                toks.push(Tok {
                    line,
                    col: col!(pos),
                    kind: TokKind::Sym,
                    text: ch.to_string(),
                });
                chars.next();
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '$' => {
                // Identifiers, keywords, and (so that behavioral files
                // fail in the *parser* with a useful message rather
                // than here) sized constants like `1'b0`.
                let (start_line, start_col) = (line, col!(pos));
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' || c == '\'' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok { line: start_line, col: start_col, kind: TokKind::Ident, text: name });
            }
            other => {
                return Err(IngestError::Parse {
                    line,
                    col: col!(pos),
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Input,
    Output,
}

/// One parsed instance: master, instance name, named connections.
struct Instance {
    line: usize,
    col: usize,
    master: String,
    name: String,
    conns: Vec<(String, String)>,
}

struct Module {
    name: String,
    /// Ports in declaration order with resolved directions.
    ports: Vec<(usize, usize, String, Option<Dir>)>,
    wires: Vec<String>,
    instances: Vec<Instance>,
}

struct Parser {
    toks: Vec<Tok>,
    i: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err_at(&self, line: usize, col: usize, message: String) -> IngestError {
        IngestError::Parse { line, col, message }
    }

    fn err_eof(&self, expected: &str) -> IngestError {
        let line = self.toks.last().map_or(1, |t| t.line);
        IngestError::Parse {
            line,
            col: 0,
            message: format!("unexpected end of file, expected {expected}"),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Tok, IngestError> {
        match self.bump() {
            Some(t) if t.kind == TokKind::Ident => Ok(t),
            Some(t) => Err(self.err_at(
                t.line,
                t.col,
                format!("expected {what}, found `{}`", t.text),
            )),
            None => Err(self.err_eof(what)),
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<Tok, IngestError> {
        match self.bump() {
            Some(t) if t.kind == TokKind::Sym && t.text == sym => Ok(t),
            Some(t) => Err(self.err_at(
                t.line,
                t.col,
                format!("expected `{sym}`, found `{}`", t.text),
            )),
            None => Err(self.err_eof(sym)),
        }
    }

    fn at_sym(&self, sym: &str) -> bool {
        self.peek().is_some_and(|t| t.kind == TokKind::Sym && t.text == sym)
    }

    fn module(&mut self) -> Result<Module, IngestError> {
        let kw = self.expect_ident("`module`")?;
        if kw.text != "module" {
            return Err(self.err_at(
                kw.line,
                kw.col,
                format!("expected `module`, found `{}`", kw.text),
            ));
        }
        let name = self.expect_ident("module name")?;
        let mut module = Module {
            name: name.text,
            ports: Vec::new(),
            wires: Vec::new(),
            instances: Vec::new(),
        };
        self.expect_sym("(")?;
        if !self.at_sym(")") {
            loop {
                let mut dir = None;
                let mut tok = self.expect_ident("port name")?;
                if matches!(tok.text.as_str(), "input" | "output") {
                    dir = Some(if tok.text == "input" { Dir::Input } else { Dir::Output });
                    tok = self.expect_ident("port name")?;
                } else if tok.text == "inout" {
                    return Err(IngestError::Unsupported { line: tok.line, construct: "inout".into() });
                }
                module.ports.push((tok.line, tok.col, tok.text, dir));
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        self.expect_sym(";")?;
        loop {
            let Some(tok) = self.peek().cloned() else {
                return Err(self.err_eof("`endmodule`"));
            };
            match tok.text.as_str() {
                "endmodule" => {
                    self.bump();
                    break;
                }
                "input" | "output" => {
                    self.bump();
                    let dir = if tok.text == "input" { Dir::Input } else { Dir::Output };
                    for (line, col, name) in self.ident_list()? {
                        let port = module
                            .ports
                            .iter_mut()
                            .find(|(_, _, p, _)| *p == name)
                            .ok_or_else(|| {
                                self.err_at(
                                    line,
                                    col,
                                    format!("`{name}` is not in the port list"),
                                )
                            })?;
                        port.3 = Some(dir);
                    }
                }
                "wire" => {
                    self.bump();
                    for (_, _, name) in self.ident_list()? {
                        module.wires.push(name);
                    }
                }
                "assign" | "reg" | "always" | "initial" | "parameter" | "inout"
                | "function" | "task" | "generate" => {
                    return Err(IngestError::Unsupported {
                        line: tok.line,
                        construct: tok.text,
                    });
                }
                _ if tok.kind == TokKind::Ident => {
                    module.instances.push(self.instance()?);
                }
                _ => {
                    return Err(self.err_at(
                        tok.line,
                        tok.col,
                        format!("unexpected `{}`", tok.text),
                    ))
                }
            }
        }
        Ok(module)
    }

    /// `a, b, c ;` after a direction/wire keyword.
    fn ident_list(&mut self) -> Result<Vec<(usize, usize, String)>, IngestError> {
        let mut names = Vec::new();
        loop {
            let tok = self.expect_ident("identifier")?;
            names.push((tok.line, tok.col, tok.text));
            if self.at_sym(",") {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_sym(";")?;
        Ok(names)
    }

    /// `MASTER inst ( .PIN(net), ... );`
    fn instance(&mut self) -> Result<Instance, IngestError> {
        let master = self.expect_ident("cell master")?;
        let name = self.expect_ident("instance name")?;
        self.expect_sym("(")?;
        let mut conns = Vec::new();
        if !self.at_sym(")") {
            loop {
                let dot = self.expect_sym(".").map_err(|e| match e {
                    IngestError::Parse { line, col, .. } => self.err_at(
                        line,
                        col,
                        "positional port connections are not supported; use `.PIN(net)`".into(),
                    ),
                    other => other,
                })?;
                let _ = dot;
                let pin = self.expect_ident("pin name")?;
                self.expect_sym("(")?;
                let net = self.expect_ident("net name")?;
                self.expect_sym(")")?;
                conns.push((pin.text, net.text));
                if self.at_sym(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_sym(")")?;
        self.expect_sym(";")?;
        Ok(Instance {
            line: master.line,
            col: master.col,
            master: master.text,
            name: name.text,
            conns,
        })
    }
}

impl Module {
    fn build(self, lib: &Library) -> Result<Netlist, IngestError> {
        let mut nl = Netlist::new(self.name, lib.name());
        let mut net_ids: HashMap<String, NetId> = HashMap::new();
        // Inputs first (declaration order), then pre-intern the
        // remaining ports and wires so references resolve by name.
        for (line, col, name, dir) in &self.ports {
            match dir {
                Some(Dir::Input) => {
                    let id = nl.add_input(name.clone());
                    net_ids.insert(name.clone(), id);
                }
                Some(Dir::Output) => {}
                None => {
                    return Err(IngestError::Parse {
                        line: *line,
                        col: *col,
                        message: format!("port `{name}` has no direction"),
                    })
                }
            }
        }
        let intern = |nl: &mut Netlist, net_ids: &mut HashMap<String, NetId>, name: &str| {
            if let Some(&id) = net_ids.get(name) {
                id
            } else {
                let id = nl.add_net(name.to_owned());
                net_ids.insert(name.to_owned(), id);
                id
            }
        };
        for wire in &self.wires {
            intern(&mut nl, &mut net_ids, wire);
        }
        for (_, _, name, dir) in &self.ports {
            if *dir == Some(Dir::Output) {
                intern(&mut nl, &mut net_ids, name);
            }
        }
        for inst in &self.instances {
            let master = lib.cell(&inst.master).map_err(|e| IngestError::Parse {
                line: inst.line,
                col: inst.col,
                message: e.to_string(),
            })?;
            let mut by_pin: HashMap<&str, &str> = HashMap::new();
            for (pin, net) in &inst.conns {
                by_pin.insert(pin.as_str(), net.as_str());
            }
            let mut inputs = Vec::new();
            for pin in master.input_pins() {
                let net =
                    *by_pin.get(pin.name.as_str()).ok_or_else(|| IngestError::Parse {
                        line: inst.line,
                        col: inst.col,
                        message: format!("missing pin `{}` on {}", pin.name, inst.master),
                    })?;
                inputs.push(intern(&mut nl, &mut net_ids, net));
            }
            let out_pin = master.output_pin().name.clone();
            let out_name =
                *by_pin.get(out_pin.as_str()).ok_or_else(|| IngestError::Parse {
                    line: inst.line,
                    col: inst.col,
                    message: format!("missing output pin `{out_pin}` on {}", inst.master),
                })?;
            let (master_name, kind) = (master.name.clone(), master.kind);
            let out_net = intern(&mut nl, &mut net_ids, out_name);
            if nl.nets()[out_net as usize].driver.is_some() {
                return Err(IngestError::Parse {
                    line: inst.line,
                    col: inst.col,
                    message: format!("net `{out_name}` already has a driver"),
                });
            }
            nl.add_cell(inst.name.clone(), master_name, kind, inputs, out_net);
        }
        for (line, col, name, dir) in &self.ports {
            if *dir == Some(Dir::Output) {
                let id = *net_ids.get(name).ok_or_else(|| IngestError::Parse {
                    line: *line,
                    col: *col,
                    message: format!("output `{name}` references unknown net"),
                })?;
                nl.add_output(name.clone(), id);
            }
        }
        Ok(nl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::formats::write_verilog;
    use eda_cloud_tech::{CellKind, Library};

    fn lib() -> Library {
        Library::synthetic_14nm()
    }

    #[test]
    fn parses_ansi_header_and_instances() {
        let text = "\
module half_adder (
  input  a,
  input  b,
  output s,
  output c
);
  XOR2_X1 g0 (.A(a), .B(b), .Y(s));
  AND2_X1 g1 (.A(a), .B(b), .Y(c));
endmodule
";
        let nl = parse_verilog(text, &lib()).expect("parses");
        nl.check().expect("valid");
        assert_eq!(nl.name(), "half_adder");
        assert_eq!(nl.cell_count(), 2);
        // `simulate` returns PO values in declaration order: s, c.
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let v = nl.simulate(&[a, b]).expect("simulates");
            assert_eq!(v[0], a ^ b);
            assert_eq!(v[1], a & b);
        }
    }

    #[test]
    fn parses_non_ansi_header_with_wires_and_comments() {
        let text = "\
// mapped by hand
module t (a, b, y); /* ports
   declared below */
  input a, b;
  output y;
  wire w;
  NAND2_X1 u0 (.A(a), .B(b), .Y(w));
  INV_X1 u1 (.A(w), .Y(y));
endmodule
";
        let nl = parse_verilog(text, &lib()).expect("parses");
        nl.check().expect("valid");
        assert_eq!(nl.cell_count(), 2);
        assert_eq!(nl.cells()[0].kind, CellKind::Nand2);
    }

    #[test]
    fn escaped_identifiers_are_honoured() {
        let text = "\
module e (input \\a.0 , output y);
  INV_X1 u0 (.A(\\a.0 ), .Y(y));
endmodule
";
        let nl = parse_verilog(text, &lib()).expect("parses");
        nl.check().expect("valid");
        assert_eq!(nl.nets()[nl.primary_inputs()[0] as usize].name, "a.0");
    }

    #[test]
    fn round_trips_the_writer() {
        let l = lib();
        let text = "\
module rt (input a, input b, output y);
  wire w;
  AOI21_X1 g0 (.A(a), .B(b), .C(a), .Y(w));
  INV_X1 g1 (.A(w), .Y(y));
endmodule
";
        let first = parse_verilog(text, &l).expect("parses");
        let written = write_verilog(&first, &l);
        let second = parse_verilog(&written, &l).expect("round-trips");
        assert_eq!(first.cell_count(), second.cell_count());
        assert_eq!(first.primary_inputs().len(), second.primary_inputs().len());
        assert_eq!(first.primary_outputs().len(), second.primary_outputs().len());
        for (a, b) in [(false, false), (true, true), (true, false)] {
            assert_eq!(
                first.simulate(&[a, b]).expect("first"),
                second.simulate(&[a, b]).expect("second"),
            );
        }
    }

    #[test]
    fn behavioral_constructs_are_unsupported() {
        let l = lib();
        let e = parse_verilog(
            "module m (input a, output y);\n  assign y = a;\nendmodule\n",
            &l,
        )
        .unwrap_err();
        assert_eq!(e, IngestError::Unsupported { line: 2, construct: "assign".into() });
        let e = parse_verilog(
            "module m (input a, output y);\n  always @(posedge a) ;\nendmodule\n",
            &l,
        )
        .unwrap_err();
        assert!(matches!(e, IngestError::Unsupported { .. }), "{e}");
    }

    #[test]
    fn errors_are_typed_and_positioned() {
        let l = lib();
        // Truncated file.
        let e = parse_verilog("module m (input a, output y);\n", &l).unwrap_err();
        assert!(e.to_string().contains("end of file"), "{e}");
        // Positional connections.
        let e = parse_verilog(
            "module m (input a, output y);\n  INV_X1 u0 (a, y);\nendmodule\n",
            &l,
        )
        .unwrap_err();
        assert!(e.to_string().contains("positional"), "{e}");
        // Unknown master.
        let e = parse_verilog(
            "module m (input a, output y);\n  BOGUS_X9 u0 (.A(a), .Y(y));\nendmodule\n",
            &l,
        )
        .unwrap_err();
        assert!(matches!(e, IngestError::Parse { line: 2, .. }), "{e}");
        // Undirected port.
        let e = parse_verilog("module m (a);\nendmodule\n", &l).unwrap_err();
        assert!(e.to_string().contains("no direction"), "{e}");
        // Double driver.
        let e = parse_verilog(
            "module m (input a, output y);\n  INV_X1 u0 (.A(a), .Y(y));\n  INV_X1 u1 (.A(a), .Y(y));\nendmodule\n",
            &l,
        )
        .unwrap_err();
        assert!(e.to_string().contains("already has a driver"), "{e}");
        // Unterminated block comment.
        let e = parse_verilog("module m (); /* never closed", &l).unwrap_err();
        assert!(e.to_string().contains("unterminated"), "{e}");
        // Empty input.
        assert!(parse_verilog("", &l).is_err());
    }
}
