//! The checked-in upload corpus (see `fixtures/README.md` for
//! provenance). Embedded with `include_str!` so every consumer — unit
//! tests, the golden workflow, the bench binary, simtest's serving
//! phase, CI's smoke step — exercises byte-identical uploads.

use eda_cloud_serve::UploadDoc;
use std::sync::Arc;

/// ISCAS-85 c17 in `.names` OFF-set form.
pub const C17_BLIF: &str = include_str!("../fixtures/c17.blif");
/// Two-bit counter exercising `.latch` lowering.
pub const COUNTER_BLIF: &str = include_str!("../fixtures/counter.blif");
/// Multi-model mapped `.gate` file.
pub const MUX_GATE_BLIF: &str = include_str!("../fixtures/mux_gate.blif");
/// Structural-Verilog full adder with an escaped identifier.
pub const FULL_ADDER_V: &str = include_str!("../fixtures/full_adder.v");
/// Bookshelf `.nodes` section of the tiny placement example.
pub const TINY_NODES: &str = include_str!("../fixtures/tiny.nodes");
/// Bookshelf `.nets` section of the tiny placement example.
pub const TINY_NETS: &str = include_str!("../fixtures/tiny.nets");
/// Bookshelf `.pl` section of the tiny placement example.
pub const TINY_PL: &str = include_str!("../fixtures/tiny.pl");

/// Stitch sibling Bookshelf files into the single-text upload form the
/// front door parses (`@nodes` / `@nets` / `@pl` section markers).
#[must_use]
pub fn stitch_bookshelf(nodes: &str, nets: &str, pl: Option<&str>) -> String {
    let mut text = format!("@nodes\n{nodes}@nets\n{nets}");
    if let Some(pl) = pl {
        text.push_str("@pl\n");
        text.push_str(pl);
    }
    text
}

/// The full fixture corpus as ready-to-serve uploads, in a fixed order.
#[must_use]
pub fn uploads() -> Vec<Arc<UploadDoc>> {
    vec![
        Arc::new(UploadDoc::new("c17", "blif", C17_BLIF)),
        Arc::new(UploadDoc::new("counter2", "blif", COUNTER_BLIF)),
        Arc::new(UploadDoc::new("mux_top", "blif", MUX_GATE_BLIF)),
        Arc::new(UploadDoc::new("full_adder", "verilog", FULL_ADDER_V)),
        Arc::new(UploadDoc::new(
            "tiny",
            "bookshelf",
            stitch_bookshelf(TINY_NODES, TINY_NETS, Some(TINY_PL)),
        )),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_stable_and_distinct() {
        let docs = uploads();
        assert_eq!(docs.len(), 5);
        let mut fps: Vec<u64> = docs.iter().map(|d| d.fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), docs.len(), "fixtures must not collide");
        // Same call, same bytes: include_str! + stitching is pure.
        let again = uploads();
        for (a, b) in docs.iter().zip(&again) {
            assert_eq!(a.fingerprint, b.fingerprint);
        }
    }
}
