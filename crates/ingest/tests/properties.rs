//! Property-based tests for the ingestion front door.
//!
//! Two contracts matter more than any single parser feature:
//!
//! * **Round-trip fingerprint stability** — a design written out as
//!   BLIF and as structural Verilog must ingest to the *same*
//!   canonical fingerprint, whatever names it carries.
//! * **No panics, ever** — arbitrarily mutated fixture bytes must
//!   produce a typed outcome, never a crash. This is the whole point
//!   of a front door for untrusted input.

use eda_cloud_ingest::{fixtures, FrontDoor, FrontDoorConfig};
use eda_cloud_netlist::formats::{write_blif, write_verilog};
use eda_cloud_netlist::Netlist;
use eda_cloud_serve::{IngestOutcome, Ingestor, UploadDoc};
use eda_cloud_tech::{CellKind, Library};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The pool profile is expensive to build; share one door across cases.
fn door() -> &'static FrontDoor {
    static DOOR: OnceLock<FrontDoor> = OnceLock::new();
    DOOR.get_or_init(|| FrontDoor::with_pool_profile(FrontDoorConfig::default()))
}

/// Deterministic combinational gate soup: `seed` fully determines the
/// structure. Every sink-less net becomes a primary output so the
/// floating-net lint passes.
fn gate_soup(seed: u64) -> Netlist {
    let lib = Library::synthetic_14nm();
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    let mut nl = Netlist::new(format!("soup{seed}"), lib.name());
    let n_pis = 2 + next(4);
    let mut nets: Vec<u32> = (0..n_pis).map(|i| nl.add_input(format!("a{i}"))).collect();
    let kinds = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Xnor2,
        CellKind::Maj3,
        CellKind::Aoi21,
    ];
    let n_gates = 1 + next(20);
    for g in 0..n_gates {
        let kind = kinds[next(kinds.len())];
        let master = lib.cell_by_kind(kind).expect("library kind").name.clone();
        let inputs: Vec<u32> = (0..kind.input_count()).map(|_| nets[next(nets.len())]).collect();
        let out = nl.add_net(format!("w{g}"));
        nl.add_cell(format!("u{g}"), master, kind, inputs, out);
        nets.push(out);
    }
    let sink_less: Vec<(String, u32)> = nl
        .nets()
        .iter()
        .enumerate()
        .filter(|(_, n)| n.sinks.is_empty())
        .map(|(i, n)| (n.name.clone(), i as u32))
        .collect();
    for (name, id) in sink_less {
        nl.add_output(name, id);
    }
    nl
}

/// Deterministic byte-level mutation of `text`. `choice` picks the
/// operator, `pos` the site; the result is coerced back to UTF-8.
fn mutate(text: &str, choice: u8, pos: usize, byte: u8) -> String {
    let mut bytes = text.as_bytes().to_vec();
    if bytes.is_empty() {
        return String::new();
    }
    let at = pos % bytes.len();
    match choice % 5 {
        0 => bytes.truncate(at),                  // torn upload
        1 => {
            bytes.remove(at);                     // dropped byte
        }
        2 => bytes.insert(at, byte),              // injected byte
        3 => bytes[at] = byte,                    // flipped byte
        _ => {
            let line = text.lines().next().unwrap_or("").as_bytes().to_vec();
            bytes.splice(at..at, line);           // duplicated header
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// write → parse → canonicalize fingerprints agree across BLIF and
    /// Verilog serializations of the same structure, and renaming the
    /// upload does not change its identity.
    #[test]
    fn round_trip_fingerprints_are_format_and_name_independent(seed in 0u64..500) {
        let lib = Library::synthetic_14nm();
        let nl = gate_soup(seed);
        nl.check().expect("soup is structurally valid");
        let as_blif = UploadDoc::new("via_blif", "blif", write_blif(&nl, &lib));
        let as_verilog = UploadDoc::new("via_verilog", "verilog", write_verilog(&nl, &lib));
        let (rb, db) = door().ingest_doc(&as_blif).expect("blif ingests");
        let (rv, dv) = door().ingest_doc(&as_verilog).expect("verilog ingests");
        prop_assert_eq!(db.fingerprint, dv.fingerprint, "seed {}", seed);
        prop_assert_eq!(rb.nodes, rv.nodes);
        prop_assert_eq!(rb.edges, rv.edges);
        prop_assert_eq!(rb.depth, rv.depth);
        prop_assert_eq!(rb.ood_distance_micros, rv.ood_distance_micros);
        // Same text under a different client name: same fingerprint.
        let renamed = UploadDoc::new("renamed", "blif", as_blif.text.clone());
        let (_, dr) = door().ingest_doc(&renamed).expect("renamed ingests");
        prop_assert_eq!(dr.fingerprint, db.fingerprint);
    }

    /// Ingestion of mutated fixture bytes returns a typed outcome and
    /// never panics; accepted mutants must still be deterministic.
    #[test]
    fn parsers_never_panic_on_mutated_fixtures(
        which in 0usize..5,
        choice in 0u8..5,
        pos in 0usize..4096,
        byte in 0u8..255,
    ) {
        let base = fixtures::uploads();
        let doc = &base[which];
        let mutant = UploadDoc::new(
            doc.name.clone(),
            doc.format.clone(),
            mutate(&doc.text, choice, pos, byte),
        );
        let first = door().ingest(&mutant);
        let second = door().ingest(&mutant);
        prop_assert_eq!(&first, &second, "outcomes are pure");
        if let IngestOutcome::Rejected { reason } = first {
            prop_assert!(!reason.is_empty());
        }
    }
}
