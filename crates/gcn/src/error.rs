//! Typed errors for the GCN kernels and training loop.

use std::fmt;

/// Errors surfaced by the GCN crate's fallible APIs instead of the
/// panics the hot paths used to hide: degenerate architectures, empty
/// training sets, diverged losses, and malformed sparse operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcnError {
    /// The training split selects no samples.
    EmptyTrainingSet,
    /// A split index points past the end of the sample corpus.
    SampleOutOfRange {
        /// The offending index.
        index: usize,
        /// The corpus length.
        len: usize,
    },
    /// The architecture has no GCN layers, or a layer (or the FC
    /// stage) has zero width.
    ZeroDimLayer,
    /// An epoch's mean loss left the finite range — the run has
    /// diverged and further steps only corrupt the weights.
    NonFiniteLoss {
        /// Zero-based epoch at which the loss became non-finite.
        epoch: usize,
    },
    /// Two operands of a matrix kernel disagree in shape.
    ShapeMismatch {
        /// The kernel that rejected its operands.
        op: &'static str,
        /// `(rows, cols)` the kernel expected of the right-hand side.
        expected: (usize, usize),
        /// `(rows, cols)` it found.
        found: (usize, usize),
    },
    /// A CSR entry's column index points outside the matrix — the
    /// operand is corrupt (e.g. deserialized from a damaged document).
    ColumnOutOfRange {
        /// Row holding the offending entry.
        row: usize,
        /// The out-of-range column index.
        col: usize,
        /// The matrix's column count.
        cols: usize,
    },
    /// A CSR row-offset table is inconsistent with its entry arrays.
    CorruptSparse {
        /// First row whose offsets are inconsistent.
        row: usize,
    },
}

impl fmt::Display for GcnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcnError::EmptyTrainingSet => write!(f, "training set is empty"),
            GcnError::SampleOutOfRange { index, len } => {
                write!(
                    f,
                    "split references sample {index} but the corpus has {len}"
                )
            }
            GcnError::ZeroDimLayer => {
                write!(
                    f,
                    "model architecture has a zero-width layer (or no GCN layers)"
                )
            }
            GcnError::NonFiniteLoss { epoch } => {
                write!(f, "non-finite loss at epoch {epoch}: training diverged")
            }
            GcnError::ShapeMismatch {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{op}: shape mismatch, expected {}x{} but found {}x{}",
                    expected.0, expected.1, found.0, found.1
                )
            }
            GcnError::ColumnOutOfRange { row, col, cols } => {
                write!(f, "sparse row {row} holds column {col}, outside 0..{cols}")
            }
            GcnError::CorruptSparse { row } => {
                write!(
                    f,
                    "sparse row {row} has an offset table inconsistent with its entries"
                )
            }
        }
    }
}

impl std::error::Error for GcnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_payload() {
        let cases: Vec<(GcnError, &str)> = vec![
            (GcnError::EmptyTrainingSet, "empty"),
            (GcnError::SampleOutOfRange { index: 9, len: 3 }, "sample 9"),
            (GcnError::ZeroDimLayer, "zero-width"),
            (GcnError::NonFiniteLoss { epoch: 4 }, "epoch 4"),
            (
                GcnError::ShapeMismatch {
                    op: "spmm",
                    expected: (2, 3),
                    found: (4, 5),
                },
                "2x3",
            ),
            (
                GcnError::ColumnOutOfRange {
                    row: 1,
                    col: 7,
                    cols: 4,
                },
                "column 7",
            ),
            (GcnError::CorruptSparse { row: 2 }, "row 2"),
        ];
        for (e, needle) in cases {
            assert!(
                e.to_string().contains(needle),
                "{e} should mention {needle}"
            );
        }
    }

    #[test]
    fn trait_bounds() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<GcnError>();
    }
}
