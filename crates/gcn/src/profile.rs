//! Training-corpus feature profile for out-of-distribution gating.
//!
//! The serving tier's GCN was trained on a known corpus; predictions on
//! designs far outside that corpus's feature distribution are exactly
//! where LOSTIN-style models degrade. A [`FeatureProfile`] summarizes
//! the corpus as a per-feature mean and scale of graph-level feature
//! vectors, both held in **integer micros** so the distance score is a
//! pure function of the inputs — no float-accumulation-order
//! dependence, byte-identical across platforms and worker counts.

use crate::{GraphSample, LoadWeightsError};
use std::fmt::Write as _;

const MICROS: i64 = 1_000_000;

/// Per-feature integer-micros summary of a training corpus.
///
/// `mean` is the average graph-level feature vector; `scale` is the
/// mean absolute deviation around it (floored at 1 micro so division
/// is always defined). Distances are normalized per feature and
/// averaged, so a score of `1_000_000` means "one corpus deviation
/// away on average".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureProfile {
    dim: usize,
    samples: usize,
    mean_micros: Vec<i64>,
    scale_micros: Vec<i64>,
}

impl FeatureProfile {
    /// Summarize a corpus of graph samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or the samples disagree on feature
    /// dimension.
    #[must_use]
    pub fn from_samples<'a>(samples: impl IntoIterator<Item = &'a GraphSample>) -> Self {
        let vectors: Vec<Vec<i64>> = samples.into_iter().map(graph_vector_micros).collect();
        assert!(!vectors.is_empty(), "profile needs at least one sample");
        let dim = vectors[0].len();
        assert!(
            vectors.iter().all(|v| v.len() == dim),
            "samples must share a feature dimension"
        );
        let n = vectors.len() as i64;
        let mean_micros: Vec<i64> = (0..dim)
            .map(|f| vectors.iter().map(|v| v[f]).sum::<i64>().div_euclid(n))
            .collect();
        let scale_micros: Vec<i64> = (0..dim)
            .map(|f| {
                let mad = vectors
                    .iter()
                    .map(|v| (v[f] - mean_micros[f]).abs())
                    .sum::<i64>()
                    .div_euclid(n);
                mad.max(1)
            })
            .collect();
        Self { dim, samples: vectors.len(), mean_micros, scale_micros }
    }

    /// Feature dimension of the profiled corpus.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of samples the profile was built from.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Distance of one graph from the corpus: per-feature normalized
    /// absolute deviation from the mean, averaged over features, in
    /// micros (`1_000_000` = one corpus deviation).
    ///
    /// # Panics
    ///
    /// Panics if the sample's feature dimension differs from the
    /// profile's.
    #[must_use]
    pub fn distance_micros(&self, sample: &GraphSample) -> u64 {
        let v = graph_vector_micros(sample);
        assert_eq!(v.len(), self.dim, "feature dimension mismatch");
        let total: i128 = (0..self.dim)
            .map(|f| {
                let dev = i128::from((v[f] - self.mean_micros[f]).abs());
                dev * i128::from(MICROS) / i128::from(self.scale_micros[f])
            })
            .sum();
        u64::try_from(total / self.dim as i128).unwrap_or(u64::MAX)
    }

    /// Canonical byte-stable text export (the profile equivalent of a
    /// model-snapshot save).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "feature_profile v1");
        let _ = writeln!(out, "dim {} samples {}", self.dim, self.samples);
        for f in 0..self.dim {
            let _ = writeln!(out, "f{f} {} {}", self.mean_micros[f], self.scale_micros[f]);
        }
        out
    }

    /// Parse the canonical text export.
    ///
    /// # Errors
    ///
    /// Returns [`LoadWeightsError`] on any structural mismatch.
    pub fn from_text(text: &str) -> Result<Self, LoadWeightsError> {
        let err = |message: &str| LoadWeightsError { message: message.to_owned() };
        let mut lines = text.lines();
        if lines.next() != Some("feature_profile v1") {
            return Err(err("expected `feature_profile v1` header"));
        }
        let shape = lines.next().ok_or_else(|| err("missing shape line"))?;
        let fields: Vec<&str> = shape.split_whitespace().collect();
        if fields.len() != 4 || fields[0] != "dim" || fields[2] != "samples" {
            return Err(err("expected `dim D samples N`"));
        }
        let dim: usize = fields[1].parse().map_err(|_| err("bad dim"))?;
        let samples: usize = fields[3].parse().map_err(|_| err("bad sample count"))?;
        let mut mean_micros = Vec::with_capacity(dim);
        let mut scale_micros = Vec::with_capacity(dim);
        for f in 0..dim {
            let line = lines.next().ok_or_else(|| err("missing feature line"))?;
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != format!("f{f}") {
                return Err(err("malformed feature line"));
            }
            mean_micros.push(parts[1].parse().map_err(|_| err("bad mean"))?);
            let scale: i64 = parts[2].parse().map_err(|_| err("bad scale"))?;
            if scale < 1 {
                return Err(err("scale must be >= 1"));
            }
            scale_micros.push(scale);
        }
        Ok(Self { dim, samples, mean_micros, scale_micros })
    }
}

/// A graph's feature vector: per-feature mean over nodes, in integer
/// micros. Each node feature is rounded to micros before summing, so
/// the vector is independent of accumulation order.
fn graph_vector_micros(sample: &GraphSample) -> Vec<i64> {
    let rows = sample.features.rows().max(1) as i64;
    let cols = sample.features.cols();
    let mut sums = vec![0i64; cols];
    for r in 0..sample.features.rows() {
        for (f, slot) in sums.iter_mut().enumerate() {
            *slot += to_micros(sample.features.get(r, f));
        }
    }
    sums.iter_mut().for_each(|s| *s = s.div_euclid(rows));
    sums
}

fn to_micros(v: f64) -> i64 {
    let clamped = v.clamp(-1.0e12, 1.0e12);
    (clamped * MICROS as f64).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample(family: &str, size: u32) -> GraphSample {
        let aig = generators::build_family(family, size).expect("known family");
        GraphSample::new(&DesignGraph::from_aig(&aig), [1.0; 4])
    }

    #[test]
    fn corpus_members_score_near_and_outliers_far() {
        let corpus: Vec<GraphSample> = ["adder", "parity", "comparator"]
            .iter()
            .flat_map(|f| [4u32, 6, 8].map(|s| sample(f, s)))
            .collect();
        let profile = FeatureProfile::from_samples(corpus.iter());
        assert_eq!(profile.samples(), 9);
        let in_dist = profile.distance_micros(&corpus[0]);
        // A much larger design of an unseen family sits farther out.
        let outlier = sample("hamming", 16);
        let far = profile.distance_micros(&outlier);
        assert!(far > in_dist, "outlier {far} vs corpus member {in_dist}");
    }

    #[test]
    fn distance_is_deterministic() {
        let corpus: Vec<GraphSample> = [4u32, 6, 8].map(|s| sample("adder", s)).into();
        let profile = FeatureProfile::from_samples(corpus.iter());
        let probe = sample("max", 6);
        let d1 = profile.distance_micros(&probe);
        let profile2 = FeatureProfile::from_samples(corpus.iter());
        assert_eq!(profile, profile2);
        assert_eq!(d1, profile2.distance_micros(&probe));
    }

    #[test]
    fn text_round_trip_is_exact() {
        let corpus: Vec<GraphSample> = [4u32, 6].map(|s| sample("gray2bin", s)).into();
        let profile = FeatureProfile::from_samples(corpus.iter());
        let text = profile.to_text();
        let back = FeatureProfile::from_text(&text).expect("canonical text parses");
        assert_eq!(profile, back);
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(FeatureProfile::from_text("").is_err());
        assert!(FeatureProfile::from_text("feature_profile v1\ndim 2 samples 1\nf0 0 1\n").is_err());
        assert!(FeatureProfile::from_text("feature_profile v1\ndim 1 samples 1\nf0 0 0\n").is_err());
    }
}
