//! Deterministic int8 fixed-point inference.
//!
//! [`QuantizedPredictor`] is a serving-only replica of
//! [`RuntimePredictor`]: every weight matrix is quantized once to
//! symmetric per-tensor int8 (`scale = max|w| / 127`, values rounded
//! half-away-from-zero and clamped to `±127`), and every dense product
//! runs as an integer GEMM against dynamically quantized activations,
//! dequantized back to `f64` between layers. The sparse adjacency
//! aggregation — a sum of a handful of neighbor rows — stays in `f64`:
//! it is cheap, and quantizing it would compound error for no
//! bandwidth win.
//!
//! Determinism: quantization parameters are pure functions of the
//! tensor contents (a max-abs fold), every GEMM accumulates in `i32`
//! in a fixed order, and nothing depends on thread count — the same
//! weights and inputs produce bit-identical predictions on any worker
//! configuration. Accumulators cannot overflow: `|q| ≤ 127`, so a
//! `k`-term dot product is bounded by `k·127²` (`k ≤ 65 536` covers
//! every architecture [`crate::RuntimePredictor::load_weights`]
//! accepts, staying under `2³⁰`).
//!
//! The kernel design, bottom up:
//!
//! - Rounding is branchless: `trunc(q ± 0.5)` equals
//!   round-half-away-from-zero, and hot loops multiply by a precomputed
//!   reciprocal of the scale instead of dividing per element.
//!   Activations quantize through an `f64 → i32 → i16` staging pipeline
//!   ([`quantize_slice`] plus a narrowing pass) because each half
//!   autovectorizes where a fused `f64 → i8` cast does not.
//! - The GEMM gathers each activation row's nonzero `(index, code)`
//!   pairs once (zeros — most entries, after ReLU — skip their weight
//!   row entirely, like the float kernel's skip-zero path) and folds
//!   them into an `i32` accumulator row four weight rows at a time
//!   ([`qaxpy4`]/[`qaxpy2`]/[`qaxpy`]). Weight codes are kept
//!   pre-widened to `i16` so the unit-stride inner loops run 8-lane
//!   SSE2 `pmullw` multiplies with no per-load sign extension, and row
//!   pairs are summed at `i16` (exact: `2·127² < 2¹⁵`) before widening.
//!   Every kernel is `#[inline(never)]`: inlined into the GEMM loop
//!   nest, LLVM's alias analysis gives up and emits scalar code.
//! - Integer addition is associative, so every regrouping above is
//!   bit-identical to the naive double loop.
//! - Scratch (quantized images, accumulators, activation ping-pong
//!   buffers) lives in a per-thread cell reused across calls; every
//!   slot is overwritten before it is read.

use crate::batch::GraphBatch;
use crate::model::{saturating_exp, LoadWeightsError, MAX_LOG_SECS};
use crate::{GraphSample, Matrix, ModelConfig, RuntimePredictor};

/// A per-tensor symmetric int8 quantized weight matrix, stored
/// row-major like its float counterpart so the AXPY GEMM streams whole
/// weight rows with unit stride.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrix {
    /// Logical rows of the float weight (the GEMM reduction dim `k`).
    in_dim: usize,
    /// Logical columns (output width).
    out_dim: usize,
    /// Dequantization scale: `float ≈ q · scale`.
    scale: f64,
    /// `data[r·out_dim .. (r+1)·out_dim]` is weight row `r`.
    data: Vec<i8>,
    /// `data` pre-widened to `i16`, same layout. The AXPY kernels
    /// multiply `i16` activations against `i16` weight rows, and loading
    /// codes already at product width saves a sign-extension per vector
    /// load in the innermost loop. Derived from `data`, never
    /// serialized.
    wide: Vec<i16>,
}

impl QuantizedMatrix {
    /// Assemble from parts, deriving the widened copy of the codes.
    fn from_codes(in_dim: usize, out_dim: usize, scale: f64, data: Vec<i8>) -> Self {
        let wide = data.iter().map(|&q| i16::from(q)).collect();
        Self {
            in_dim,
            out_dim,
            scale,
            data,
            wide,
        }
    }

    /// Quantize a float weight matrix: `scale = max|w| / 127` (1.0 for
    /// an all-zero tensor), `q = round(w / scale)` clamped to `±127`
    /// (computed as a multiply by the precomputed reciprocal).
    #[must_use]
    pub fn quantize(w: &Matrix) -> Self {
        let (in_dim, out_dim) = (w.rows(), w.cols());
        let scale = tensor_scale(w.data());
        let inv_scale = 1.0 / scale;
        let data = w
            .data()
            .iter()
            .map(|&v| quantize_value(v, inv_scale))
            .collect();
        Self::from_codes(in_dim, out_dim, scale, data)
    }

    /// Reconstruct the float weight: `w[r][c] = q[r][c] · scale`.
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.in_dim, self.out_dim);
        for r in 0..self.in_dim {
            let row = &self.data[r * self.out_dim..(r + 1) * self.out_dim];
            for (c, &q) in row.iter().enumerate() {
                out.set(r, c, f64::from(q) * self.scale);
            }
        }
        out
    }

    /// Logical `(rows, cols)` of the float weight this encodes.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.in_dim, self.out_dim)
    }

    /// The dequantization scale.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// Per-tensor symmetric scale: `max|v| / 127`, or 1.0 for all zeros so
/// quantization stays a no-op instead of dividing by zero. The fold
/// runs four independent max accumulators to break the serial
/// dependency chain; `f64::max` is associative and commutative, so the
/// regrouping is exact.
fn tensor_scale(values: &[f64]) -> f64 {
    let mut m = [0.0f64; 4];
    let mut chunks = values.chunks_exact(4);
    for c in &mut chunks {
        for (mi, &v) in m.iter_mut().zip(c) {
            *mi = mi.max(v.abs());
        }
    }
    let mut maxabs = m[0].max(m[1]).max(m[2].max(m[3]));
    for &v in chunks.remainder() {
        maxabs = maxabs.max(v.abs());
    }
    if maxabs == 0.0 {
        1.0
    } else {
        maxabs / 127.0
    }
}

/// Round half-away-from-zero and clamp into the symmetric int8 range.
/// Takes the *reciprocal* of the scale so hot loops multiply instead of
/// divide per element. Branchless — rounding is `trunc(q ± 0.5)`, which
/// equals round-half-away-from-zero and autovectorizes, unlike
/// `f64::round` — and the float-to-int `as` cast keeps NaN degrading to
/// zero.
fn quantize_value(v: f64, inv_scale: f64) -> i8 {
    let q = v * inv_scale;
    (q + 0.5f64.copysign(q)).clamp(-127.0, 127.0) as i8
}

/// One quantized graph-convolution layer (aggregation + self weights).
#[derive(Debug, Clone, PartialEq)]
struct QuantGcnLayer {
    w: QuantizedMatrix,
    b: QuantizedMatrix,
}

/// One quantized dense layer; the bias stays `f64` (it is added after
/// dequantization, so quantizing it would only add error).
#[derive(Debug, Clone, PartialEq)]
struct QuantDenseLayer {
    w: QuantizedMatrix,
    bias: Vec<f64>,
}

/// Buffers private to one [`qgemm_into`] call, grouped so callers can
/// borrow them disjointly from the activation matrices they ping-pong.
#[derive(Default)]
struct GemmScratch {
    /// Row-major image of the activation operand: int8 codes held at
    /// `i16` (the kernels' product width) so the gather feeding the
    /// AXPYs never widens per element.
    qact: Vec<i16>,
    /// Wide staging for activation quantization (the f64 → i32 pipeline
    /// autovectorizes; a direct f64 → i8 cast does not).
    qact32: Vec<i32>,
    /// Nonzero (index, code) pairs of one activation row.
    nz: Vec<(u32, i16)>,
    /// One output row of `i32` GEMM accumulators.
    acc: Vec<i32>,
}

/// Scratch buffers reused across layers/chunks of one prediction call.
#[derive(Default)]
struct QuantScratch {
    gemm: GemmScratch,
    agg: Matrix,
    lin: Matrix,
    tmp: Matrix,
    h: Matrix,
}

std::thread_local! {
    /// Per-thread scratch reused across prediction calls. Serving
    /// threads call `predict_log` per request; without reuse every call
    /// would re-fault and re-zero tens of megabytes of buffers, which
    /// costs more than the GEMMs it feeds. Every buffer is fully
    /// (re)initialized before it is read, so reuse cannot leak state
    /// between requests and results stay bit-identical.
    static SCRATCH: std::cell::RefCell<QuantScratch> =
        std::cell::RefCell::new(QuantScratch::default());
}

/// Int8 serving replica of [`RuntimePredictor`]: identical architecture
/// and pooling, with every dense product quantized. Predictions
/// approximate the float model's (per-tensor int8 keeps the runtime
/// regressor within a few percent) and are bit-for-bit reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPredictor {
    gcn: Vec<QuantGcnLayer>,
    fc: QuantDenseLayer,
    head: QuantDenseLayer,
    config: ModelConfig,
}

/// The integer AXPY at the bottom of the quantized GEMM:
/// `acc += x · wrow`, element-wise. |x·w| ≤ 127² = 16129, so the product
/// fits `i16` exactly and the multiply maps to 8-lane SSE2 `pmullw`.
/// `#[inline(never)]` is load-bearing: inlined into the GEMM loop nest,
/// LLVM's alias analysis gives up and emits a scalar loop (~4x slower);
/// as a standalone function the loop autovectorizes.
#[inline(never)]
fn qaxpy(acc: &mut [i32], wrow: &[i16], x: i16) {
    for (o, &a) in acc.iter_mut().zip(wrow) {
        *o += i32::from(x * a);
    }
}

/// Two-row [`qaxpy`]: `acc += x0 · w0 + x1 · w1`, with the pair summed
/// at `i16` *before* widening — exact, since `|x0·a + x1·b| ≤ 2·127² =
/// 32 258 < 2¹⁵` — so half the widening work and half the accumulator
/// load/store traffic per MAC. Integer addition is associative, so the
/// result is bit-identical to two single AXPYs.
#[inline(never)]
fn qaxpy2(acc: &mut [i32], w0: &[i16], w1: &[i16], x0: i16, x1: i16) {
    for ((o, &a), &b) in acc.iter_mut().zip(w0).zip(w1) {
        *o += i32::from(x0 * a + x1 * b);
    }
}

/// Four-row [`qaxpy`]: `acc += x0·w0 + x1·w1 + x2·w2 + x3·w3` as two
/// `i16` pair sums, cutting the accumulator traffic per MAC to a
/// quarter of the single-row kernel's.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn qaxpy4(
    acc: &mut [i32],
    w0: &[i16],
    w1: &[i16],
    w2: &[i16],
    w3: &[i16],
    x0: i16,
    x1: i16,
    x2: i16,
    x3: i16,
) {
    for ((((o, &a), &b), &c), &d) in acc.iter_mut().zip(w0).zip(w1).zip(w2).zip(w3) {
        *o += i32::from(x0 * a + x1 * b) + i32::from(x2 * c + x3 * d);
    }
}

/// Quantize a full activation tensor into `i32` codes in `[-127, 127]`
/// (same value mapping as [`quantize_value`]). Staging wide keeps the
/// multiply / round / clamp pipeline vectorized; the caller narrows the
/// codes to `i8` afterwards. `#[inline(never)]` for the same reason as
/// [`qaxpy`].
#[inline(never)]
fn quantize_slice(out: &mut [i32], values: &[f64], inv_scale: f64) {
    for (q, &v) in out.iter_mut().zip(values) {
        let t = v * inv_scale;
        *q = (t + 0.5f64.copysign(t)).clamp(-127.0, 127.0) as i32;
    }
}

/// Dequantize one accumulator row into the f64 output row. Extracted so
/// the `i32 → f64` convert-and-scale loop vectorizes (`cvtdq2pd`).
#[inline(never)]
fn dequant_row(out: &mut [f64], acc: &[i32], deq: f64) {
    for (o, &v) in out.iter_mut().zip(acc) {
        *o = f64::from(v) * deq;
    }
}

/// Dynamically quantized GEMM: quantize `a` per-tensor to int8, multiply
/// against the pre-quantized weights in `i32`, dequantize into `out`.
/// The kernel is an integer AXPY mirroring the float path's: per
/// activation row, the nonzero quantized activations are gathered once
/// (zeros — most entries, after ReLU — are skipped outright) and then
/// folded into the `i32` accumulator row two weight rows at a time.
fn qgemm_into(a: &Matrix, w: &QuantizedMatrix, scratch: &mut GemmScratch, out: &mut Matrix) {
    let k = a.cols();
    let m = w.out_dim;
    assert_eq!(k, w.in_dim, "inner dimensions must agree");
    let a_scale = tensor_scale(a.data());
    let inv_scale = 1.0 / a_scale;
    let GemmScratch {
        qact,
        qact32,
        nz,
        acc,
    } = scratch;
    qact32.clear();
    qact32.resize(a.data().len(), 0);
    quantize_slice(qact32, a.data(), inv_scale);
    let deq = a_scale * w.scale;
    out.reshape_for_overwrite(a.rows(), m);
    let out_data = out.data_mut();
    qact.clear();
    qact.extend(qact32.iter().map(|&v| v as i16));
    nz.clear();
    nz.resize(k, (0, 0));
    for r in 0..a.rows() {
        acc.clear();
        acc.resize(m, 0);
        let arow = &qact[r * k..(r + 1) * k];
        // Branchless gather of the nonzero (index, code) pairs: every
        // element is written, the cursor only advances past nonzeros —
        // no data-dependent branch for the predictor to miss.
        let mut nlen = 0usize;
        for (i, &x) in arow.iter().enumerate() {
            nz[nlen] = (i as u32, x);
            nlen += usize::from(x != 0);
        }
        let wrow = |i: u32| &w.wide[i as usize * m..][..m];
        let mut quads = nz[..nlen].chunks_exact(4);
        for q in &mut quads {
            let ((i0, x0), (i1, x1), (i2, x2), (i3, x3)) = (q[0], q[1], q[2], q[3]);
            qaxpy4(acc, wrow(i0), wrow(i1), wrow(i2), wrow(i3), x0, x1, x2, x3);
        }
        let mut rest = quads.remainder();
        if let &[(i0, x0), (i1, x1), ref tail @ ..] = rest {
            qaxpy2(acc, wrow(i0), wrow(i1), x0, x1);
            rest = tail;
        }
        if let &[(i, x)] = rest {
            qaxpy(acc, wrow(i), x);
        }
        dequant_row(&mut out_data[r * m..(r + 1) * m], acc, deq);
    }
}

impl QuantizedPredictor {
    /// Quantize a trained float model. Pure function of the weights:
    /// the same model always produces the same quantized replica.
    #[must_use]
    pub fn quantize(model: &RuntimePredictor) -> Self {
        Self {
            gcn: model
                .gcn
                .iter()
                .map(|l| QuantGcnLayer {
                    w: QuantizedMatrix::quantize(&l.w),
                    b: QuantizedMatrix::quantize(&l.b),
                })
                .collect(),
            fc: QuantDenseLayer {
                w: QuantizedMatrix::quantize(&model.fc.w),
                bias: model.fc.bias.data().to_vec(),
            },
            head: QuantDenseLayer {
                w: QuantizedMatrix::quantize(&model.head.w),
                bias: model.head.bias.data().to_vec(),
            },
            config: model.config().clone(),
        }
    }

    /// Reconstruct a float model carrying the dequantized weights (and
    /// a fresh optimizer state) — the warm start a retraining loop uses
    /// when its deployed base is quantized.
    #[must_use]
    pub fn dequantize(&self) -> RuntimePredictor {
        let mut model = RuntimePredictor::new(&self.config, 0);
        for (layer, q) in model.gcn.iter_mut().zip(&self.gcn) {
            layer.w = q.w.dequantize();
            layer.b = q.b.dequantize();
        }
        model.fc.w = self.fc.w.dequantize();
        model.fc.bias = Matrix::from_vec(1, self.fc.bias.len(), self.fc.bias.clone());
        model.head.w = self.head.w.dequantize();
        model.head.bias = Matrix::from_vec(1, self.head.bias.len(), self.head.bias.clone());
        model
    }

    /// The architecture this model was built with.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Run the quantized GCN stack over one activation matrix in place
    /// of `scratch.h`, then return the final activations by reference.
    fn run_gcn_stack<'s>(
        &self,
        a_norm: &crate::SparseMatrix,
        scratch: &'s mut QuantScratch,
    ) -> &'s Matrix {
        for layer in &self.gcn {
            a_norm
                .matmul_into(&scratch.h, &mut scratch.agg)
                .expect("sample adjacency is validated at construction");
            qgemm_into(&scratch.agg, &layer.w, &mut scratch.gemm, &mut scratch.lin);
            qgemm_into(&scratch.h, &layer.b, &mut scratch.gemm, &mut scratch.tmp);
            scratch.lin.add_assign(&scratch.tmp);
            scratch.lin.relu_in_place();
            std::mem::swap(&mut scratch.h, &mut scratch.lin);
        }
        &scratch.h
    }

    /// Dense readout shared by the single and batched paths: FC + ReLU,
    /// then the linear head, per pooled row.
    fn readout(&self, pooled: &Matrix, scratch: &mut QuantScratch) -> Vec<[f64; 4]> {
        qgemm_into(pooled, &self.fc.w, &mut scratch.gemm, &mut scratch.lin);
        for r in 0..scratch.lin.rows() {
            for c in 0..scratch.lin.cols() {
                let v = scratch.lin.get(r, c) + self.fc.bias[c];
                scratch.lin.set(r, c, v.max(0.0));
            }
        }
        qgemm_into(
            &scratch.lin,
            &self.head.w,
            &mut scratch.gemm,
            &mut scratch.tmp,
        );
        (0..scratch.tmp.rows())
            .map(|g| [0, 1, 2, 3].map(|c| scratch.tmp.get(g, c) + self.head.bias[c]))
            .collect()
    }

    /// Predicted `ln(runtime)` for 1/2/4/8 vCPUs.
    #[must_use]
    pub fn predict_log(&self, sample: &GraphSample) -> [f64; 4] {
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            scratch.h.clone_from(&sample.features);
            let h = self.run_gcn_stack(&sample.a_norm, scratch);
            let n = h.rows();
            let mut pooled = h.sum_rows();
            let scale = 1.0 / (n as f64).sqrt();
            for v in pooled.data_mut() {
                *v *= scale;
            }
            self.readout(&pooled, scratch)[0]
        })
    }

    /// Predicted runtimes in seconds, saturated like
    /// [`RuntimePredictor::predict_secs`].
    #[must_use]
    pub fn predict_secs(&self, sample: &GraphSample) -> [f64; 4] {
        self.predict_log(sample).map(saturating_exp)
    }

    /// Predicted speedups of 2/4/8 vCPUs over 1 vCPU, saturated like
    /// [`RuntimePredictor::predict_speedups`].
    #[must_use]
    pub fn predict_speedups(&self, sample: &GraphSample) -> [f64; 3] {
        let l = self.predict_log(sample);
        [1, 2, 3].map(|k| {
            let diff = l[0] - l[k];
            if diff.is_nan() {
                1.0
            } else {
                diff.clamp(-MAX_LOG_SECS, MAX_LOG_SECS).exp()
            }
        })
    }

    /// Batched [`QuantizedPredictor::predict_log`] over a packed batch,
    /// in batch order. Activation quantization is per chunk, so the
    /// results depend on the (deterministic) batch packing but never on
    /// thread or worker count — the same batch always yields the same
    /// bytes. A single-sample batch reproduces
    /// [`QuantizedPredictor::predict_log`] exactly.
    #[must_use]
    pub fn predict_log_batch(&self, batch: &GraphBatch) -> Vec<[f64; 4]> {
        if batch.is_empty() {
            return Vec::new();
        }
        let d = self.fc.w.in_dim;
        SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let mut pooled = Matrix::zeros(batch.len(), d);
            let mut sample = 0usize;
            for chunk in &batch.chunks {
                scratch.h.clone_from(&chunk.features);
                self.run_gcn_stack(&chunk.a_norm, scratch);
                for &(start, n) in &chunk.segments {
                    let prow = &mut pooled.data_mut()[sample * d..(sample + 1) * d];
                    for r in start..start + n {
                        for (o, &v) in prow.iter_mut().zip(scratch.h.row(r)) {
                            *o += v;
                        }
                    }
                    let scale = 1.0 / (n as f64).sqrt();
                    for o in prow {
                        *o *= scale;
                    }
                    sample += 1;
                }
            }
            self.readout(&pooled, scratch)
        })
    }

    /// Batched [`QuantizedPredictor::predict_secs`].
    #[must_use]
    pub fn predict_secs_batch(&self, batch: &GraphBatch) -> Vec<[f64; 4]> {
        self.predict_log_batch(batch)
            .into_iter()
            .map(|l| l.map(saturating_exp))
            .collect()
    }

    /// Serialize as a plain-text document, mirroring
    /// [`RuntimePredictor::save_weights`]: an architecture header, then
    /// one line per tensor — int8 tensors as `label rows cols scale`
    /// followed by integer codes (in storage order), float biases as
    /// `{:e}` values. Round-trips exactly.
    #[must_use]
    pub fn save_weights(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let dims: Vec<String> = self.config.gcn_dims.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "gcn-runtime-predictor-q8 v1");
        let _ = writeln!(out, "gcn_dims {}", dims.join(" "));
        let _ = writeln!(out, "fc_dim {}", self.config.fc_dim);
        let dump_q = |out: &mut String, label: &str, m: &QuantizedMatrix| {
            let _ = write!(out, "{label} {} {} {:e}", m.in_dim, m.out_dim, m.scale);
            for &q in &m.data {
                let _ = write!(out, " {q}");
            }
            let _ = writeln!(out);
        };
        let dump_f = |out: &mut String, label: &str, v: &[f64]| {
            let _ = write!(out, "{label} {}", v.len());
            for x in v {
                let _ = write!(out, " {x:e}");
            }
            let _ = writeln!(out);
        };
        for (i, layer) in self.gcn.iter().enumerate() {
            dump_q(&mut out, &format!("gcn{i}.w"), &layer.w);
            dump_q(&mut out, &format!("gcn{i}.b"), &layer.b);
        }
        dump_q(&mut out, "fc.w", &self.fc.w);
        dump_f(&mut out, "fc.bias", &self.fc.bias);
        dump_q(&mut out, "head.w", &self.head.w);
        dump_f(&mut out, "head.bias", &self.head.bias);
        out
    }

    /// Load a document produced by
    /// [`QuantizedPredictor::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadWeightsError`] on version/shape mismatches,
    /// unparsable numbers, or non-finite scales/biases.
    pub fn load_weights(text: &str) -> Result<Self, LoadWeightsError> {
        let err = |m: &str| LoadWeightsError {
            message: m.to_owned(),
        };
        let mut lines = text.lines();
        if lines.next() != Some("gcn-runtime-predictor-q8 v1") {
            return Err(err("unknown header"));
        }
        let dims_line = lines.next().ok_or_else(|| err("missing gcn_dims"))?;
        let gcn_dims: Vec<usize> = dims_line
            .strip_prefix("gcn_dims ")
            .ok_or_else(|| err("bad gcn_dims line"))?
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| err("bad dim")))
            .collect::<Result<_, _>>()?;
        let fc_line = lines.next().ok_or_else(|| err("missing fc_dim"))?;
        let fc_dim: usize = fc_line
            .strip_prefix("fc_dim ")
            .ok_or_else(|| err("bad fc_dim line"))?
            .trim()
            .parse()
            .map_err(|_| err("bad fc_dim"))?;
        const MAX_DIM: usize = 1 << 16;
        if gcn_dims.is_empty() {
            return Err(err("gcn_dims is empty"));
        }
        if gcn_dims.iter().any(|&d| d == 0 || d > MAX_DIM) || fc_dim == 0 || fc_dim > MAX_DIM {
            return Err(err("layer width out of range"));
        }
        let config = ModelConfig { gcn_dims, fc_dim };

        let parse_q = |lines: &mut std::str::Lines<'_>,
                       expect: &str|
         -> Result<QuantizedMatrix, LoadWeightsError> {
            let line = lines.next().ok_or_else(|| err("missing tensor"))?;
            let mut tok = line.split_whitespace();
            let label = tok.next().ok_or_else(|| err("missing label"))?;
            if label != expect {
                return Err(err(&format!("expected tensor `{expect}`, found `{label}`")));
            }
            let in_dim: usize = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad rows"))?;
            let out_dim: usize = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad cols"))?;
            let scale: f64 = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad scale"))?;
            if !scale.is_finite() || scale <= 0.0 {
                return Err(err("non-finite or non-positive scale"));
            }
            let data: Vec<i8> = tok
                .map(|t| t.parse().map_err(|_| err("bad int8 code")))
                .collect::<Result<_, _>>()?;
            let expected = in_dim
                .checked_mul(out_dim)
                .ok_or_else(|| err("tensor shape overflows"))?;
            if data.len() != expected {
                return Err(err("value count mismatch"));
            }
            Ok(QuantizedMatrix::from_codes(in_dim, out_dim, scale, data))
        };
        let mut gcn = Vec::with_capacity(config.gcn_dims.len());
        for i in 0..config.gcn_dims.len() {
            let w = parse_q(&mut lines, &format!("gcn{i}.w"))?;
            let b = parse_q(&mut lines, &format!("gcn{i}.b"))?;
            gcn.push(QuantGcnLayer { w, b });
        }
        let fc_w = parse_q(&mut lines, "fc.w")?;
        let parse_f =
            |lines: &mut std::str::Lines<'_>, expect: &str| -> Result<Vec<f64>, LoadWeightsError> {
                let line = lines.next().ok_or_else(|| err("missing tensor"))?;
                let mut tok = line.split_whitespace();
                let label = tok.next().ok_or_else(|| err("missing label"))?;
                if label != expect {
                    return Err(err(&format!("expected tensor `{expect}`, found `{label}`")));
                }
                let n: usize = tok
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("bad length"))?;
                let v: Vec<f64> = tok
                    .map(|t| {
                        let x: f64 = t.parse().map_err(|_| err("bad value"))?;
                        if x.is_finite() {
                            Ok(x)
                        } else {
                            Err(err("non-finite value"))
                        }
                    })
                    .collect::<Result<_, _>>()?;
                if v.len() != n {
                    return Err(err("value count mismatch"));
                }
                Ok(v)
            };
        let fc_bias = parse_f(&mut lines, "fc.bias")?;
        let head_w = parse_q(&mut lines, "head.w")?;
        let head_bias = parse_f(&mut lines, "head.bias")?;
        Ok(Self {
            gcn,
            fc: QuantDenseLayer {
                w: fc_w,
                bias: fc_bias,
            },
            head: QuantDenseLayer {
                w: head_w,
                bias: head_bias,
            },
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample() -> GraphSample {
        let g = DesignGraph::from_aig(&generators::adder(4));
        GraphSample::new(&g, [100.0, 60.0, 40.0, 30.0])
    }

    fn trained_model() -> RuntimePredictor {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 9);
        for _ in 0..100 {
            model.train_step(&s, 1e-2);
        }
        model
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let model = trained_model();
        let q = QuantizedMatrix::quantize(&model.gcn[0].w);
        let back = q.dequantize();
        assert_eq!(back.rows(), model.gcn[0].w.rows());
        for r in 0..back.rows() {
            for (a, b) in model.gcn[0].w.row(r).iter().zip(back.row(r)) {
                assert!((a - b).abs() <= q.scale() / 2.0 + 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_tensor_quantizes_to_zero() {
        let q = QuantizedMatrix::quantize(&Matrix::zeros(3, 4));
        assert_eq!(q.scale(), 1.0);
        assert_eq!(q.dequantize(), Matrix::zeros(3, 4));
    }

    #[test]
    fn rounding_is_half_away_from_zero() {
        // maxabs = 127 so scale = 1.0 and the codes are round(v).
        let m = Matrix::from_rows(&[&[0.5, -0.5, 1.49, -2.5, 127.0, -126.0]]);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.scale(), 1.0);
        let back = q.dequantize();
        assert_eq!(back.row(0), &[1.0, -1.0, 1.0, -3.0, 127.0, -126.0]);
    }

    #[test]
    fn quantized_predictions_are_deterministic() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let q2 = QuantizedPredictor::quantize(&model);
        assert_eq!(q, q2);
        let s = sample();
        assert_eq!(q.predict_log(&s), q.predict_log(&s), "bitwise repeatable");
    }

    #[test]
    fn quantized_tracks_float_predictions() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let s = sample();
        let f = model.predict_log(&s);
        let ql = q.predict_log(&s);
        for (a, b) in f.iter().zip(&ql) {
            assert!(
                (a - b).abs() < 0.5,
                "log-space drift too large: {f:?} vs {ql:?}"
            );
        }
        assert!(q.predict_secs(&s).iter().all(|v| v.is_finite() && *v > 0.0));
        assert_eq!(q.predict_speedups(&s).len(), 3);
    }

    #[test]
    fn single_sample_batch_matches_per_sample() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let s = sample();
        let batch = GraphBatch::pack(&[&s]);
        assert_eq!(q.predict_log_batch(&batch), vec![q.predict_log(&s)]);
        assert_eq!(q.predict_secs_batch(&batch), vec![q.predict_secs(&s)]);
    }

    #[test]
    fn batched_predictions_are_repeatable() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let samples: Vec<GraphSample> = ["adder", "parity", "max"]
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let aig = generators::build_family(f, 4 + i as u32).expect("family");
                GraphSample::new(&DesignGraph::from_aig(&aig), [10.0, 7.0, 5.0, 4.0])
            })
            .collect();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let batch = GraphBatch::pack(&refs);
        let a = q.predict_log_batch(&batch);
        let b = q.predict_log_batch(&batch);
        assert_eq!(a, b);
        assert_eq!(a.len(), samples.len());
    }

    #[test]
    fn save_load_roundtrip_is_bit_identical() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let text = q.save_weights();
        let loaded = QuantizedPredictor::load_weights(&text).expect("loads");
        assert_eq!(q, loaded);
        let s = sample();
        assert_eq!(
            q.predict_log(&s),
            loaded.predict_log(&s),
            "bitwise after round-trip"
        );
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(QuantizedPredictor::load_weights("nope").is_err());
        assert!(QuantizedPredictor::load_weights("gcn-runtime-predictor-q8 v1\n").is_err());
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let text = q.save_weights();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(QuantizedPredictor::load_weights(&truncated).is_err());
        let bad_scale = text.replacen("gcn0.w", "gcn0.oops", 1);
        let e = QuantizedPredictor::load_weights(&bad_scale).unwrap_err();
        assert!(e.to_string().contains("gcn0.w"), "{e}");
    }

    #[test]
    fn dequantize_round_trips_through_float_model() {
        let model = trained_model();
        let q = QuantizedPredictor::quantize(&model);
        let back = q.dequantize();
        // Re-quantizing the dequantized model reproduces the codes: the
        // reconstruction is exactly representable on the int8 grid.
        assert_eq!(QuantizedPredictor::quantize(&back), q);
    }
}
