//! The Adam optimizer.

use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Adam state for one parameter tensor.
///
/// Standard Adam (Kingma & Ba) with bias correction; the paper trains
/// its model with Adam at `lr = 1e-4`.
///
/// # Examples
///
/// ```
/// use eda_cloud_gcn::{Adam, Matrix};
///
/// let mut param = Matrix::from_rows(&[&[1.0]]);
/// let mut adam = Adam::new(1, 1);
/// // Gradient of f(x) = x^2 is 2x: repeated steps move toward 0.
/// for _ in 0..2000 {
///     let grad = Matrix::from_rows(&[&[2.0 * param.get(0, 0)]]);
///     adam.step(&mut param, &grad, 1e-2);
/// }
/// assert!(param.get(0, 0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    m: Matrix,
    v: Matrix,
    t: u64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
}

impl Adam {
    /// Fresh optimizer state for a `rows x cols` parameter.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
        }
    }

    /// Apply one update to `param` given its gradient.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the state.
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix, lr: f64) {
        assert_eq!(
            (param.rows(), param.cols()),
            (self.m.rows(), self.m.cols()),
            "parameter shape mismatch"
        );
        assert_eq!(
            (grad.rows(), grad.cols()),
            (self.m.rows(), self.m.cols()),
            "gradient shape mismatch"
        );
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (self.m.data_mut(), self.v.data_mut());
        for ((p, &g), (m, v)) in param
            .data_mut()
            .iter_mut()
            .zip(grad.data())
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *m = self.beta1 * *m + (1.0 - self.beta1) * g;
            *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
            let m_hat = *m / b1t;
            let v_hat = *v / b2t;
            *p -= lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    /// Steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let mut p = Matrix::from_rows(&[&[5.0, -3.0]]);
        let mut adam = Adam::new(1, 2);
        for _ in 0..5000 {
            let grad = Matrix::from_rows(&[&[2.0 * p.get(0, 0), 2.0 * p.get(0, 1)]]);
            adam.step(&mut p, &grad, 5e-3);
        }
        assert!(p.get(0, 0).abs() < 0.01, "{}", p.get(0, 0));
        assert!(p.get(0, 1).abs() < 0.01, "{}", p.get(0, 1));
        assert_eq!(adam.steps(), 5000);
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // With bias correction, the first Adam step is ~lr in the
        // gradient direction regardless of gradient magnitude.
        let mut p = Matrix::from_rows(&[&[0.0]]);
        let mut adam = Adam::new(1, 1);
        adam.step(&mut p, &Matrix::from_rows(&[&[1234.0]]), 0.01);
        assert!((p.get(0, 0) + 0.01).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut p = Matrix::zeros(2, 2);
        let mut adam = Adam::new(1, 1);
        adam.step(&mut p, &Matrix::zeros(2, 2), 0.1);
    }
}
