//! The runtime-prediction model (paper Figure 4).

use crate::adam::Adam;
use crate::batch::GraphBatch;
use crate::layers::{DenseLayer, GcnLayer};
use crate::{GcnError, GraphSample, Matrix};
use eda_cloud_netlist::FEATURE_DIM;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Model architecture hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Output width of each GCN layer, in order.
    pub gcn_dims: Vec<usize>,
    /// Width of the fully connected layer after pooling.
    pub fc_dim: usize,
}

impl ModelConfig {
    /// The paper's architecture: 2 GCN layers with 256 and 128 hidden
    /// units, then one 128-unit fully connected layer.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            gcn_dims: vec![256, 128],
            fc_dim: 128,
        }
    }

    /// A small configuration for unit tests and quick benches.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            gcn_dims: vec![32, 16],
            fc_dim: 16,
        }
    }

    /// Single-GCN-layer ablation of the given width.
    #[must_use]
    pub fn shallow(width: usize) -> Self {
        Self {
            gcn_dims: vec![width],
            fc_dim: width,
        }
    }
}

impl Default for ModelConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Saturation bound for log-space predictions: `exp(±700)` is finite in
/// `f64` (`≈ 1e304`), while `exp(710)` overflows to `inf`. Clamping
/// here keeps every predicted runtime (and every speedup ratio) finite
/// no matter how far a model has diverged.
pub const MAX_LOG_SECS: f64 = 700.0;

/// `exp` with saturation: clamps the argument into `±`[`MAX_LOG_SECS`]
/// so the result is always finite and strictly positive; `NaN`
/// saturates to the maximum (an "infinitely slow" reading is the safe
/// default for a corrupt prediction).
#[must_use]
pub fn saturating_exp(log_secs: f64) -> f64 {
    if log_secs.is_nan() {
        MAX_LOG_SECS.exp()
    } else {
        log_secs.clamp(-MAX_LOG_SECS, MAX_LOG_SECS).exp()
    }
}

/// The four-output runtime regressor: GCN layers → scaled sum-pooling →
/// FC(ReLU) → linear head predicting `ln(runtime)` on 1/2/4/8 vCPUs.
///
/// Sum-pooling follows the paper; the pooled vector is scaled by
/// `1/√n` so corpora whose designs span several orders of magnitude in
/// node count keep activations in a trainable range (the scale factor
/// still grows with design size, preserving the size signal).
#[derive(Debug, Clone)]
pub struct RuntimePredictor {
    pub(crate) gcn: Vec<GcnLayer>,
    pub(crate) fc: DenseLayer,
    pub(crate) head: DenseLayer,
    adam: Vec<Adam>,
    config: ModelConfig,
}

impl RuntimePredictor {
    /// Initialize with Xavier weights from a seed.
    ///
    /// # Panics
    ///
    /// Panics if the config has no GCN layers or a zero-width layer
    /// ([`RuntimePredictor::try_new`] is the fallible form).
    #[must_use]
    pub fn new(config: &ModelConfig, seed: u64) -> Self {
        assert!(!config.gcn_dims.is_empty(), "need at least one GCN layer");
        Self::try_new(config, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`RuntimePredictor::new`], rejecting degenerate architectures
    /// (no GCN layers, a zero-width GCN layer, or `fc_dim == 0`) with
    /// a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`GcnError::ZeroDimLayer`] for any of the degenerate
    /// shapes above.
    pub fn try_new(config: &ModelConfig, seed: u64) -> Result<Self, GcnError> {
        if config.gcn_dims.is_empty() || config.gcn_dims.contains(&0) || config.fc_dim == 0 {
            return Err(GcnError::ZeroDimLayer);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut gcn = Vec::new();
        let mut in_dim = FEATURE_DIM;
        for &out_dim in &config.gcn_dims {
            gcn.push(GcnLayer::new(in_dim, out_dim, &mut rng));
            in_dim = out_dim;
        }
        let fc = DenseLayer::new(in_dim, config.fc_dim, &mut rng);
        let head = DenseLayer::new(config.fc_dim, 4, &mut rng);
        let mut adam = Vec::new();
        for layer in &gcn {
            adam.push(Adam::new(layer.w.rows(), layer.w.cols()));
            adam.push(Adam::new(layer.b.rows(), layer.b.cols()));
        }
        for layer in [&fc, &head] {
            adam.push(Adam::new(layer.w.rows(), layer.w.cols()));
            adam.push(Adam::new(layer.bias.rows(), layer.bias.cols()));
        }
        Ok(Self {
            gcn,
            fc,
            head,
            adam,
            config: config.clone(),
        })
    }

    /// The architecture this model was built with.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.config
    }

    /// Predicted `ln(runtime)` for 1/2/4/8 vCPUs.
    #[must_use]
    pub fn predict_log(&self, sample: &GraphSample) -> [f64; 4] {
        let mut h = sample.features.clone();
        for layer in &self.gcn {
            h = layer.infer(&sample.a_norm, &h);
        }
        let n = h.rows();
        let mut pooled = h.sum_rows();
        let scale = 1.0 / (n as f64).sqrt();
        for v in pooled.data_mut() {
            *v *= scale;
        }
        let mut fc_act = self.fc.infer(&pooled);
        fc_act.relu_in_place();
        let out = self.head.infer(&fc_act);
        [out.get(0, 0), out.get(0, 1), out.get(0, 2), out.get(0, 3)]
    }

    /// Predicted runtimes in seconds for 1/2/4/8 vCPUs.
    ///
    /// Always finite and strictly positive: log-space predictions are
    /// saturated into `±`[`MAX_LOG_SECS`] before exponentiation, so a
    /// diverged or corrupt model yields an astronomically large (or
    /// tiny) runtime instead of `inf`/`NaN` poisoning downstream
    /// knapsack and serving math. A `NaN` output saturates to the
    /// maximum — the conservative "infinitely slow" reading.
    #[must_use]
    pub fn predict_secs(&self, sample: &GraphSample) -> [f64; 4] {
        self.predict_log(sample).map(saturating_exp)
    }

    /// Predicted speedups of 2/4/8 vCPUs over 1 vCPU (the paper derives
    /// speedup gains from the four predictions).
    ///
    /// Computed in log space (`exp(l₁ − lₖ)` with the difference
    /// saturated), so the ratio stays finite even when the individual
    /// runtimes sit at the saturation bounds; a `NaN` prediction
    /// degrades to a neutral speedup of 1.
    #[must_use]
    pub fn predict_speedups(&self, sample: &GraphSample) -> [f64; 3] {
        let l = self.predict_log(sample);
        [1, 2, 3].map(|k| {
            let diff = l[0] - l[k];
            if diff.is_nan() {
                1.0
            } else {
                diff.clamp(-MAX_LOG_SECS, MAX_LOG_SECS).exp()
            }
        })
    }

    /// Predicted `ln(runtime)` for every sample of a packed batch, in
    /// batch order — bit-identical to calling
    /// [`RuntimePredictor::predict_log`] per sample (the batch's blocks
    /// are disjoint, so every accumulation runs in the same order), but
    /// one pass through the layer stack instead of `B`.
    #[must_use]
    pub fn predict_log_batch(&self, batch: &GraphBatch) -> Vec<[f64; 4]> {
        if batch.is_empty() {
            return Vec::new();
        }
        // Run the GCN stack chunk by chunk (chunks are cache-sized row
        // partitions along segment boundaries — exact under a block-
        // diagonal adjacency), ping-ponging one set of scratch buffers
        // so the hot loop allocates nothing after the first chunk.
        // Arithmetic and accumulation order match `GcnLayer::forward`
        // exactly, so the output stays bit-identical to the per-sample
        // path.
        // The FC layer's input width equals the last GCN layer's output
        // width by construction, without an `expect` in the hot path.
        let d = self.fc.w.rows();
        let mut pooled = Matrix::zeros(batch.len(), d);
        let mut h = Matrix::zeros(0, 0);
        let mut agg = Matrix::zeros(0, 0);
        let mut tmp = Matrix::zeros(0, 0);
        let mut next = Matrix::zeros(0, 0);
        let mut sample = 0usize;
        for chunk in &batch.chunks {
            h.clone_from(&chunk.features);
            for layer in &self.gcn {
                chunk
                    .a_norm
                    .matmul_into(&h, &mut agg)
                    .expect("batch adjacency is validated at pack time");
                agg.matmul_into(&layer.w, &mut next);
                h.matmul_into(&layer.b, &mut tmp);
                next.add_assign(&tmp);
                next.relu_in_place();
                std::mem::swap(&mut h, &mut next);
            }
            // Pool each sample's row segment exactly like the single-
            // sample path: sum the rows in order, then scale by 1/√n.
            for &(start, n) in &chunk.segments {
                let prow = &mut pooled.data_mut()[sample * d..(sample + 1) * d];
                for r in start..start + n {
                    for (o, &v) in prow.iter_mut().zip(h.row(r)) {
                        *o += v;
                    }
                }
                let scale = 1.0 / (n as f64).sqrt();
                for o in prow {
                    *o *= scale;
                }
                sample += 1;
            }
        }
        let mut fc_act = self.fc.infer(&pooled);
        fc_act.relu_in_place();
        let out = self.head.infer(&fc_act);
        (0..batch.len())
            .map(|g| [out.get(g, 0), out.get(g, 1), out.get(g, 2), out.get(g, 3)])
            .collect()
    }

    /// Batched [`RuntimePredictor::predict_secs`]: saturated, finite,
    /// strictly positive seconds for every sample of the batch.
    #[must_use]
    pub fn predict_secs_batch(&self, batch: &GraphBatch) -> Vec<[f64; 4]> {
        self.predict_log_batch(batch)
            .into_iter()
            .map(|l| l.map(saturating_exp))
            .collect()
    }

    /// MSE loss (in log space) on one sample.
    #[must_use]
    pub fn loss(&self, sample: &GraphSample) -> f64 {
        let pred = self.predict_log(sample);
        pred.iter()
            .zip(&sample.log_targets)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / 4.0
    }

    /// One Adam step on one sample; returns the pre-step loss.
    pub fn train_step(&mut self, sample: &GraphSample, lr: f64) -> f64 {
        let (out, caches) = self.forward(sample);
        let ForwardCaches {
            gcn_caches,
            pooled_scale,
            fc_cache,
            fc_pre,
            head_cache,
            last_gcn_rows,
        } = caches;

        // Loss and output gradient.
        let mut loss = 0.0;
        let mut dout = Matrix::zeros(1, 4);
        for c in 0..4 {
            let diff = out.get(0, c) - sample.log_targets[c];
            loss += diff * diff / 4.0;
            dout.set(0, c, 2.0 * diff / 4.0);
        }

        // Backward through head and FC.
        let (head_grads, dfc_out) = self.head.backward(&head_cache, &dout);
        let dfc_pre = dfc_out.relu_backward(&fc_pre);
        let (fc_grads, dpooled) = self.fc.backward(&fc_cache, &dfc_pre);

        // Un-pool: every node row receives the pooled gradient times the
        // scale factor.
        let cols = dpooled.cols();
        let mut dh = Matrix::zeros(last_gcn_rows, cols);
        for r in 0..last_gcn_rows {
            for c in 0..cols {
                dh.set(r, c, dpooled.get(0, c) * pooled_scale);
            }
        }

        // Backward through the GCN stack.
        let mut gcn_grads = Vec::with_capacity(self.gcn.len());
        let mut grad = dh;
        for (layer, cache) in self.gcn.iter().zip(&gcn_caches).rev() {
            let (grads, dinput) = layer.backward(&sample.a_norm, cache, &grad);
            gcn_grads.push(grads);
            grad = dinput;
        }
        gcn_grads.reverse();

        // Adam updates, in the same order the states were allocated.
        let mut k = 0;
        for (layer, grads) in self.gcn.iter_mut().zip(&gcn_grads) {
            self.adam[k].step(&mut layer.w, &grads.dw, lr);
            self.adam[k + 1].step(&mut layer.b, &grads.db, lr);
            k += 2;
        }
        self.adam[k].step(&mut self.fc.w, &fc_grads.dw, lr);
        self.adam[k + 1].step(&mut self.fc.bias, &fc_grads.dbias, lr);
        self.adam[k + 2].step(&mut self.head.w, &head_grads.dw, lr);
        self.adam[k + 3].step(&mut self.head.bias, &head_grads.dbias, lr);
        loss
    }

    fn forward(&self, sample: &GraphSample) -> (Matrix, ForwardCaches) {
        let mut h = sample.features.clone();
        let mut gcn_caches = Vec::with_capacity(self.gcn.len());
        for layer in &self.gcn {
            let (next, cache) = layer.forward(&sample.a_norm, &h);
            gcn_caches.push(cache);
            h = next;
        }
        let n = h.rows();
        let pooled_scale = 1.0 / (n as f64).sqrt();
        let mut pooled = h.sum_rows();
        for v in pooled.data_mut() {
            *v *= pooled_scale;
        }
        let (fc_pre, fc_cache) = self.fc.forward(&pooled);
        let fc_act = fc_pre.relu();
        let (out, head_cache) = self.head.forward(&fc_act);
        (
            out,
            ForwardCaches {
                gcn_caches,
                pooled_scale,
                fc_cache,
                fc_pre,
                head_cache,
                last_gcn_rows: n,
            },
        )
    }
}

struct ForwardCaches {
    gcn_caches: Vec<crate::layers::GcnCache>,
    pooled_scale: f64,
    fc_cache: crate::layers::DenseCache,
    fc_pre: Matrix,
    head_cache: crate::layers::DenseCache,
    last_gcn_rows: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    fn sample() -> GraphSample {
        let g = DesignGraph::from_aig(&generators::adder(4));
        GraphSample::new(&g, [100.0, 60.0, 40.0, 30.0])
    }

    #[test]
    fn training_reduces_loss_on_one_sample() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 42);
        let initial = model.loss(&s);
        for _ in 0..200 {
            model.train_step(&s, 1e-2);
        }
        let fin = model.loss(&s);
        assert!(fin < initial * 0.1, "loss {initial} -> {fin}");
    }

    #[test]
    fn overfit_single_sample_recovers_targets() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 1);
        for _ in 0..800 {
            model.train_step(&s, 1e-2);
        }
        let pred = model.predict_secs(&s);
        for (p, t) in pred.iter().zip(&s.targets_secs) {
            let ape = (p - t).abs() / t;
            assert!(ape < 0.10, "pred {p} vs target {t}");
        }
    }

    #[test]
    fn speedups_derived_from_predictions() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 1);
        for _ in 0..800 {
            model.train_step(&s, 1e-2);
        }
        let sp = model.predict_speedups(&s);
        // Targets: 100/60, 100/40, 100/30.
        assert!((sp[0] - 100.0 / 60.0).abs() < 0.3);
        assert!((sp[2] - 100.0 / 30.0).abs() < 0.6);
    }

    #[test]
    fn distinct_graphs_get_distinct_predictions() {
        let s1 = sample();
        let g2 = DesignGraph::from_aig(&generators::multiplier(6));
        let s2 = GraphSample::new(&g2, [900.0, 500.0, 300.0, 200.0]);
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 5);
        for _ in 0..600 {
            model.train_step(&s1, 5e-3);
            model.train_step(&s2, 5e-3);
        }
        let p1 = model.predict_secs(&s1)[0];
        let p2 = model.predict_secs(&s2)[0];
        assert!(p2 > 2.0 * p1, "model must separate designs: {p1} vs {p2}");
    }

    #[test]
    fn paper_config_shapes() {
        let model = RuntimePredictor::new(&ModelConfig::paper(), 0);
        assert_eq!(model.config().gcn_dims, vec![256, 128]);
        assert_eq!(model.gcn.len(), 2);
        assert_eq!(model.head.w.cols(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one GCN layer")]
    fn empty_config_panics() {
        let cfg = ModelConfig {
            gcn_dims: vec![],
            fc_dim: 8,
        };
        let _ = RuntimePredictor::new(&cfg, 0);
    }

    /// Regression: degenerate architectures used to be reachable only
    /// as panics; `try_new` must surface them as typed errors.
    #[test]
    fn try_new_rejects_degenerate_architectures() {
        let degenerate = [
            ModelConfig {
                gcn_dims: vec![],
                fc_dim: 8,
            },
            ModelConfig {
                gcn_dims: vec![32, 0],
                fc_dim: 8,
            },
            ModelConfig {
                gcn_dims: vec![32],
                fc_dim: 0,
            },
        ];
        for cfg in degenerate {
            assert_eq!(
                RuntimePredictor::try_new(&cfg, 0).err(),
                Some(crate::GcnError::ZeroDimLayer),
                "{cfg:?}"
            );
        }
        assert!(RuntimePredictor::try_new(&ModelConfig::fast(), 0).is_ok());
    }

    #[test]
    fn saturating_exp_never_overflows() {
        assert!(saturating_exp(1e9).is_finite());
        assert!(saturating_exp(f64::INFINITY).is_finite());
        assert!(saturating_exp(f64::NAN).is_finite());
        assert_eq!(saturating_exp(f64::NAN), MAX_LOG_SECS.exp());
        assert!(saturating_exp(f64::NEG_INFINITY) > 0.0);
        assert_eq!(saturating_exp(0.0), 1.0);
        assert_eq!(saturating_exp(2.5), 2.5_f64.exp());
    }

    #[test]
    fn diverged_model_still_predicts_finite_seconds() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 3);
        // Force the head bias so the raw log predictions overflow exp().
        for v in model.head.bias.data_mut() {
            *v = 5.0e3;
        }
        let raw = model.predict_log(&s);
        assert!(
            raw.iter().all(|l| *l > MAX_LOG_SECS),
            "setup: logs overflow"
        );
        let secs = model.predict_secs(&s);
        assert!(secs.iter().all(|t| t.is_finite() && *t > 0.0), "{secs:?}");
        let sp = model.predict_speedups(&s);
        assert!(sp.iter().all(|v| v.is_finite() && *v > 0.0), "{sp:?}");
    }

    #[test]
    fn nan_weights_saturate_instead_of_poisoning() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 4);
        for v in model.head.bias.data_mut() {
            *v = f64::NAN;
        }
        let secs = model.predict_secs(&s);
        assert!(secs.iter().all(|t| t.is_finite()), "{secs:?}");
        assert_eq!(secs, [MAX_LOG_SECS.exp(); 4]);
        // NaN speedups degrade to the neutral ratio 1.
        assert_eq!(model.predict_speedups(&s), [1.0; 3]);
    }

    #[test]
    fn huge_log_gap_yields_finite_speedup() {
        let s = sample();
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 6);
        // Spread the per-vCPU biases so the log gap exceeds the clamp.
        let data = model.head.bias.data_mut();
        data[0] = 2.0e3;
        data[1] = -2.0e3;
        data[2] = 0.0;
        data[3] = 0.0;
        let sp = model.predict_speedups(&s);
        assert!(sp.iter().all(|v| v.is_finite() && *v > 0.0), "{sp:?}");
        assert_eq!(sp[0], MAX_LOG_SECS.exp());
    }
}

/// Error returned when loading serialized weights fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadWeightsError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for LoadWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot load model weights: {}", self.message)
    }
}

impl std::error::Error for LoadWeightsError {}

impl RuntimePredictor {
    /// Serialize all trainable parameters as a plain-text document
    /// (architecture header + one line of numbers per tensor). Optimizer
    /// state is not saved; a loaded model predicts but restarts Adam if
    /// trained further.
    #[must_use]
    pub fn save_weights(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let dims: Vec<String> = self.config.gcn_dims.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "gcn-runtime-predictor v1");
        let _ = writeln!(out, "gcn_dims {}", dims.join(" "));
        let _ = writeln!(out, "fc_dim {}", self.config.fc_dim);
        let mut dump = |label: &str, m: &Matrix| {
            let _ = write!(out, "{label} {} {}", m.rows(), m.cols());
            for v in m.data() {
                let _ = write!(out, " {v:e}");
            }
            let _ = writeln!(out);
        };
        for (i, layer) in self.gcn.iter().enumerate() {
            dump(&format!("gcn{i}.w"), &layer.w);
            dump(&format!("gcn{i}.b"), &layer.b);
        }
        dump("fc.w", &self.fc.w);
        dump("fc.bias", &self.fc.bias);
        dump("head.w", &self.head.w);
        dump("head.bias", &self.head.bias);
        out
    }

    /// Load parameters produced by [`RuntimePredictor::save_weights`].
    ///
    /// # Errors
    ///
    /// Returns [`LoadWeightsError`] on version/shape mismatches or
    /// unparsable numbers.
    pub fn load_weights(text: &str) -> Result<Self, LoadWeightsError> {
        let err = |m: &str| LoadWeightsError {
            message: m.to_owned(),
        };
        let mut lines = text.lines();
        if lines.next() != Some("gcn-runtime-predictor v1") {
            return Err(err("unknown header"));
        }
        let dims_line = lines.next().ok_or_else(|| err("missing gcn_dims"))?;
        let gcn_dims: Vec<usize> = dims_line
            .strip_prefix("gcn_dims ")
            .ok_or_else(|| err("bad gcn_dims line"))?
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| err("bad dim")))
            .collect::<Result<_, _>>()?;
        let fc_line = lines.next().ok_or_else(|| err("missing fc_dim"))?;
        let fc_dim: usize = fc_line
            .strip_prefix("fc_dim ")
            .ok_or_else(|| err("bad fc_dim line"))?
            .trim()
            .parse()
            .map_err(|_| err("bad fc_dim"))?;
        // Validate the architecture before building it: an empty layer
        // list would panic `Self::new`, and absurd widths would try to
        // allocate the product — both must surface as typed errors.
        const MAX_DIM: usize = 1 << 16;
        if gcn_dims.is_empty() {
            return Err(err("gcn_dims is empty"));
        }
        if gcn_dims.iter().any(|&d| d == 0 || d > MAX_DIM) || fc_dim == 0 || fc_dim > MAX_DIM {
            return Err(err("layer width out of range"));
        }
        let config = ModelConfig { gcn_dims, fc_dim };
        let mut model = Self::new(&config, 0);

        let mut parse_matrix = |expect: &str| -> Result<Matrix, LoadWeightsError> {
            let line = lines.next().ok_or_else(|| err("missing tensor"))?;
            let mut tok = line.split_whitespace();
            let label = tok.next().ok_or_else(|| err("missing label"))?;
            if label != expect {
                return Err(err(&format!("expected tensor `{expect}`, found `{label}`")));
            }
            let rows: usize = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad rows"))?;
            let cols: usize = tok
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err("bad cols"))?;
            let data: Vec<f64> = tok
                .map(|t| {
                    let v: f64 = t.parse().map_err(|_| err("bad value"))?;
                    // `"NaN"` and `"inf"` parse as valid f64s, but a
                    // snapshot carrying them is corrupt: reject at load
                    // time instead of letting them poison serving.
                    if v.is_finite() {
                        Ok(v)
                    } else {
                        Err(err("non-finite value"))
                    }
                })
                .collect::<Result<_, _>>()?;
            let expected = rows
                .checked_mul(cols)
                .ok_or_else(|| err("tensor shape overflows"))?;
            if data.len() != expected {
                return Err(err("value count mismatch"));
            }
            Ok(Matrix::from_vec(rows, cols, data))
        };
        for i in 0..model.gcn.len() {
            model.gcn[i].w = parse_matrix(&format!("gcn{i}.w"))?;
            model.gcn[i].b = parse_matrix(&format!("gcn{i}.b"))?;
        }
        model.fc.w = parse_matrix("fc.w")?;
        model.fc.bias = parse_matrix("fc.bias")?;
        model.head.w = parse_matrix("head.w")?;
        model.head.bias = parse_matrix("head.bias")?;
        Ok(model)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let g = DesignGraph::from_aig(&generators::adder(4));
        let s = GraphSample::new(&g, [10.0, 7.0, 5.0, 4.0]);
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 9);
        for _ in 0..30 {
            model.train_step(&s, 1e-2);
        }
        let text = model.save_weights();
        let loaded = RuntimePredictor::load_weights(&text).expect("loads");
        assert_eq!(loaded.predict_log(&s), model.predict_log(&s));
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(RuntimePredictor::load_weights("nope").is_err());
        assert!(RuntimePredictor::load_weights("gcn-runtime-predictor v1\n").is_err());
        let model = RuntimePredictor::new(&ModelConfig::fast(), 0);
        let mut text = model.save_weights();
        text = text.replace("head.bias", "head.oops");
        let e = RuntimePredictor::load_weights(&text).unwrap_err();
        assert!(e.to_string().contains("head.bias"));
    }

    #[test]
    fn load_rejects_non_finite_weights() {
        let model = RuntimePredictor::new(&ModelConfig::fast(), 0);
        let text = model.save_weights();
        let first_value = text
            .lines()
            .find(|l| l.starts_with("gcn0.w"))
            .and_then(|l| l.split_whitespace().nth(3))
            .expect("a weight value")
            .to_owned();
        for poison in ["NaN", "inf", "-inf"] {
            let bad = text.replacen(&first_value, poison, 1);
            let e = RuntimePredictor::load_weights(&bad).unwrap_err();
            assert!(e.to_string().contains("non-finite"), "{poison}: {e}");
        }
    }

    #[test]
    fn load_rejects_degenerate_architectures() {
        let header = |dims: &str, fc: &str| {
            format!("gcn-runtime-predictor v1\ngcn_dims {dims}\nfc_dim {fc}\n")
        };
        assert!(RuntimePredictor::load_weights(&header("", "8")).is_err());
        assert!(RuntimePredictor::load_weights(&header("0", "8")).is_err());
        assert!(RuntimePredictor::load_weights(&header("32", "0")).is_err());
        assert!(RuntimePredictor::load_weights(&header("99999999999", "8")).is_err());
        assert!(RuntimePredictor::load_weights(&header("32", "99999999999")).is_err());
    }

    #[test]
    fn load_rejects_shape_overflow() {
        // A tensor line whose rows*cols product overflows usize must be
        // a typed error, not a multiply-overflow panic.
        let text = format!(
            "gcn-runtime-predictor v1\ngcn_dims 32\nfc_dim 16\ngcn0.w {} {} 1.0\n",
            usize::MAX,
            2
        );
        let e = RuntimePredictor::load_weights(&text).unwrap_err();
        assert!(e.to_string().contains("overflow"), "{e}");
    }
}
