//! Training loop, dataset splitting, and accuracy metrics.

use crate::{GcnError, GraphSample, ModelConfig, RuntimePredictor};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Train/test indices over a sample corpus.
///
/// The paper splits 80/20 "where netlists of the test set belong to
/// unseen designs in the training set" — so the split is by *design
/// family*, not by netlist: every recipe variant of a test design is
/// held out together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSplit {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of held-out samples (unseen designs).
    pub test: Vec<usize>,
}

impl DatasetSplit {
    /// Group samples by base design (the part of the name before the
    /// first `.`), hold out ~`test_fraction` of the designs.
    ///
    /// Degenerate inputs degrade instead of panicking: an empty corpus
    /// yields an empty split, a fraction of `0.0` holds nothing out,
    /// `1.0` holds everything out, and a corpus with a single design
    /// family keeps that design in training (for fractions below 1)
    /// rather than emptying the training set.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn by_design(samples: &[GraphSample], test_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&test_fraction),
            "test fraction must be in [0, 1]"
        );
        let base = |name: &str| name.split('.').next().unwrap_or(name).to_owned();
        let designs: BTreeSet<String> = samples.iter().map(|s| base(&s.name)).collect();
        let mut designs: Vec<String> = designs.into_iter().collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        designs.shuffle(&mut rng);
        let n_test = if designs.len() <= 1 || test_fraction == 0.0 {
            // Empty corpus, a single design family (which must stay in
            // training), or nothing held out.
            if test_fraction >= 1.0 {
                designs.len()
            } else {
                0
            }
        } else if test_fraction >= 1.0 {
            designs.len()
        } else {
            // Hold out at least one design but never the whole corpus.
            ((designs.len() as f64 * test_fraction).round() as usize).clamp(1, designs.len() - 1)
        };
        let test_designs: BTreeSet<&String> = designs.iter().take(n_test).collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for (i, s) in samples.iter().enumerate() {
            if test_designs.contains(&base(&s.name)) {
                test.push(i);
            } else {
                train.push(i);
            }
        }
        Self { train, test }
    }
}

/// Per-run training metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch (log-space MSE).
    pub epoch_losses: Vec<f64>,
    /// Absolute percentage error of every test prediction (one entry
    /// per sample per vCPU configuration).
    pub test_errors: Vec<f64>,
    /// Mean absolute percentage error on the test set.
    pub mean_error: f64,
}

impl TrainReport {
    /// Prediction accuracy as the paper reports it: `1 - mean error`
    /// (87% accuracy = 13% average error).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        1.0 - self.mean_error
    }

    /// Histogram of test errors with `bins` equal-width buckets over
    /// `[0, max_error]`; returns (bucket upper bounds, counts) —
    /// the data behind the paper's Figure 5.
    #[must_use]
    pub fn error_histogram(&self, bins: usize) -> (Vec<f64>, Vec<usize>) {
        let bins = bins.max(1);
        let max = self
            .test_errors
            .iter()
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut counts = vec![0usize; bins];
        for &e in &self.test_errors {
            let b = ((e / max) * bins as f64).min(bins as f64 - 1.0) as usize;
            counts[b] += 1;
        }
        let bounds = (1..=bins).map(|b| max * b as f64 / bins as f64).collect();
        (bounds, counts)
    }
}

/// The trained model plus its report.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The fitted predictor.
    pub model: RuntimePredictor,
    /// Metrics collected during training and evaluation.
    pub report: TrainReport,
}

/// Training-loop configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trainer {
    /// Epochs over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Weight-initialization and shuffling seed.
    pub seed: u64,
    /// Model architecture.
    pub config: ModelConfig,
}

impl Trainer {
    /// The paper's recipe: 200 epochs, Adam with `lr = 1e-4`, MSE loss,
    /// 2 GCN layers (256/128) + FC 128.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            epochs: 200,
            lr: 1e-4,
            seed: 0x6C1,
            config: ModelConfig::paper(),
        }
    }

    /// A fast recipe for tests and smoke benches: smaller model, larger
    /// learning rate, fewer epochs.
    #[must_use]
    pub fn fast() -> Self {
        Self {
            epochs: 60,
            lr: 3e-3,
            seed: 0x6C1,
            config: ModelConfig::fast(),
        }
    }

    /// Fit on the training split and evaluate on the held-out designs.
    ///
    /// # Panics
    ///
    /// Panics if the split references out-of-range samples, the
    /// training set is empty, the architecture is degenerate, or the
    /// loss diverges ([`Trainer::try_fit`] is the fallible form).
    #[must_use]
    pub fn fit(&self, samples: &[GraphSample], split: &DatasetSplit) -> TrainOutcome {
        assert!(!split.train.is_empty(), "training set is empty");
        self.try_fit(samples, split)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Trainer::fit`] with the old panics surfaced as typed errors.
    ///
    /// # Errors
    ///
    /// - [`GcnError::EmptyTrainingSet`] when the split selects no
    ///   training samples.
    /// - [`GcnError::SampleOutOfRange`] when either split half indexes
    ///   past the corpus (checked up front, before any epoch runs).
    /// - [`GcnError::ZeroDimLayer`] for a degenerate architecture.
    /// - [`GcnError::NonFiniteLoss`] when an epoch's mean loss leaves
    ///   the finite range — training has diverged and further epochs
    ///   would only corrupt the weights.
    pub fn try_fit(
        &self,
        samples: &[GraphSample],
        split: &DatasetSplit,
    ) -> Result<TrainOutcome, GcnError> {
        if split.train.is_empty() {
            return Err(GcnError::EmptyTrainingSet);
        }
        for &i in split.train.iter().chain(&split.test) {
            if i >= samples.len() {
                return Err(GcnError::SampleOutOfRange {
                    index: i,
                    len: samples.len(),
                });
            }
        }
        let mut model = RuntimePredictor::try_new(&self.config, self.seed)?;
        let mut order: Vec<usize> = split.train.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0xE70C);
        let mut epoch_losses = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                total += model.train_step(&samples[i], self.lr);
            }
            let mean = total / order.len() as f64;
            if !mean.is_finite() {
                return Err(GcnError::NonFiniteLoss { epoch });
            }
            epoch_losses.push(mean);
        }
        let mut test_errors = Vec::new();
        for &i in &split.test {
            let pred = model.predict_secs(&samples[i]);
            for (p, t) in pred.iter().zip(&samples[i].targets_secs) {
                test_errors.push((p - t).abs() / t);
            }
        }
        let mean_error = if test_errors.is_empty() {
            0.0
        } else {
            test_errors.iter().sum::<f64>() / test_errors.len() as f64
        };
        Ok(TrainOutcome {
            model,
            report: TrainReport {
                epoch_losses,
                test_errors,
                mean_error,
            },
        })
    }
}

impl Default for Trainer {
    fn default() -> Self {
        Self::paper()
    }
}

impl RuntimePredictor {
    /// Incrementally fine-tune this model on a replay buffer of
    /// relabeled samples: `epochs` seeded-shuffle passes of
    /// [`RuntimePredictor::train_step`] over `samples`, continuing the
    /// model's existing Adam state (a warm start, not a restart).
    /// Returns the mean pre-step loss of each epoch.
    ///
    /// Deterministic: the visit order is drawn from one ChaCha8 stream
    /// seeded by `seed`, and every step is serial — the same
    /// `(weights, samples, epochs, lr, seed)` always produces
    /// bit-identical weights, no matter which thread runs the call.
    /// An empty buffer or zero epochs leaves the model untouched.
    pub fn fine_tune(
        &mut self,
        samples: &[&GraphSample],
        epochs: usize,
        lr: f64,
        seed: u64,
    ) -> Vec<f64> {
        if samples.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xF17E_7D4E);
        let mut epoch_losses = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                total += self.train_step(samples[i], lr);
            }
            epoch_losses.push(total / order.len() as f64);
        }
        epoch_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::{generators, DesignGraph};

    /// A small corpus: several families, a few "recipe variants" each,
    /// with runtimes that grow with design size (the signal the GCN
    /// must learn).
    fn corpus() -> Vec<GraphSample> {
        let mut samples = Vec::new();
        for (fi, family) in ["adder", "parity", "comparator", "max", "gray2bin"]
            .iter()
            .enumerate()
        {
            for size in [4u32, 8, 12] {
                let aig = generators::build_family(family, size).expect("family");
                let g = DesignGraph::from_aig(&aig);
                let base = 10.0 + aig.and_count() as f64 * 0.5 + fi as f64;
                let mut g2 = g.clone();
                // Mimic recipe variants by reusing the same graph under
                // a variant name (structure identical is fine for the
                // split test; the training test uses the real pipeline).
                for (vi, variant) in ["raw", "balanced"].iter().enumerate() {
                    let t1 = base * (1.0 + vi as f64 * 0.07);
                    let sample = GraphSample::new(&g2, [t1, t1 / 1.6, t1 / 2.4, t1 / 3.0]);
                    let mut named = sample;
                    named.name = format!("{family}{size}.{variant}");
                    samples.push(named);
                    g2 = g.clone();
                }
            }
        }
        samples
    }

    #[test]
    fn split_keeps_designs_unseen() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 0.2, 7);
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        let base = |i: usize| samples[i].name.split('.').next().unwrap().to_owned();
        let train_designs: BTreeSet<String> = split.train.iter().map(|&i| base(i)).collect();
        let test_designs: BTreeSet<String> = split.test.iter().map(|&i| base(i)).collect();
        assert!(
            train_designs.is_disjoint(&test_designs),
            "no design may appear in both splits"
        );
    }

    #[test]
    fn training_converges_and_generalizes_somewhat() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 0.2, 3);
        let outcome = Trainer::fast().fit(&samples, &split);
        let losses = &outcome.report.epoch_losses;
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss should at least halve: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
        // Generalization on a toy corpus is loose; just require sanity.
        assert!(outcome.report.mean_error < 1.0);
        assert!(outcome.report.accuracy() > 0.0);
    }

    #[test]
    fn histogram_counts_all_errors() {
        let report = TrainReport {
            epoch_losses: vec![],
            test_errors: vec![0.01, 0.05, 0.10, 0.20, 0.40],
            mean_error: 0.152,
        };
        let (bounds, counts) = report.error_histogram(4);
        assert_eq!(bounds.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert!((report.accuracy() - 0.848).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        let samples = corpus();
        let _ = DatasetSplit::by_design(&samples, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn negative_fraction_panics() {
        let samples = corpus();
        let _ = DatasetSplit::by_design(&samples, -0.1, 0);
    }

    #[test]
    fn empty_corpus_yields_empty_split() {
        let split = DatasetSplit::by_design(&[], 0.2, 0);
        assert!(split.train.is_empty());
        assert!(split.test.is_empty());
    }

    #[test]
    fn single_design_family_trains_on_it() {
        // All samples share one base design — holding it out would
        // empty the training set and panic Trainer::fit.
        let samples: Vec<GraphSample> = corpus()
            .into_iter()
            .take(4)
            .enumerate()
            .map(|(i, mut s)| {
                s.name = format!("adder4.v{i}");
                s
            })
            .collect();
        let split = DatasetSplit::by_design(&samples, 0.2, 11);
        assert_eq!(split.train.len(), samples.len());
        assert!(split.test.is_empty());
        // And fitting on that split must not panic.
        let mut trainer = Trainer::fast();
        trainer.epochs = 1;
        let outcome = trainer.fit(&samples, &split);
        assert_eq!(outcome.report.test_errors.len(), 0);
        assert_eq!(outcome.report.mean_error, 0.0);
    }

    /// Regression: an empty training split used to be reachable only
    /// as an assert panic inside `fit`.
    #[test]
    fn try_fit_reports_empty_training_set() {
        let samples = corpus();
        let split = DatasetSplit {
            train: vec![],
            test: vec![0],
        };
        let e = Trainer::fast().try_fit(&samples, &split).unwrap_err();
        assert_eq!(e, GcnError::EmptyTrainingSet);
    }

    /// Regression: a split indexing past the corpus used to panic on
    /// `samples[i]` mid-epoch; now it is rejected up front.
    #[test]
    fn try_fit_reports_out_of_range_split() {
        let samples = corpus();
        let n = samples.len();
        let mut trainer = Trainer::fast();
        trainer.epochs = 1;
        for split in [
            DatasetSplit {
                train: vec![0, n],
                test: vec![],
            },
            DatasetSplit {
                train: vec![0],
                test: vec![n + 3],
            },
        ] {
            let e = trainer.try_fit(&samples, &split).unwrap_err();
            assert_eq!(
                e,
                GcnError::SampleOutOfRange {
                    index: split
                        .train
                        .iter()
                        .chain(&split.test)
                        .copied()
                        .find(|&i| i >= n)
                        .unwrap(),
                    len: n
                }
            );
        }
    }

    /// Regression: a degenerate architecture used to panic inside
    /// `RuntimePredictor::new` when reached through the trainer.
    #[test]
    fn try_fit_reports_zero_dim_layer() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 0.2, 3);
        let mut trainer = Trainer::fast();
        trainer.config.gcn_dims = vec![];
        let e = trainer.try_fit(&samples, &split).unwrap_err();
        assert_eq!(e, GcnError::ZeroDimLayer);
    }

    /// A corrupt label (NaN log target) makes the first epoch's mean
    /// loss non-finite; the run stops with a typed error instead of
    /// grinding every remaining epoch on poisoned weights.
    #[test]
    fn try_fit_reports_non_finite_loss() {
        let mut samples = corpus();
        samples[0].log_targets[0] = f64::NAN;
        let split = DatasetSplit {
            train: (0..samples.len()).collect(),
            test: vec![],
        };
        let trainer = Trainer::fast();
        match trainer.try_fit(&samples, &split) {
            Err(GcnError::NonFiniteLoss { epoch: 0 }) => {}
            other => panic!("expected NonFiniteLoss at epoch 0, got {other:?}"),
        }
    }

    /// `try_fit` and `fit` agree bit-for-bit on a healthy run.
    #[test]
    fn try_fit_matches_fit() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 0.2, 3);
        let mut trainer = Trainer::fast();
        trainer.epochs = 2;
        let a = trainer.fit(&samples, &split);
        let b = trainer.try_fit(&samples, &split).expect("healthy run");
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.model.predict_log(&samples[0]),
            b.model.predict_log(&samples[0])
        );
    }

    #[test]
    fn fraction_zero_holds_nothing_out() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 0.0, 5);
        assert_eq!(split.train.len(), samples.len());
        assert!(split.test.is_empty());
    }

    #[test]
    fn fraction_one_holds_everything_out() {
        let samples = corpus();
        let split = DatasetSplit::by_design(&samples, 1.0, 5);
        assert!(split.train.is_empty());
        assert_eq!(split.test.len(), samples.len());
    }

    use std::collections::BTreeSet;
}
