//! Micro-batched inference: pack several graph samples into one padded
//! block-diagonal batch and run the GCN forward pass once.
//!
//! The per-sample forward pass pays its fixed costs — layer dispatch,
//! output-matrix allocation, the 1-row dense layers — once per graph.
//! A [`GraphBatch`] concatenates the node-feature matrices of `B`
//! graphs into one tall matrix, places their adjacencies on the
//! diagonal of one sparse operator (optionally padded to a row stride),
//! and lets [`crate::RuntimePredictor::predict_log_batch`] push all `B`
//! graphs through the GCN stack in a single pass, pooling each graph's
//! row segment separately and running the dense layers on a `B`-row
//! matrix.
//!
//! Because the blocks are disjoint, every per-row accumulation happens
//! in exactly the order the unbatched pass uses, so batched predictions
//! are **bit-identical** to one-at-a-time predictions — batching is a
//! pure throughput optimization, invisible to every downstream
//! consumer (verified by `batched_equals_sequential` below).
//!
//! Internally the batch is split into cache-sized chunks (block
//! diagonality makes any row partition along segment boundaries exact,
//! not approximate): one giant activation matrix would stream
//! megabytes through every layer, evicting itself between operations,
//! while chunk activations stay L1/L2-resident like the per-sample
//! path — without paying the per-sample dispatch and allocation costs
//! batching exists to amortize.

use crate::{GraphSample, Matrix, SparseMatrix};
use eda_cloud_netlist::FEATURE_DIM;

/// Default target of padded node rows per internal chunk. 192 rows
/// keeps a chunk's activations (192 × 32 f64 = 48 KiB at the widest
/// layer) cache-resident alongside the weights; a sample larger than
/// the target gets a chunk of its own. Chosen by sweeping targets in
/// the `inference_batching` bench (see `EXPERIMENTS.md`).
pub const CHUNK_TARGET_ROWS: usize = 192;

/// One cache-sized slice of a batch: a block-diagonal adjacency over a
/// consecutive run of samples, their stacked features, and the row
/// segment each occupies within the chunk.
#[derive(Debug, Clone)]
pub(crate) struct BatchChunk {
    pub(crate) a_norm: SparseMatrix,
    pub(crate) features: Matrix,
    /// `(first_row, node_count)` per sample; padding rows (zero
    /// features, no adjacency) sit between segments when a stride is
    /// requested and are ignored by pooling.
    pub(crate) segments: Vec<(usize, usize)>,
}

/// A packed batch of graph samples, split into cache-sized
/// block-diagonal chunks in sample order.
#[derive(Debug, Clone)]
pub struct GraphBatch {
    pub(crate) chunks: Vec<BatchChunk>,
    len: usize,
}

impl GraphBatch {
    /// Pack samples back to back (no padding).
    #[must_use]
    pub fn pack(samples: &[&GraphSample]) -> Self {
        Self::pack_padded(samples, 1)
    }

    /// Pack samples, padding every graph's row segment up to a multiple
    /// of `stride` with zero rows. Padding rows carry no adjacency and
    /// zero features, so they stay zero through every ReLU layer and
    /// never reach the pooled readout — predictions are independent of
    /// the stride (see `padding_does_not_change_predictions`).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn pack_padded(samples: &[&GraphSample], stride: usize) -> Self {
        Self::pack_chunked(samples, stride, CHUNK_TARGET_ROWS)
    }

    /// [`GraphBatch::pack_padded`] with an explicit chunk-row target
    /// instead of the built-in [`CHUNK_TARGET_ROWS`] default. Chunk
    /// size is a pure performance knob — predictions are bit-identical
    /// for every target (see
    /// `chunking_preserves_sample_order_and_results`) — exposed so
    /// benchmarks can measure the cache cliff that monolithic batches
    /// (`target_rows = usize::MAX`) fall off.
    ///
    /// # Panics
    ///
    /// Panics if `stride` or `target_rows` is zero.
    #[must_use]
    pub fn pack_chunked(samples: &[&GraphSample], stride: usize, target_rows: usize) -> Self {
        assert!(stride > 0, "pad stride must be positive");
        assert!(target_rows > 0, "chunk row target must be positive");
        let pad = |n: usize| n.div_ceil(stride) * stride;
        let mut chunks = Vec::new();
        let mut start = 0usize;
        while start < samples.len() {
            // Greedy chunking: at least one sample, then extend while
            // the padded row budget holds.
            let mut end = start + 1;
            let mut rows = pad(samples[start].node_count());
            while end < samples.len() && rows + pad(samples[end].node_count()) <= target_rows {
                rows += pad(samples[end].node_count());
                end += 1;
            }
            chunks.push(Self::pack_chunk(&samples[start..end], &pad));
            start = end;
        }
        Self {
            chunks,
            len: samples.len(),
        }
    }

    /// Pack one consecutive run of samples into a chunk.
    fn pack_chunk(samples: &[&GraphSample], pad: &dyn Fn(usize) -> usize) -> BatchChunk {
        let total: usize = samples.iter().map(|s| pad(s.node_count())).sum();
        let mut segments = Vec::with_capacity(samples.len());
        let mut offsets = Vec::with_capacity(samples.len());
        let mut features = Matrix::zeros(total, FEATURE_DIM);
        let mut base = 0usize;
        for s in samples {
            let n = s.node_count();
            segments.push((base, n));
            offsets.push(base);
            let dst = &mut features.data_mut()[base * FEATURE_DIM..(base + n) * FEATURE_DIM];
            dst.copy_from_slice(s.features.data());
            base += pad(n);
        }
        let blocks: Vec<&SparseMatrix> = samples.iter().map(|s| &s.a_norm).collect();
        let a_norm = SparseMatrix::block_diagonal(&blocks, &offsets, total);
        BatchChunk {
            a_norm,
            features,
            segments,
        }
    }

    /// Number of samples in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total node rows, padding included.
    #[must_use]
    pub fn node_rows(&self) -> usize {
        self.chunks.iter().map(|c| c.features.rows()).sum()
    }

    /// Number of internal cache-sized chunks.
    #[must_use]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelConfig, RuntimePredictor};
    use eda_cloud_netlist::{generators, DesignGraph};

    fn samples() -> Vec<GraphSample> {
        ["adder", "parity", "comparator", "max"]
            .iter()
            .enumerate()
            .map(|(i, family)| {
                let aig = generators::build_family(family, 4 + i as u32).expect("family");
                GraphSample::new(&DesignGraph::from_aig(&aig), [10.0, 7.0, 5.0, 4.0])
            })
            .collect()
    }

    #[test]
    fn batched_equals_sequential() {
        let samples = samples();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let model = RuntimePredictor::new(&ModelConfig::fast(), 11);
        let batch = GraphBatch::pack(&refs);
        let batched = model.predict_log_batch(&batch);
        assert_eq!(batched.len(), samples.len());
        for (s, got) in samples.iter().zip(&batched) {
            assert_eq!(*got, model.predict_log(s), "bitwise, not approximately");
        }
    }

    #[test]
    fn padding_does_not_change_predictions() {
        let samples = samples();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let model = RuntimePredictor::new(&ModelConfig::fast(), 3);
        let packed = model.predict_log_batch(&GraphBatch::pack(&refs));
        for stride in [4usize, 16, 64] {
            let padded_batch = GraphBatch::pack_padded(&refs, stride);
            assert!(padded_batch.node_rows() >= refs.iter().map(|s| s.node_count()).sum());
            assert_eq!(
                model.predict_log_batch(&padded_batch),
                packed,
                "stride {stride}"
            );
        }
    }

    #[test]
    fn chunking_preserves_sample_order_and_results() {
        // A batch wide enough to span several chunks.
        let base = samples();
        let many: Vec<&GraphSample> = (0..24).map(|i| &base[i % base.len()]).collect();
        let model = RuntimePredictor::new(&ModelConfig::fast(), 5);
        let batch = GraphBatch::pack_padded(&many, 8);
        assert!(batch.chunk_count() > 1, "expected multiple chunks");
        let batched = model.predict_log_batch(&batch);
        assert_eq!(batched.len(), many.len());
        for (s, got) in many.iter().zip(&batched) {
            assert_eq!(
                *got,
                model.predict_log(s),
                "bitwise across chunk boundaries"
            );
        }
        // The chunk-row target is a pure performance knob: one sample
        // per chunk and one monolithic chunk both reproduce the default
        // packing bit for bit.
        for target in [1usize, usize::MAX] {
            let repacked = GraphBatch::pack_chunked(&many, 8, target);
            assert_eq!(
                model.predict_log_batch(&repacked),
                batched,
                "target {target}"
            );
        }
    }

    #[test]
    fn empty_batch_predicts_nothing() {
        let model = RuntimePredictor::new(&ModelConfig::fast(), 1);
        let batch = GraphBatch::pack(&[]);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.chunk_count(), 0);
        assert!(model.predict_log_batch(&batch).is_empty());
        assert!(model.predict_secs_batch(&batch).is_empty());
    }

    #[test]
    fn secs_batch_applies_the_same_saturation() {
        let samples = samples();
        let refs: Vec<&GraphSample> = samples.iter().collect();
        let model = RuntimePredictor::new(&ModelConfig::fast(), 11);
        let batch = GraphBatch::pack(&refs);
        for (s, got) in samples.iter().zip(model.predict_secs_batch(&batch)) {
            assert_eq!(got, model.predict_secs(s));
        }
    }
}
