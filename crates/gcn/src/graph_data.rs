//! Graph samples: normalized adjacency + features + runtime targets.

use crate::{Matrix, SparseMatrix};
use eda_cloud_netlist::{DesignGraph, FEATURE_DIM};
use serde::{Deserialize, Serialize};

/// One training/evaluation sample.
///
/// Holds the mean-aggregation operator `Ā = D⁻¹A` built from the
/// design graph's fanin (incoming-edge) structure — the paper's
/// `Σ_{u∈N(v)} h_u / |N(v)|` — plus the node feature matrix and the
/// four runtime targets (1/2/4/8 vCPUs). Targets are stored in
/// log-space; runtimes span orders of magnitude across the corpus, so
/// regressing `ln(t)` with MSE keeps every design's *relative* error in
/// the loss, which is what the paper's percentage-error metric measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSample {
    /// Design name (used for family-wise dataset splits).
    pub name: String,
    /// Mean-aggregation operator, `n x n`.
    pub a_norm: SparseMatrix,
    /// Node features, `n x FEATURE_DIM`.
    pub features: Matrix,
    /// `ln(runtime_secs)` for 1, 2, 4, 8 vCPUs.
    pub log_targets: [f64; 4],
    /// Raw runtimes in seconds.
    pub targets_secs: [f64; 4],
}

impl GraphSample {
    /// Build a sample from a converted design graph and its measured
    /// (or simulated) runtimes in seconds.
    ///
    /// # Panics
    ///
    /// Panics if any target is not strictly positive.
    #[must_use]
    pub fn new(graph: &DesignGraph, targets_secs: [f64; 4]) -> Self {
        assert!(
            targets_secs.iter().all(|&t| t > 0.0),
            "runtimes must be positive"
        );
        let n = graph.node_count();
        let mut triplets: Vec<(u32, u32, f64)> = Vec::with_capacity(graph.edge_count());
        for v in 0..n {
            let fanins = graph.in_neighbors(v);
            if fanins.is_empty() {
                continue;
            }
            let w = 1.0 / fanins.len() as f64;
            for &u in fanins {
                triplets.push((v as u32, u, w));
            }
        }
        let a_norm = SparseMatrix::from_triplets(n, n, &triplets);
        let features = Matrix::from_vec(n, FEATURE_DIM, graph.features().to_vec());
        let log_targets = targets_secs.map(f64::ln);
        Self {
            name: graph.name().to_owned(),
            a_norm,
            features,
            log_targets,
            targets_secs,
        }
    }

    /// Node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.features.rows()
    }

    /// The same graph relabeled with new runtime targets — the replay
    /// buffer's way of turning a served design plus its observed
    /// ground-truth runtimes into a training sample without rebuilding
    /// the adjacency operator.
    ///
    /// # Panics
    ///
    /// Panics if any target is not strictly positive.
    #[must_use]
    pub fn with_targets(&self, targets_secs: [f64; 4]) -> Self {
        assert!(
            targets_secs.iter().all(|&t| t > 0.0),
            "runtimes must be positive"
        );
        Self {
            log_targets: targets_secs.map(f64::ln),
            targets_secs,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cloud_netlist::generators;

    #[test]
    fn adjacency_rows_sum_to_one_or_zero() {
        let g = DesignGraph::from_aig(&generators::adder(4));
        let s = GraphSample::new(&g, [4.0, 3.0, 2.0, 1.5]);
        // Multiply Ā by a column of ones: every row with fanins sums
        // to exactly 1 (mean aggregation), sources to 0.
        let ones = Matrix::from_vec(s.node_count(), 1, vec![1.0; s.node_count()]);
        let sums = s.a_norm.matmul(&ones);
        for r in 0..s.node_count() {
            let v = sums.get(r, 0);
            assert!(
                (v - 1.0).abs() < 1e-12 || v.abs() < 1e-12,
                "row {r} sums to {v}"
            );
        }
    }

    #[test]
    fn log_targets_match() {
        let g = DesignGraph::from_aig(&generators::parity(8));
        let s = GraphSample::new(&g, [100.0, 50.0, 25.0, 12.5]);
        assert!((s.log_targets[0] - 100.0f64.ln()).abs() < 1e-12);
        assert_eq!(s.targets_secs[1], 50.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_target_panics() {
        let g = DesignGraph::from_aig(&generators::parity(8));
        let _ = GraphSample::new(&g, [1.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn with_targets_relabels_without_touching_structure() {
        let g = DesignGraph::from_aig(&generators::adder(4));
        let s = GraphSample::new(&g, [1.0; 4]);
        let relabeled = s.with_targets([80.0, 50.0, 30.0, 20.0]);
        assert_eq!(relabeled.a_norm, s.a_norm);
        assert_eq!(relabeled.features, s.features);
        assert_eq!(relabeled.name, s.name);
        assert_eq!(relabeled.targets_secs, [80.0, 50.0, 30.0, 20.0]);
        assert!((relabeled.log_targets[0] - 80.0f64.ln()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn with_targets_rejects_nonpositive() {
        let g = DesignGraph::from_aig(&generators::adder(4));
        let _ = GraphSample::new(&g, [1.0; 4]).with_targets([1.0, -2.0, 1.0, 1.0]);
    }
}
