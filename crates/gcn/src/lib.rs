//! Graph Convolutional Network runtime predictor, from scratch.
//!
//! Implements the paper's Problem-2 model (Figure 4): the design — an
//! AIG for synthesis, a star-model netlist graph for placement /
//! routing / STA — is embedded by two graph-convolution layers
//! (Equation 2: mean aggregation over neighbors plus a self term),
//! sum-pooled, passed through a fully connected layer, and regressed
//! onto the four runtimes (1, 2, 4 and 8 vCPUs) with a single MSE loss.
//! Training uses Adam (lr = 1e-4) for 200 epochs, exactly the paper's
//! recipe; hidden sizes default to the paper's 256/128/128 and are
//! configurable for faster test/bench runs.
//!
//! Everything — dense matrices, sparse CSR adjacency, backpropagation,
//! Adam — is implemented in this crate with no external ML dependency.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_gcn::{GraphSample, ModelConfig, RuntimePredictor};
//! use eda_cloud_netlist::{generators, DesignGraph};
//!
//! let graph = DesignGraph::from_aig(&generators::adder(4));
//! let sample = GraphSample::new(&graph, [10.0, 6.0, 4.0, 3.0]);
//! let mut model = RuntimePredictor::new(&ModelConfig::fast(), 7);
//! let before = model.loss(&sample);
//! for _ in 0..50 {
//!     model.train_step(&sample, 1e-2);
//! }
//! assert!(model.loss(&sample) < before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod batch;
mod error;
mod graph_data;
mod layers;
mod model;
mod profile;
mod quant;
mod tensor;
mod train;

pub use adam::Adam;
pub use batch::{GraphBatch, CHUNK_TARGET_ROWS};
pub use error::GcnError;
pub use graph_data::GraphSample;
pub use layers::{DenseLayer, GcnLayer, InferScratch};
pub use model::{saturating_exp, LoadWeightsError, ModelConfig, RuntimePredictor, MAX_LOG_SECS};
pub use profile::FeatureProfile;
pub use quant::{QuantizedMatrix, QuantizedPredictor};
pub use tensor::{Matrix, SparseMatrix};
pub use train::{DatasetSplit, TrainOutcome, TrainReport, Trainer};
