//! Dense and sparse matrix primitives.

use crate::GcnError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A row-major dense matrix of `f64`.
///
/// # Examples
///
/// ```
/// use eda_cloud_gcn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization.
    #[must_use]
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self { rows, cols, data }
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Reshape to `rows x cols` with every element zeroed, reusing the
    /// existing allocation when it is large enough.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape to `rows x cols` *without* clearing surviving elements,
    /// for kernels that overwrite every element before reading any —
    /// skipping the memset [`Matrix::reshape_zeroed`] pays on multi-MB
    /// outputs. Space beyond the previous length is still zeroed.
    pub(crate) fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Flat row-major data.
    #[must_use]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned buffer, reusing its
    /// allocation. Large batched products otherwise allocate past the
    /// allocator's mmap threshold and pay a page-fault storm per call;
    /// the serving hot loop ping-pongs two buffers instead. `out` is
    /// reshaped and zeroed; the result is bit-identical to
    /// [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        out.reshape_zeroed(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    #[must_use]
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place AXPY: `self += alpha * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Element-wise ReLU.
    #[must_use]
    pub fn relu(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    /// In-place elementwise sum `self += rhs`, bit-identical to
    /// [`Matrix::add`] without the allocation (the inference hot path).
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place ReLU, bit-identical to [`Matrix::relu`] without the
    /// allocation.
    pub fn relu_in_place(&mut self) {
        for v in &mut self.data {
            *v = v.max(0.0);
        }
    }

    /// Gradient mask for ReLU: `grad * (pre > 0)`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    #[must_use]
    pub fn relu_backward(&self, pre_activation: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (pre_activation.rows, pre_activation.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&pre_activation.data)
            .map(|(&g, &z)| if z > 0.0 { g } else { 0.0 })
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum over rows (column sums), producing a `1 x cols` matrix —
    /// the sum-pooling readout.
    #[must_use]
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

/// A CSR sparse matrix used for the (normalized) adjacency.
///
/// Only the operations the GCN needs are provided: sparse-dense product
/// and transpose-product for the backward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<u32>,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from triplets `(row, col, value)`; triplets must be sorted
    /// by row (column order within a row is free, duplicates are summed
    /// by the consumer's semantics — we keep them as-is).
    ///
    /// # Panics
    ///
    /// Panics if a triplet is out of range or rows are not sorted.
    #[must_use]
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        let mut offsets = vec![0u32; rows + 1];
        let mut last_row = 0u32;
        for &(r, c, _) in triplets {
            assert!((r as usize) < rows && (c as usize) < cols, "out of range");
            assert!(r >= last_row, "triplets must be sorted by row");
            last_row = r;
            offsets[r as usize + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        Self {
            rows,
            cols,
            offsets,
            indices: triplets.iter().map(|t| t.1).collect(),
            values: triplets.iter().map(|t| t.2).collect(),
        }
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate the stored entries as `(row, col, value)` triplets in
    /// row-major storage order — the order [`SparseMatrix::from_triplets`]
    /// received them in.
    pub fn entries(&self) -> impl Iterator<Item = (u32, u32, f64)> + '_ {
        (0..self.rows).flat_map(move |r| {
            (self.offsets[r] as usize..self.offsets[r + 1] as usize)
                .map(move |k| (r as u32, self.indices[k], self.values[k]))
        })
    }

    /// Stack matrices along the diagonal: block `i` occupies rows
    /// `row_offsets[i]..row_offsets[i] + blocks[i].rows()` (and the same
    /// columns), everything off the blocks is zero. `row_offsets` must
    /// be ascending and leave room for each block; the final dimension
    /// is `total` in both directions. Used to pack several graphs into
    /// one batched adjacency whose per-row products are bit-identical
    /// to the unbatched ones.
    ///
    /// # Panics
    ///
    /// Panics if offsets/blocks disagree in count, a block overruns its
    /// slot or `total`, or a block is not square.
    #[must_use]
    pub fn block_diagonal(blocks: &[&SparseMatrix], row_offsets: &[usize], total: usize) -> Self {
        assert_eq!(blocks.len(), row_offsets.len(), "one offset per block");
        let mut triplets = Vec::with_capacity(blocks.iter().map(|b| b.nnz()).sum());
        let mut prev_end = 0usize;
        for (block, &base) in blocks.iter().zip(row_offsets) {
            assert_eq!(block.rows, block.cols, "blocks must be square");
            assert!(
                base >= prev_end,
                "row offsets must ascend past the previous block"
            );
            prev_end = base + block.rows;
            assert!(prev_end <= total, "block overruns the batched dimension");
            for (r, c, v) in block.entries() {
                triplets.push((r + base as u32, c + base as u32, v));
            }
        }
        Self::from_triplets(total, total, &triplets)
    }

    /// Sparse-dense product `self * dense`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != dense.rows()` or the CSR arrays are
    /// corrupt ([`SparseMatrix::matmul_into`] is the fallible form).
    #[must_use]
    pub fn matmul(&self, dense: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(dense, &mut out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// [`SparseMatrix::matmul`] into a caller-owned buffer, reusing its
    /// allocation (see [`Matrix::matmul_into`] for why the serving hot
    /// loop needs this). `out` is reshaped and zeroed; the result is
    /// bit-identical to [`SparseMatrix::matmul`].
    ///
    /// This is the serving hot kernel, laid out SIMD-friendly: the
    /// output row is resolved once per CSR row (not once per stored
    /// entry) and the inner loop is a unit-stride `out += v * dense_row`
    /// AXPY over contiguous slices, which autovectorizes. Each output
    /// element accumulates its terms in CSR storage order, so the
    /// result is bit-identical to the naive triple loop.
    ///
    /// # Errors
    ///
    /// Returns [`GcnError::ShapeMismatch`] when `self.cols` does not
    /// match `dense.rows()`, [`GcnError::ColumnOutOfRange`] when a
    /// stored entry's column index points outside the matrix, and
    /// [`GcnError::CorruptSparse`] when the row-offset table is
    /// inconsistent (both arise from deserialized or hand-built
    /// operands — [`SparseMatrix::from_triplets`] never produces
    /// them). `out` holds an unspecified partial product after an
    /// error.
    pub fn matmul_into(&self, dense: &Matrix, out: &mut Matrix) -> Result<(), GcnError> {
        if self.cols != dense.rows() {
            return Err(GcnError::ShapeMismatch {
                op: "sparse matmul",
                expected: (self.cols, dense.cols()),
                found: (dense.rows(), dense.cols()),
            });
        }
        let c = dense.cols();
        out.reshape_zeroed(self.rows, c);
        let dense_data = &dense.data;
        let out_data = &mut out.data;
        for r in 0..self.rows {
            let (lo, hi) = (self.offsets[r] as usize, self.offsets[r + 1] as usize);
            let (idx, vals) = match (self.indices.get(lo..hi), self.values.get(lo..hi)) {
                (Some(i), Some(v)) => (i, v),
                _ => return Err(GcnError::CorruptSparse { row: r }),
            };
            let orow = &mut out_data[r * c..(r + 1) * c];
            for (&j, &v) in idx.iter().zip(vals) {
                let j = j as usize;
                let Some(drow) = dense_data.get(j * c..j * c + c) else {
                    return Err(GcnError::ColumnOutOfRange {
                        row: r,
                        col: j,
                        cols: self.cols,
                    });
                };
                for (o, &d) in orow.iter_mut().zip(drow) {
                    *o += v * d;
                }
            }
        }
        Ok(())
    }

    /// Transposed sparse-dense product `selfᵀ * dense` (needed to push
    /// gradients backward through the aggregation).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != dense.rows()`.
    #[must_use]
    pub fn matmul_transposed(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "inner dimensions must agree");
        let c = dense.cols();
        let mut out = Matrix::zeros(self.cols, c);
        for r in 0..self.rows {
            let drow: Vec<f64> = dense.row(r).to_vec();
            for k in self.offsets[r] as usize..self.offsets[r + 1] as usize {
                let j = self.indices[k] as usize;
                let v = self.values[k];
                let orow = &mut out.data_mut()[j * c..(j + 1) * c];
                for (o, &d) in orow.iter_mut().zip(&drow) {
                    *o += v * d;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn relu_and_backward() {
        let z = Matrix::from_rows(&[&[-1.0, 2.0], &[0.0, -3.0]]);
        let a = z.relu();
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 2.0], &[0.0, 0.0]]));
        let g = Matrix::from_rows(&[&[10.0, 10.0], &[10.0, 10.0]]);
        let back = g.relu_backward(&z);
        assert_eq!(back, Matrix::from_rows(&[&[0.0, 10.0], &[0.0, 0.0]]));
    }

    #[test]
    fn sum_rows_pools() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.sum_rows(), Matrix::from_rows(&[&[9.0, 12.0]]));
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = Matrix::xavier(20, 30, &mut rng);
        let bound = (6.0 / 50.0f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound));
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn sparse_matches_dense() {
        // A = [[0, 2], [1, 0]]; X = [[1, 1], [2, 3]].
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 3.0]]);
        assert_eq!(a.matmul(&x), Matrix::from_rows(&[&[4.0, 6.0], &[1.0, 1.0]]));
        // Aᵀ X = [[0,1],[2,0]] * X = [[2,3],[2,2]].
        assert_eq!(
            a.matmul_transposed(&x),
            Matrix::from_rows(&[&[2.0, 3.0], &[2.0, 2.0]])
        );
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "sorted by row")]
    fn unsorted_triplets_panic() {
        let _ = SparseMatrix::from_triplets(2, 2, &[(1, 0, 1.0), (0, 1, 1.0)]);
    }

    /// Regression: a CSR entry whose column index points outside the
    /// matrix (a deserialized or hand-built operand — `from_triplets`
    /// rejects it up front) used to index the dense operand silently
    /// out of bounds; now it is a typed error.
    #[test]
    fn out_of_range_column_is_a_typed_error() {
        let corrupt = SparseMatrix {
            rows: 2,
            cols: 2,
            offsets: vec![0, 1, 2],
            indices: vec![0, 2], // column 2 in a 2-column matrix
            values: vec![1.0, 1.0],
        };
        let x = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(0, 0);
        assert_eq!(
            corrupt.matmul_into(&x, &mut out),
            Err(GcnError::ColumnOutOfRange {
                row: 1,
                col: 2,
                cols: 2
            })
        );
    }

    /// Regression: an offset table overrunning the entry arrays used to
    /// panic on slicing; now it is a typed error naming the row.
    #[test]
    fn inconsistent_offsets_are_a_typed_error() {
        let corrupt = SparseMatrix {
            rows: 2,
            cols: 2,
            offsets: vec![0, 3, 4], // claims 4 entries, arrays hold 1
            indices: vec![0],
            values: vec![1.0],
        };
        let x = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(0, 0);
        assert_eq!(
            corrupt.matmul_into(&x, &mut out),
            Err(GcnError::CorruptSparse { row: 0 })
        );
    }

    /// The panicking wrapper carries the typed error's message.
    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn sparse_matmul_wrapper_panics_on_mismatch() {
        let a = SparseMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        let x = Matrix::zeros(2, 2);
        let _ = a.matmul(&x);
    }

    #[test]
    fn entries_roundtrip_triplets() {
        let t = [(0u32, 1u32, 2.0f64), (1, 0, 1.0), (1, 1, 3.0)];
        let a = SparseMatrix::from_triplets(2, 2, &t);
        let got: Vec<(u32, u32, f64)> = a.entries().collect();
        assert_eq!(got, t);
    }

    #[test]
    fn block_diagonal_isolates_blocks() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 1.0)]);
        let b = SparseMatrix::from_triplets(1, 1, &[(0, 0, 5.0)]);
        // Block `b` starts at row 3, leaving a zero padding row at 2.
        let big = SparseMatrix::block_diagonal(&[&a, &b], &[0, 3], 4);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[9.0], &[4.0]]);
        let y = big.matmul(&x);
        assert_eq!(y.get(0, 0), 4.0, "a's rows see only a's columns");
        assert_eq!(y.get(1, 0), 1.0);
        assert_eq!(y.get(2, 0), 0.0, "padding row has no entries");
        assert_eq!(y.get(3, 0), 20.0, "b's row sees only b's columns");
    }

    #[test]
    #[should_panic(expected = "overruns")]
    fn block_diagonal_rejects_overrun() {
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        let _ = SparseMatrix::block_diagonal(&[&a], &[1], 2);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(1, 3);
        a.axpy(2.0, &Matrix::from_rows(&[&[1.0, 2.0, 3.0]]));
        assert_eq!(a, Matrix::from_rows(&[&[2.0, 4.0, 6.0]]));
    }
}
