//! Network layers with manual backpropagation.

use crate::{GcnError, Matrix, SparseMatrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Reusable scratch buffers for [`GcnLayer::infer_into`]. One instance
/// amortizes the two intermediate products across every layer of every
/// request in a serving loop — after the first call the steady state
/// allocates nothing.
#[derive(Debug, Clone, Default)]
pub struct InferScratch {
    /// `Ā·H` aggregation product.
    agg: Matrix,
    /// `H·B` self-term product.
    selfterm: Matrix,
}

impl InferScratch {
    /// Empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One graph-convolution layer implementing the paper's Equation (2):
///
/// `H' = ReLU( Ā·H·W  +  H·B )`
///
/// where `Ā` is the mean-aggregation operator over each node's
/// neighbors, `W` the aggregation weights, and `B` the self-loop
/// weights. Both are trainable and shared across all nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnLayer {
    /// Aggregation weight matrix (`in x out`).
    pub w: Matrix,
    /// Self-term weight matrix (`in x out`).
    pub b: Matrix,
}

/// Cached forward state needed by the backward pass.
#[derive(Debug, Clone)]
pub struct GcnCache {
    /// Input activations `H`.
    pub input: Matrix,
    /// Aggregated input `Ā·H`.
    pub aggregated: Matrix,
    /// Pre-activation `Z`.
    pub pre_activation: Matrix,
}

/// Parameter gradients of one GCN layer.
#[derive(Debug, Clone)]
pub struct GcnGrads {
    /// `∂L/∂W`.
    pub dw: Matrix,
    /// `∂L/∂B`.
    pub db: Matrix,
}

impl GcnLayer {
    /// Xavier-initialized layer.
    #[must_use]
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, rng),
            b: Matrix::xavier(in_dim, out_dim, rng),
        }
    }

    /// Forward pass; returns activations and the cache for backward.
    #[must_use]
    pub fn forward(&self, a_norm: &SparseMatrix, input: &Matrix) -> (Matrix, GcnCache) {
        let aggregated = a_norm.matmul(input);
        let pre_activation = aggregated.matmul(&self.w).add(&input.matmul(&self.b));
        let out = pre_activation.relu();
        (
            out,
            GcnCache {
                input: input.clone(),
                aggregated,
                pre_activation,
            },
        )
    }

    /// Inference-only forward: the same arithmetic as
    /// [`GcnLayer::forward`] — bit-identical output — without
    /// materializing the backward caches. Serving runs batches of
    /// thousands of node rows, where the cache clones triple the
    /// memory traffic for state inference never reads.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch or corrupt adjacency
    /// ([`GcnLayer::infer_into`] is the fallible form).
    #[must_use]
    pub fn infer(&self, a_norm: &SparseMatrix, input: &Matrix) -> Matrix {
        let mut scratch = InferScratch::new();
        let mut out = Matrix::zeros(0, 0);
        self.infer_into(a_norm, input, &mut scratch, &mut out)
            .unwrap_or_else(|e| panic!("{e}"));
        out
    }

    /// [`GcnLayer::infer`] into caller-owned buffers: `out` receives
    /// the activations and `scratch` absorbs the two intermediate
    /// products, so a warm serving loop runs the whole layer stack
    /// without allocating. Output is bit-identical to
    /// [`GcnLayer::forward`].
    ///
    /// # Errors
    ///
    /// Propagates the adjacency kernel's typed errors (see
    /// [`SparseMatrix::matmul_into`]); `out`/`scratch` hold
    /// unspecified partial products after an error.
    pub fn infer_into(
        &self,
        a_norm: &SparseMatrix,
        input: &Matrix,
        scratch: &mut InferScratch,
        out: &mut Matrix,
    ) -> Result<(), GcnError> {
        a_norm.matmul_into(input, &mut scratch.agg)?;
        scratch.agg.matmul_into(&self.w, out);
        input.matmul_into(&self.b, &mut scratch.selfterm);
        out.add_assign(&scratch.selfterm);
        out.relu_in_place();
        Ok(())
    }

    /// Backward pass: given `∂L/∂H'`, produce parameter gradients and
    /// `∂L/∂H` for the upstream layer.
    #[must_use]
    pub fn backward(
        &self,
        a_norm: &SparseMatrix,
        cache: &GcnCache,
        grad_out: &Matrix,
    ) -> (GcnGrads, Matrix) {
        let dz = grad_out.relu_backward(&cache.pre_activation);
        let dw = cache.aggregated.transpose().matmul(&dz);
        let db = cache.input.transpose().matmul(&dz);
        // dH = Āᵀ (dZ Wᵀ) + dZ Bᵀ
        let dzw = dz.matmul(&self.w.transpose());
        let dh = a_norm
            .matmul_transposed(&dzw)
            .add(&dz.matmul(&self.b.transpose()));
        (GcnGrads { dw, db }, dh)
    }

    /// Flatten parameters for the optimizer: `[W, B]`.
    pub fn params_mut(&mut self) -> [&mut Matrix; 2] {
        [&mut self.w, &mut self.b]
    }
}

/// A fully connected layer `y = x·W + bias`, with optional ReLU handled
/// by the caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weights (`in x out`).
    pub w: Matrix,
    /// Bias (`1 x out`).
    pub bias: Matrix,
}

/// Cached forward state of a dense layer.
#[derive(Debug, Clone)]
pub struct DenseCache {
    /// Layer input.
    pub input: Matrix,
}

/// Parameter gradients of a dense layer.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// `∂L/∂W`.
    pub dw: Matrix,
    /// `∂L/∂bias`.
    pub dbias: Matrix,
}

impl DenseLayer {
    /// Xavier-initialized layer with zero bias.
    #[must_use]
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Self {
            w: Matrix::xavier(in_dim, out_dim, rng),
            bias: Matrix::zeros(1, out_dim),
        }
    }

    /// Forward pass (`rows` of `input` are independent samples).
    #[must_use]
    pub fn forward(&self, input: &Matrix) -> (Matrix, DenseCache) {
        let mut out = input.matmul(&self.w);
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + self.bias.get(0, c);
                out.set(r, c, v);
            }
        }
        (
            out,
            DenseCache {
                input: input.clone(),
            },
        )
    }

    /// Inference-only forward, bit-identical to [`DenseLayer::forward`]
    /// without cloning the input for a backward pass.
    #[must_use]
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.w);
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c) + self.bias.get(0, c);
                out.set(r, c, v);
            }
        }
        out
    }

    /// Backward pass: returns gradients and `∂L/∂input`.
    #[must_use]
    pub fn backward(&self, cache: &DenseCache, grad_out: &Matrix) -> (DenseGrads, Matrix) {
        let dw = cache.input.transpose().matmul(grad_out);
        let dbias = grad_out.sum_rows();
        let dinput = grad_out.matmul(&self.w.transpose());
        (DenseGrads { dw, dbias }, dinput)
    }

    /// Flatten parameters for the optimizer: `[W, bias]`.
    pub fn params_mut(&mut self) -> [&mut Matrix; 2] {
        [&mut self.w, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny_graph() -> SparseMatrix {
        // 3 nodes: 0 -> 2, 1 -> 2 (node 2 averages its two fanins).
        SparseMatrix::from_triplets(3, 3, &[(2, 0, 0.5), (2, 1, 0.5)])
    }

    #[test]
    fn gcn_forward_aggregates_neighbors() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut layer = GcnLayer::new(1, 1, &mut rng);
        // Make weights identity-ish: W = 1, B = 0.
        layer.w = Matrix::from_rows(&[&[1.0]]);
        layer.b = Matrix::from_rows(&[&[0.0]]);
        let x = Matrix::from_rows(&[&[2.0], &[4.0], &[100.0]]);
        let (out, _) = layer.forward(&tiny_graph(), &x);
        // Node 2 receives mean(2, 4) = 3; nodes 0, 1 have no fanins.
        assert_eq!(out.get(2, 0), 3.0);
        assert_eq!(out.get(0, 0), 0.0);
    }

    /// Numerical gradient check: the analytic backward pass must match
    /// finite differences on every parameter.
    #[test]
    fn gcn_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let a = tiny_graph();
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.3], &[-0.2, 0.8]]);
        // Loss = sum of outputs (grad_out = ones).
        let loss = |l: &GcnLayer| -> f64 {
            let (out, _) = l.forward(&a, &x);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&a, &x);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let (grads, _) = layer.backward(&a, &cache, &ones);

        let eps = 1e-6;
        for (pick_grad, name) in [(0usize, "w"), (1, "b")] {
            for r in 0..2 {
                for c in 0..2 {
                    let mut plus = layer.clone();
                    let mut minus = layer.clone();
                    let (p, m) = if pick_grad == 0 {
                        (&mut plus.w, &mut minus.w)
                    } else {
                        (&mut plus.b, &mut minus.b)
                    };
                    p.set(r, c, p.get(r, c) + eps);
                    m.set(r, c, m.get(r, c) - eps);
                    let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                    let analytic = if pick_grad == 0 {
                        grads.dw.get(r, c)
                    } else {
                        grads.db.get(r, c)
                    };
                    assert!(
                        (numeric - analytic).abs() < 1e-5,
                        "{name}[{r}][{c}]: numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn gcn_input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let layer = GcnLayer::new(2, 2, &mut rng);
        let a = tiny_graph();
        let x = Matrix::from_rows(&[&[0.5, -1.0], &[1.5, 0.3], &[-0.2, 0.8]]);
        let loss = |x: &Matrix| -> f64 {
            let (out, _) = layer.forward(&a, x);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&a, &x);
        let ones = Matrix::from_vec(out.rows(), out.cols(), vec![1.0; out.rows() * out.cols()]);
        let (_, dx) = layer.backward(&a, &cache, &ones);
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let mut plus = x.clone();
                let mut minus = x.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (numeric - dx.get(r, c)).abs() < 1e-5,
                    "x[{r}][{c}]: numeric {numeric} vs analytic {}",
                    dx.get(r, c)
                );
            }
        }
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let layer = DenseLayer::new(3, 2, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, -2.0, 0.5]]);
        let loss = |l: &DenseLayer| -> f64 {
            let (out, _) = l.forward(&x);
            out.data().iter().sum()
        };
        let (out, cache) = layer.forward(&x);
        let ones = Matrix::from_vec(1, out.cols(), vec![1.0; out.cols()]);
        let (grads, _) = layer.backward(&cache, &ones);
        let eps = 1e-6;
        for r in 0..3 {
            for c in 0..2 {
                let mut plus = layer.clone();
                plus.w.set(r, c, plus.w.get(r, c) + eps);
                let mut minus = layer.clone();
                minus.w.set(r, c, minus.w.get(r, c) - eps);
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!((numeric - grads.dw.get(r, c)).abs() < 1e-5);
            }
        }
        for c in 0..2 {
            let mut plus = layer.clone();
            plus.bias.set(0, c, plus.bias.get(0, c) + eps);
            let mut minus = layer.clone();
            minus.bias.set(0, c, minus.bias.get(0, c) - eps);
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((numeric - grads.dbias.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn dense_bias_applied_per_row() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mut layer = DenseLayer::new(1, 1, &mut rng);
        layer.w = Matrix::from_rows(&[&[2.0]]);
        layer.bias = Matrix::from_rows(&[&[10.0]]);
        let (out, _) = layer.forward(&Matrix::from_rows(&[&[1.0], &[3.0]]));
        assert_eq!(out.get(0, 0), 12.0);
        assert_eq!(out.get(1, 0), 16.0);
    }
}
