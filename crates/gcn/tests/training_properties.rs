//! Property-based tests for the GCN stack.

use eda_cloud_gcn::{GraphSample, Matrix, ModelConfig, RuntimePredictor};
use eda_cloud_netlist::{generators, DesignGraph};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions are finite and positive for any seed and any family
    /// graph, even untrained.
    #[test]
    fn untrained_predictions_are_finite(
        seed in 0u64..1_000,
        size in 2u32..8,
        fam in proptest::sample::select(generators::FAMILY_NAMES.to_vec()),
    ) {
        let aig = generators::build_family(fam, size).expect("family");
        let sample = GraphSample::new(&DesignGraph::from_aig(&aig), [1.0, 1.0, 1.0, 1.0]);
        let model = RuntimePredictor::new(&ModelConfig::fast(), seed);
        let pred = model.predict_secs(&sample);
        prop_assert!(pred.iter().all(|p| p.is_finite() && *p > 0.0));
    }

    /// A training step on any sample never produces NaNs in the
    /// prediction path.
    #[test]
    fn training_steps_stay_finite(seed in 0u64..200, lr_exp in 1u32..4) {
        let aig = generators::adder(4);
        let sample = GraphSample::new(&DesignGraph::from_aig(&aig), [50.0, 30.0, 20.0, 15.0]);
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), seed);
        let lr = 10f64.powi(-(lr_exp as i32));
        for _ in 0..20 {
            let loss = model.train_step(&sample, lr);
            prop_assert!(loss.is_finite());
        }
        prop_assert!(model.predict_log(&sample).iter().all(|v| v.is_finite()));
    }

    /// Matrix transpose is an involution and matmul with identity is a
    /// no-op, for random shapes.
    #[test]
    fn matrix_algebra_identities(rows in 1usize..10, cols in 1usize..10, seed in 0u64..500) {
        let mut vals = Vec::with_capacity(rows * cols);
        let mut s = seed | 1;
        for _ in 0..rows * cols {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            vals.push(((s >> 33) % 1000) as f64 / 100.0 - 5.0);
        }
        let m = Matrix::from_vec(rows, cols, vals);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let id = Matrix::identity(cols);
        prop_assert_eq!(m.matmul(&id), m);
    }
}
