//! Property-based tests for the GCN stack.

use eda_cloud_gcn::{GcnError, GraphSample, Matrix, ModelConfig, RuntimePredictor, SparseMatrix};
use eda_cloud_netlist::{generators, DesignGraph};
use proptest::prelude::*;

/// Pseudo-random value stream for matrix contents (proptest drives the
/// shapes; an LCG fills the cells deterministically from a seed).
fn lcg_values(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
            ((s >> 33) % 1000) as f64 / 100.0 - 5.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Predictions are finite and positive for any seed and any family
    /// graph, even untrained.
    #[test]
    fn untrained_predictions_are_finite(
        seed in 0u64..1_000,
        size in 2u32..8,
        fam in proptest::sample::select(generators::FAMILY_NAMES.to_vec()),
    ) {
        let aig = generators::build_family(fam, size).expect("family");
        let sample = GraphSample::new(&DesignGraph::from_aig(&aig), [1.0, 1.0, 1.0, 1.0]);
        let model = RuntimePredictor::new(&ModelConfig::fast(), seed);
        let pred = model.predict_secs(&sample);
        prop_assert!(pred.iter().all(|p| p.is_finite() && *p > 0.0));
    }

    /// A training step on any sample never produces NaNs in the
    /// prediction path.
    #[test]
    fn training_steps_stay_finite(seed in 0u64..200, lr_exp in 1u32..4) {
        let aig = generators::adder(4);
        let sample = GraphSample::new(&DesignGraph::from_aig(&aig), [50.0, 30.0, 20.0, 15.0]);
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), seed);
        let lr = 10f64.powi(-(lr_exp as i32));
        for _ in 0..20 {
            let loss = model.train_step(&sample, lr);
            prop_assert!(loss.is_finite());
        }
        prop_assert!(model.predict_log(&sample).iter().all(|v| v.is_finite()));
    }

    /// Matrix transpose is an involution and matmul with identity is a
    /// no-op, for random shapes.
    #[test]
    fn matrix_algebra_identities(rows in 1usize..10, cols in 1usize..10, seed in 0u64..500) {
        let m = Matrix::from_vec(rows, cols, lcg_values(seed, rows * cols));
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let id = Matrix::identity(cols);
        prop_assert_eq!(m.matmul(&id), m);
    }

    /// The CSR sparse kernel agrees bit-for-bit with a dense reference
    /// matmul for random sparsity patterns, shapes, and contents: with
    /// entries sorted by `(row, col)`, both kernels accumulate each
    /// output element over the same columns in the same order.
    #[test]
    fn sparse_matmul_matches_dense_reference(
        rows in 1usize..12,
        cols in 1usize..12,
        rhs_cols in 1usize..8,
        density in 0u32..100,
        seed in 0u64..10_000,
    ) {
        let vals = lcg_values(seed, rows * cols);
        let mask = lcg_values(seed ^ 0xD5, rows * cols);
        let mut triplets = Vec::new();
        let mut dense_lhs = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                // `mask` spans [-5, 5); keep ~density% of the cells.
                if (mask[r * cols + c] + 5.0) * 10.0 < f64::from(density) {
                    let v = vals[r * cols + c];
                    triplets.push((r as u32, c as u32, v));
                    dense_lhs.set(r, c, v);
                }
            }
        }
        let sparse = SparseMatrix::from_triplets(rows, cols, &triplets);
        let rhs = Matrix::from_vec(cols, rhs_cols, lcg_values(seed ^ 0x9E, cols * rhs_cols));
        let mut got = Matrix::zeros(0, 0);
        sparse.matmul_into(&rhs, &mut got).expect("valid operands");
        prop_assert_eq!(got, dense_lhs.matmul(&rhs));
    }

    /// A right-hand side of the wrong height is a typed error, for any
    /// mismatched shape pair.
    #[test]
    fn sparse_matmul_rejects_shape_mismatch(
        cols in 1usize..10,
        wrong in 1usize..10,
        rhs_cols in 1usize..6,
    ) {
        // Skew past `cols` instead of discarding the case (the local
        // proptest shim has no `prop_assume`).
        let wrong = if wrong == cols { wrong + 10 } else { wrong };
        let sparse = SparseMatrix::from_triplets(2, cols, &[(0, 0, 1.0)]);
        let rhs = Matrix::zeros(wrong, rhs_cols);
        let mut out = Matrix::zeros(0, 0);
        prop_assert_eq!(
            sparse.matmul_into(&rhs, &mut out),
            Err(GcnError::ShapeMismatch {
                op: "sparse matmul",
                expected: (cols, rhs_cols),
                found: (wrong, rhs_cols),
            })
        );
    }
}
