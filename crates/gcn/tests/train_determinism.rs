//! Determinism guarantees for the training path.
//!
//! The lifecycle controller retrains models while serving traffic, so
//! the training path must be bit-reproducible: the same seed and the
//! same replay buffer must yield byte-identical weights no matter how
//! many worker threads the surrounding fan-out uses. These tests pin
//! that contract at three levels: a single Adam step against golden
//! values, `fine_tune` run twice from the same state, and `fine_tune`
//! fanned out across 1/2/8 scoped threads joined by stage index.

use eda_cloud_gcn::{Adam, GraphSample, Matrix, ModelConfig, RuntimePredictor};
use eda_cloud_netlist::{generators, DesignGraph};

fn buffer() -> Vec<GraphSample> {
    let specs: [(&str, [f64; 4]); 6] = [
        ("adder6", [610.0, 434.0, 345.0, 335.0]),
        ("adder8", [1206.0, 905.0, 644.0, 519.0]),
        ("parity8", [104.0, 55.0, 28.0, 16.0]),
        ("parity10", [183.0, 119.0, 90.0, 82.0]),
        ("decoder6", [420.0, 260.0, 170.0, 120.0]),
        ("comparator6", [318.0, 201.0, 140.0, 101.0]),
    ];
    specs
        .iter()
        .map(|(name, targets)| {
            let aig = match *name {
                "adder6" => generators::adder(6),
                "adder8" => generators::adder(8),
                "parity8" => generators::parity(8),
                "parity10" => generators::parity(10),
                "decoder6" => generators::decoder(6),
                _ => generators::comparator(6),
            };
            GraphSample::new(&DesignGraph::from_aig(&aig), *targets)
        })
        .collect()
}

#[test]
fn adam_step_matches_golden_values() {
    // One hand-checked Adam update: param 1.0, grad 0.5, lr 0.1.
    // After bias correction the first step moves by almost exactly
    // -lr * sign(grad): m̂ = 0.5, v̂ = 0.25, so
    // Δ = -0.1 * 0.5 / (0.5 + 1e-8) ≈ -0.099999998.
    let mut adam = Adam::new(1, 1);
    let mut param = Matrix::from_vec(1, 1, vec![1.0]);
    let grad = Matrix::from_vec(1, 1, vec![0.5]);
    adam.step(&mut param, &grad, 0.1);
    assert_eq!(adam.steps(), 1);
    let expected = 1.0 - 0.1 * 0.5 / (0.25f64.sqrt() + 1e-8);
    assert!(
        (param.get(0, 0) - expected).abs() < 1e-15,
        "got {}, want {expected}",
        param.get(0, 0)
    );

    // Second step with the same gradient: the moment EMAs start from
    // zero, so m = 0.9*0.05 + 0.1*0.5 and v = 0.999*0.00025 + 0.001*0.25,
    // with bias corrections at t = 2. Both hats collapse back to 0.5 and
    // 0.25, so the step moves by ≈ -lr again.
    adam.step(&mut param, &grad, 0.1);
    let m = 0.9 * (0.1 * 0.5) + 0.1 * 0.5;
    let v = 0.999 * (0.001 * 0.25) + 0.001 * 0.25;
    let m_hat = m / (1.0 - 0.9f64.powi(2));
    let v_hat = v / (1.0 - 0.999f64.powi(2));
    let expected2 = expected - 0.1 * m_hat / (v_hat.sqrt() + 1e-8);
    assert!(
        (param.get(0, 0) - expected2).abs() < 1e-15,
        "got {}, want {expected2}",
        param.get(0, 0)
    );
}

#[test]
fn fine_tune_is_bit_reproducible() {
    let samples = buffer();
    let refs: Vec<&GraphSample> = samples.iter().collect();
    let run = || {
        let mut model = RuntimePredictor::new(&ModelConfig::fast(), 41);
        let losses = model.fine_tune(&refs, 6, 3e-3, 7);
        (model.save_weights(), losses)
    };
    let (w1, l1) = run();
    let (w2, l2) = run();
    assert_eq!(
        w1, w2,
        "same seed + same buffer must give identical weights"
    );
    assert_eq!(l1, l2);

    // A different seed must visit the samples in a different order and
    // therefore land on different weights — otherwise the seed is dead.
    let mut other = RuntimePredictor::new(&ModelConfig::fast(), 41);
    other.fine_tune(&refs, 6, 3e-3, 8);
    assert_ne!(w1, other.save_weights());
}

#[test]
fn fine_tune_fanout_is_worker_invariant() {
    // The retrainer fine-tunes the four stage models in a scoped-thread
    // fan-out joined by stage index. Whatever the worker count, the
    // weights that land in slot k must be byte-identical.
    let samples = buffer();
    let fan_out = |workers: usize| -> Vec<String> {
        let mut out: Vec<Option<String>> = vec![None; 4];
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..workers.min(4) {
                let samples = &samples;
                handles.push((
                    t,
                    scope.spawn(move || {
                        let mut slot: Vec<(usize, String)> = Vec::new();
                        for k in (t..4).step_by(workers.min(4)) {
                            let refs: Vec<&GraphSample> = samples.iter().collect();
                            let mut model =
                                RuntimePredictor::new(&ModelConfig::fast(), 41 + k as u64);
                            model.fine_tune(&refs, 4, 3e-3, 7 ^ (k as u64) << 8);
                            slot.push((k, model.save_weights()));
                        }
                        slot
                    }),
                ));
            }
            for (_, handle) in handles {
                for (k, weights) in handle.join().expect("worker panicked") {
                    out[k] = Some(weights);
                }
            }
        });
        out.into_iter()
            .map(|w| w.expect("all stages filled"))
            .collect()
    };
    let w1 = fan_out(1);
    let w2 = fan_out(2);
    let w8 = fan_out(8);
    assert_eq!(w1, w2, "1 vs 2 workers diverged");
    assert_eq!(w1, w8, "1 vs 8 workers diverged");
}
