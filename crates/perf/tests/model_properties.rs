//! Property-based tests for the machine execution model.

use eda_cloud_perf::{CounterSet, MachineConfig, MachineModel, StageWork};
use proptest::prelude::*;

prop_compose! {
    fn arbitrary_counters()(
        instructions in 1_000u64..10_000_000,
        branches in 0u64..1_000_000,
        branch_misses_frac in 0u64..100,
        cache_refs in 0u64..1_000_000,
        l1_frac in 0u64..100,
        llc_frac in 0u64..100,
        flops in 0u64..500_000,
        avx_ops in 0u64..500_000,
    ) -> CounterSet {
        let branch_misses = branches * branch_misses_frac / 100;
        let l1_misses = cache_refs * l1_frac / 100;
        let llc_misses = l1_misses * llc_frac / 100;
        CounterSet {
            instructions,
            branches,
            branch_misses,
            cache_refs,
            l1_misses,
            llc_misses,
            flops,
            avx_ops,
        }
    }
}

proptest! {
    /// Runtime is positive and decreases (weakly) as vCPUs grow, for any
    /// counter profile and parallel fraction, on a quiet machine with
    /// zero sync overhead.
    #[test]
    fn more_vcpus_never_hurt_without_sync(
        counters in arbitrary_counters(),
        p in 0.0f64..1.0,
    ) {
        let model = MachineModel::default();
        let work = StageWork::from_counters(&counters, p, 0.0, &model);
        let mut last = f64::INFINITY;
        for vcpus in [1u32, 2, 4, 8] {
            let t = model.runtime_secs(&work, &MachineConfig::vcpus(vcpus));
            prop_assert!(t > 0.0);
            prop_assert!(t <= last * (1.0 + 1e-9), "vcpus={vcpus}: {t} > {last}");
            last = t;
        }
    }

    /// Speedup never exceeds the effective core count.
    #[test]
    fn speedup_bounded_by_cores(
        counters in arbitrary_counters(),
        p in 0.0f64..1.0,
    ) {
        let model = MachineModel::default();
        let work = StageWork::from_counters(&counters, p, 0.0, &model);
        let t1 = model.runtime_secs(&work, &MachineConfig::vcpus(1));
        let t8 = model.runtime_secs(&work, &MachineConfig::vcpus(8));
        let eff = model.effective_cores(&MachineConfig::vcpus(8));
        prop_assert!(t1 / t8 <= eff + 1e-9);
    }

    /// The work split conserves total cycles regardless of the fraction.
    #[test]
    fn work_split_conserves_cycles(
        counters in arbitrary_counters(),
        p1 in 0.0f64..1.0,
        p2 in 0.0f64..1.0,
    ) {
        let model = MachineModel::default();
        let a = StageWork::from_counters(&counters, p1, 0.0, &model);
        let b = StageWork::from_counters(&counters, p2, 0.0, &model);
        prop_assert!((a.total_cycles() - b.total_cycles()).abs() < 1e-6 * a.total_cycles().max(1.0));
    }

    /// Work scale is an exact multiplier on runtime.
    #[test]
    fn work_scale_is_linear(
        counters in arbitrary_counters(),
        scale in 1.0f64..10_000.0,
    ) {
        let base_model = MachineModel::default();
        let scaled_model = MachineModel::with_work_scale(scale);
        let work = StageWork::from_counters(&counters, 0.5, 100.0, &base_model);
        let m = MachineConfig::vcpus(4);
        let base = base_model.runtime_secs(&work, &m);
        let scaled = scaled_model.runtime_secs(&work, &m);
        prop_assert!((scaled / base - scale).abs() < 1e-6 * scale);
    }
}
