//! Simulated hardware performance counters and machine execution model.
//!
//! The paper instruments Linux `perf` hardware counters (branch misses,
//! cache misses, AVX floating-point operations) on a Xeon host throttled
//! with cgroups to emulate VM sizes. Portable Rust cannot read PMCs, so
//! this crate inverts the arrangement: the EDA engines *emit* their
//! memory accesses, branches, and floating-point operations into a
//! [`PerfProbe`], which feeds
//!
//! * a set-associative two-level [`cache`](CacheSim) simulator,
//! * a 2-bit saturating-counter [`branch predictor`](BranchPredictor), and
//! * plain event [`counters`](CounterSet),
//!
//! yielding the same derived metrics the paper plots. A calibrated
//! [`MachineModel`] then converts the counted work plus a stage's
//! serial/parallel split into a simulated runtime for a given
//! [`MachineConfig`] (vCPUs, cache share, memory bandwidth, AVX support),
//! reproducing the multi-tenant VM-size emulation deterministically.
//!
//! # Examples
//!
//! ```
//! use eda_cloud_perf::{MachineConfig, PerfProbe};
//!
//! let mut probe = PerfProbe::for_machine(&MachineConfig::vcpus(2));
//! probe.read(0x1000);
//! probe.read(0x1000); // second access hits L1
//! probe.branch(0xA, true);
//! let report = probe.finish();
//! assert_eq!(report.counters.cache_refs, 2);
//! assert_eq!(report.counters.l1_misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod counters;
mod machine;
mod probe;

pub use branch::BranchPredictor;
pub use cache::{Cache, CacheSim};
pub use counters::CounterSet;
pub use machine::{MachineConfig, MachineModel, StageWork};
pub use probe::{PerfProbe, PerfReport, ProbeEvent, ProbeTrace, SharedProbe};
