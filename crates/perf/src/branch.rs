//! Branch-predictor simulator.

use serde::{Deserialize, Serialize};

/// A classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by a hash of the branch "program counter" (any stable site
/// identifier works — the EDA kernels pass small per-site constants).
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::BranchPredictor;
///
/// let mut bp = BranchPredictor::new(1024);
/// // A always-taken loop branch trains quickly.
/// let mut wrong = 0;
/// for _ in 0..100 {
///     if !bp.predict_and_update(0x10, true) {
///         wrong += 1;
///     }
/// }
/// assert!(wrong <= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictor {
    /// 2-bit counters: 0,1 predict not-taken; 2,3 predict taken.
    table: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Create a predictor with `entries` counters (rounded up to a power
    /// of two, minimum 16). Counters start weakly not-taken.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Self {
            table: vec![1u8; n],
            predictions: 0,
            mispredictions: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Fibonacci hashing spreads consecutive site ids.
        let h = pc.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 40) as usize & (self.table.len() - 1)
    }

    /// Predict the branch at `pc`, then update with the real `taken`
    /// outcome. Returns `true` if the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.predictions += 1;
        let i = self.index(pc);
        let counter = &mut self.table[i];
        let predicted_taken = *counter >= 2;
        if taken {
            *counter = (*counter + 1).min(3);
        } else {
            *counter = counter.saturating_sub(1);
        }
        let correct = predicted_taken == taken;
        if !correct {
            self.mispredictions += 1;
        }
        correct
    }

    /// Number of branches predicted so far.
    #[must_use]
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Number of mispredictions so far.
    #[must_use]
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction ratio.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Reset statistics and training state.
    pub fn reset(&mut self) {
        self.table.fill(1);
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn biased_branches_predict_well() {
        let mut bp = BranchPredictor::new(256);
        for i in 0..1000u64 {
            bp.predict_and_update(7, i % 10 != 0); // 90% taken
        }
        assert!(bp.miss_rate() < 0.25, "rate={}", bp.miss_rate());
    }

    #[test]
    fn random_branches_predict_poorly() {
        let mut bp = BranchPredictor::new(256);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..4000 {
            bp.predict_and_update(3, rng.gen_bool(0.5));
        }
        assert!(bp.miss_rate() > 0.35, "rate={}", bp.miss_rate());
    }

    #[test]
    fn alternating_pattern_defeats_bimodal() {
        let mut bp = BranchPredictor::new(64);
        for i in 0..1000u64 {
            bp.predict_and_update(5, i % 2 == 0);
        }
        // A strict alternation oscillates the counter: high miss rate.
        assert!(bp.miss_rate() > 0.4);
    }

    #[test]
    fn distinct_sites_do_not_interfere_much() {
        let mut bp = BranchPredictor::new(4096);
        for i in 0..1000u64 {
            bp.predict_and_update(100, true);
            bp.predict_and_update(200, false);
            let _ = i;
        }
        assert!(bp.miss_rate() < 0.05);
    }

    #[test]
    fn reset_clears_state() {
        let mut bp = BranchPredictor::new(64);
        bp.predict_and_update(1, true);
        bp.reset();
        assert_eq!(bp.predictions(), 0);
        assert_eq!(bp.mispredictions(), 0);
    }

    #[test]
    fn table_size_is_power_of_two() {
        let bp = BranchPredictor::new(100);
        assert_eq!(bp.table.len(), 128);
        let bp = BranchPredictor::new(0);
        assert_eq!(bp.table.len(), 16);
    }
}
