//! Machine configuration and the work-to-runtime execution model.

use crate::CounterSet;
use serde::{Deserialize, Serialize};

/// A virtual-machine configuration as the EDA job sees it.
///
/// The paper emulates VM sizes (1/2/4/8 vCPUs) by throttling a 14-core
/// Xeon E5-2680 host with cgroups; this struct captures the quantities
/// that throttling controls plus the instance-family traits the paper's
/// recommendations hinge on (AVX support, memory-to-core ratio).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of virtual CPUs (hardware threads).
    pub vcpus: u32,
    /// Memory in GiB.
    pub memory_gb: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Whether the underlying processor exposes AVX vector units.
    pub avx: bool,
    /// Memory bandwidth available to this VM, GB/s.
    pub mem_bw_gbps: f64,
    /// Interference factor from co-tenants in `[0, 1)`; effective core
    /// throughput is scaled by `1 - interference`.
    pub interference: f64,
}

impl MachineConfig {
    /// A general-purpose VM with `vcpus` cores (4 GiB and ~6 GB/s of
    /// memory bandwidth per vCPU, AVX available, Xeon-like 3.3 GHz).
    #[must_use]
    pub fn vcpus(vcpus: u32) -> Self {
        let vcpus = vcpus.max(1);
        Self {
            vcpus,
            memory_gb: 4.0 * f64::from(vcpus),
            clock_ghz: 3.3,
            avx: true,
            mem_bw_gbps: 6.0 * f64::from(vcpus),
            interference: 0.0,
        }
    }

    /// A memory-optimized variant: double memory and +50% bandwidth per
    /// vCPU, matching the paper's recommendation target for placement and
    /// routing.
    #[must_use]
    pub fn memory_optimized(vcpus: u32) -> Self {
        let base = Self::vcpus(vcpus);
        Self {
            memory_gb: base.memory_gb * 2.0,
            mem_bw_gbps: base.mem_bw_gbps * 1.5,
            ..base
        }
    }

    /// Simulate co-tenancy: return a copy with the given interference.
    ///
    /// # Panics
    ///
    /// Panics if `interference` is not within `[0, 1)`.
    #[must_use]
    pub fn with_interference(mut self, interference: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&interference),
            "interference must be in [0, 1)"
        );
        self.interference = interference;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::vcpus(1)
    }
}

/// The work a flow stage performed, split into scheduling classes.
///
/// Produced by the flow engines from their [`CounterSet`] plus knowledge
/// of which phases parallelize; consumed by [`MachineModel`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StageWork {
    /// Cycles that must execute on one core (inherent dependencies).
    pub serial_cycles: f64,
    /// Cycles that distribute across all vCPUs.
    pub parallel_cycles: f64,
    /// Memory-stall cycles incurred by the serial portion of the stage;
    /// these cannot overlap across cores.
    pub mem_serial_cycles: f64,
    /// Memory-stall cycles incurred by the parallel portion; these
    /// overlap across cores up to the VM's memory bandwidth.
    pub mem_parallel_cycles: f64,
    /// Synchronization cost paid once per barrier, multiplied by
    /// `log2(vcpus)` (tree barriers).
    pub sync_cycles: f64,
}

impl StageWork {
    /// Derive stage work from counted events.
    ///
    /// `parallel_fraction` is the share of compute cycles that the
    /// stage's algorithms can distribute (e.g. ~0.95 for independent-net
    /// routing, ~0.5 for pass-dominated synthesis). Cost weights are
    /// taken from `model`.
    #[must_use]
    pub fn from_counters(
        counters: &CounterSet,
        parallel_fraction: f64,
        sync_cycles: f64,
        model: &MachineModel,
    ) -> Self {
        let p = parallel_fraction.clamp(0.0, 1.0);
        let base = counters.instructions as f64 / model.ipc;
        let branch_penalty = counters.branch_misses as f64 * model.branch_miss_cycles;
        let vector_discount = counters.avx_ops as f64 * model.avx_discount_cycles;
        let compute = (base + branch_penalty - vector_discount).max(0.0);
        let l1_stall = counters.l1_misses.saturating_sub(counters.llc_misses) as f64
            * model.l1_miss_cycles;
        let mem_stall = counters.llc_misses as f64 * model.llc_miss_cycles;
        Self {
            serial_cycles: (compute + l1_stall) * (1.0 - p),
            parallel_cycles: (compute + l1_stall) * p,
            mem_serial_cycles: mem_stall * (1.0 - p),
            mem_parallel_cycles: mem_stall * p,
            sync_cycles,
        }
    }

    /// Total cycles ignoring parallelism (1-core lower bound).
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.serial_cycles
            + self.parallel_cycles
            + self.mem_serial_cycles
            + self.mem_parallel_cycles
            + self.sync_cycles
    }
}

/// Calibrated cost model converting [`StageWork`] into seconds on a
/// [`MachineConfig`].
///
/// `work_scale` bridges the gap between this reproduction's lightweight
/// engines and a full commercial flow: our kernels execute roughly 10³-10⁴
/// times fewer operations per cell than production tools, so counted work
/// is multiplied by `work_scale` to land runtimes in the paper's range
/// (thousands of seconds for a SPARC-core-class design). Only relative
/// magnitudes matter for every experiment.
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::{MachineConfig, MachineModel, StageWork};
///
/// let model = MachineModel::default();
/// let work = StageWork {
///     serial_cycles: 1e9,
///     parallel_cycles: 9e9,
///     mem_serial_cycles: 0.0,
///     mem_parallel_cycles: 0.0,
///     sync_cycles: 0.0,
/// };
/// let t1 = model.runtime_secs(&work, &MachineConfig::vcpus(1));
/// let t8 = model.runtime_secs(&work, &MachineConfig::vcpus(8));
/// assert!(t8 < t1 && t8 > t1 / 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Base instructions per cycle.
    pub ipc: f64,
    /// Penalty cycles per branch mispredict.
    pub branch_miss_cycles: f64,
    /// Stall cycles per L1 miss served by the LLC.
    pub l1_miss_cycles: f64,
    /// Stall cycles per LLC miss served by memory.
    pub llc_miss_cycles: f64,
    /// Cycles saved per FP op executed on AVX instead of scalar units.
    pub avx_discount_cycles: f64,
    /// Parallel-scaling efficiency per extra core (1.0 = perfect).
    pub scaling_efficiency: f64,
    /// Multiplier bridging modeled work to commercial-flow magnitudes.
    pub work_scale: f64,
}

impl Default for MachineModel {
    fn default() -> Self {
        Self {
            ipc: 2.0,
            branch_miss_cycles: 14.0,
            l1_miss_cycles: 12.0,
            llc_miss_cycles: 180.0,
            avx_discount_cycles: 0.35,
            scaling_efficiency: 0.92,
            work_scale: 1.0,
        }
    }
}

impl MachineModel {
    /// Model with a work-scale calibration applied.
    #[must_use]
    pub fn with_work_scale(work_scale: f64) -> Self {
        Self {
            work_scale,
            ..Self::default()
        }
    }

    /// Effective parallel core count for a machine (accounts for
    /// sub-linear scaling and co-tenant interference).
    #[must_use]
    pub fn effective_cores(&self, machine: &MachineConfig) -> f64 {
        let n = f64::from(machine.vcpus.max(1));
        let scaled = 1.0 + (n - 1.0) * self.scaling_efficiency;
        scaled * (1.0 - machine.interference)
    }

    /// Predicted runtime in seconds for `work` on `machine`.
    #[must_use]
    pub fn runtime_secs(&self, work: &StageWork, machine: &MachineConfig) -> f64 {
        let cores = self.effective_cores(machine);
        let compute = work.serial_cycles + work.parallel_cycles / cores;
        // Parallel-section memory stalls overlap across cores but
        // saturate at the VM's bandwidth (roughly one outstanding miss
        // stream per 12 GB/s); serial-section stalls do not overlap at
        // all — memory latency is not parallelized by idle cores.
        let bw_streams = (machine.mem_bw_gbps / 12.0 * 1.5).max(1.0);
        let mem = work.mem_serial_cycles + work.mem_parallel_cycles / cores.min(bw_streams);
        let sync = work.sync_cycles * (f64::from(machine.vcpus.max(1))).log2().max(0.0);
        let hz = machine.clock_ghz * 1e9;
        (compute + mem + sync) * self.work_scale / hz
    }

    /// Speedup of `machine` over a single-vCPU machine of the same family
    /// for the given per-machine work measurements.
    ///
    /// `work_1` must be measured on the 1-vCPU configuration and `work_n`
    /// on `machine` (counters differ because cache capacity differs).
    #[must_use]
    pub fn speedup(
        &self,
        work_1: &StageWork,
        base: &MachineConfig,
        work_n: &StageWork,
        machine: &MachineConfig,
    ) -> f64 {
        self.runtime_secs(work_1, base) / self.runtime_secs(work_n, machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(p: f64) -> StageWork {
        StageWork {
            serial_cycles: 1e9 * (1.0 - p),
            parallel_cycles: 1e9 * p,
            mem_serial_cycles: 0.0,
            mem_parallel_cycles: 0.0,
            sync_cycles: 0.0,
        }
    }

    #[test]
    fn amdahl_limits_speedup() {
        let model = MachineModel::default();
        let w = work(0.5);
        let t1 = model.runtime_secs(&w, &MachineConfig::vcpus(1));
        let t8 = model.runtime_secs(&w, &MachineConfig::vcpus(8));
        let speedup = t1 / t8;
        assert!(speedup > 1.5 && speedup < 2.0, "speedup={speedup}");
    }

    #[test]
    fn highly_parallel_work_scales() {
        let model = MachineModel::default();
        let w = work(0.97);
        let t1 = model.runtime_secs(&w, &MachineConfig::vcpus(1));
        let t8 = model.runtime_secs(&w, &MachineConfig::vcpus(8));
        assert!(t1 / t8 > 4.5, "speedup={}", t1 / t8);
    }

    #[test]
    fn interference_slows_execution() {
        let model = MachineModel::default();
        let w = work(0.9);
        let quiet = model.runtime_secs(&w, &MachineConfig::vcpus(4));
        let noisy =
            model.runtime_secs(&w, &MachineConfig::vcpus(4).with_interference(0.3));
        assert!(noisy > quiet);
    }

    #[test]
    fn memory_stalls_saturate_bandwidth() {
        let model = MachineModel::default();
        let w = StageWork {
            serial_cycles: 0.0,
            parallel_cycles: 0.0,
            mem_serial_cycles: 0.0,
            mem_parallel_cycles: 1e9,
            sync_cycles: 0.0,
        };
        let t1 = model.runtime_secs(&w, &MachineConfig::vcpus(1));
        let t8 = model.runtime_secs(&w, &MachineConfig::vcpus(8));
        // Bandwidth grows with vCPUs in this family, but sub-linearly
        // relative to perfect core scaling for pure compute.
        let speedup = t1 / t8;
        assert!(speedup > 1.0 && speedup < 8.0, "speedup={speedup}");
        // Memory-optimized family with more bandwidth is faster.
        let mem = model.runtime_secs(&w, &MachineConfig::memory_optimized(8));
        assert!(mem < t8);
    }

    #[test]
    fn work_scale_multiplies_runtime() {
        let w = work(0.5);
        let base = MachineModel::default().runtime_secs(&w, &MachineConfig::vcpus(1));
        let scaled =
            MachineModel::with_work_scale(100.0).runtime_secs(&w, &MachineConfig::vcpus(1));
        assert!((scaled / base - 100.0).abs() < 1e-6);
    }

    #[test]
    fn from_counters_splits_by_fraction() {
        let model = MachineModel::default();
        let counters = CounterSet {
            instructions: 2_000,
            branch_misses: 10,
            l1_misses: 100,
            llc_misses: 40,
            ..CounterSet::default()
        };
        let w = StageWork::from_counters(&counters, 0.75, 0.0, &model);
        assert!(w.serial_cycles > 0.0);
        assert!(w.parallel_cycles > w.serial_cycles);
        let mem_total = w.mem_serial_cycles + w.mem_parallel_cycles;
        assert!((mem_total - 40.0 * model.llc_miss_cycles).abs() < 1e-9);
        // Split follows the parallel fraction.
        assert!((w.mem_parallel_cycles / mem_total - 0.75).abs() < 1e-9);
    }

    #[test]
    fn avx_discount_reduces_compute() {
        let model = MachineModel::default();
        let scalar = CounterSet {
            instructions: 10_000,
            flops: 5_000,
            ..CounterSet::default()
        };
        let vector = CounterSet {
            instructions: 10_000,
            avx_ops: 5_000,
            ..CounterSet::default()
        };
        let ws = StageWork::from_counters(&scalar, 0.5, 0.0, &model);
        let wv = StageWork::from_counters(&vector, 0.5, 0.0, &model);
        assert!(wv.total_cycles() < ws.total_cycles());
    }

    #[test]
    #[should_panic(expected = "interference must be in [0, 1)")]
    fn bad_interference_panics() {
        let _ = MachineConfig::vcpus(1).with_interference(1.5);
    }

    #[test]
    fn zero_vcpus_clamped() {
        let m = MachineConfig::vcpus(0);
        assert_eq!(m.vcpus, 1);
    }
}
