//! Raw event counters and derived metrics.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// A snapshot of simulated hardware event counters.
///
/// Mirrors the `perf stat` events the paper collects: instructions,
/// branches and mispredictions, cache references and misses (split per
/// level here), plus scalar and AVX floating-point operations.
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::CounterSet;
///
/// let mut c = CounterSet::default();
/// c.branches = 100;
/// c.branch_misses = 7;
/// assert!((c.branch_miss_rate() - 0.07).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    /// Retired instructions (modeled; incremented by kernels).
    pub instructions: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branches the simulated predictor got wrong.
    pub branch_misses: u64,
    /// Memory references that reached the cache hierarchy.
    pub cache_refs: u64,
    /// References that missed L1.
    pub l1_misses: u64,
    /// References that also missed the last-level cache.
    pub llc_misses: u64,
    /// Scalar floating-point operations.
    pub flops: u64,
    /// Floating-point operations executed on AVX vector hardware.
    pub avx_ops: u64,
}

impl CounterSet {
    /// Fraction of branches mispredicted (0 when no branches ran).
    #[must_use]
    pub fn branch_miss_rate(&self) -> f64 {
        ratio(self.branch_misses, self.branches)
    }

    /// Fraction of cache references that missed L1.
    #[must_use]
    pub fn cache_miss_rate(&self) -> f64 {
        ratio(self.l1_misses, self.cache_refs)
    }

    /// Fraction of cache references that missed all the way to memory.
    #[must_use]
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(self.llc_misses, self.cache_refs)
    }

    /// The metric `perf stat` prints as "cache misses": LLC misses over
    /// LLC references (references that already missed L1). This is the
    /// quantity plotted in the paper's Figure 2-b.
    #[must_use]
    pub fn perf_cache_miss_rate(&self) -> f64 {
        ratio(self.llc_misses, self.l1_misses)
    }

    /// Share of all floating-point work executed on AVX hardware.
    #[must_use]
    pub fn avx_share(&self) -> f64 {
        ratio(self.avx_ops, self.avx_ops + self.flops)
    }

    /// Share of instructions that are floating-point (scalar + AVX).
    #[must_use]
    pub fn fp_instruction_share(&self) -> f64 {
        ratio(self.avx_ops + self.flops, self.instructions)
    }

    /// Total dynamic operation count (instructions incl. FP work).
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.instructions
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for CounterSet {
    type Output = CounterSet;
    fn add(mut self, rhs: CounterSet) -> CounterSet {
        self += rhs;
        self
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        self.instructions += rhs.instructions;
        self.branches += rhs.branches;
        self.branch_misses += rhs.branch_misses;
        self.cache_refs += rhs.cache_refs;
        self.l1_misses += rhs.l1_misses;
        self.llc_misses += rhs.llc_misses;
        self.flops += rhs.flops;
        self.avx_ops += rhs.avx_ops;
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instr={} br={} ({:.1}% miss) cache={} ({:.1}% miss) fp={} avx={}",
            self.instructions,
            self.branches,
            100.0 * self.branch_miss_rate(),
            self.cache_refs,
            100.0 * self.cache_miss_rate(),
            self.flops,
            self.avx_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_with_zero_denominator_are_zero() {
        let c = CounterSet::default();
        assert_eq!(c.branch_miss_rate(), 0.0);
        assert_eq!(c.cache_miss_rate(), 0.0);
        assert_eq!(c.avx_share(), 0.0);
        assert_eq!(c.fp_instruction_share(), 0.0);
    }

    #[test]
    fn addition_is_fieldwise() {
        let a = CounterSet {
            instructions: 10,
            branches: 4,
            branch_misses: 1,
            cache_refs: 6,
            l1_misses: 2,
            llc_misses: 1,
            flops: 3,
            avx_ops: 5,
        };
        let sum = a + a;
        assert_eq!(sum.instructions, 20);
        assert_eq!(sum.avx_ops, 10);
        assert_eq!(sum.branch_miss_rate(), a.branch_miss_rate());
    }

    #[test]
    fn avx_share_counts_both_kinds() {
        let c = CounterSet {
            flops: 25,
            avx_ops: 75,
            ..CounterSet::default()
        };
        assert!((c.avx_share() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_contains_percentages() {
        let c = CounterSet {
            branches: 100,
            branch_misses: 12,
            ..CounterSet::default()
        };
        assert!(c.to_string().contains("12.0% miss"));
    }
}
