//! The probe EDA kernels emit events into.

use crate::{BranchPredictor, CacheSim, CounterSet, MachineConfig};
use parking_lot::Mutex;
use std::sync::Arc;

/// One event emitted by an instrumented kernel into a [`PerfProbe`].
///
/// Engines only ever *write* events into the probe — no kernel reads
/// probe state back — so the event stream of a run is a pure function
/// of the inputs (design + recipe), independent of the machine the
/// probe models. That makes a recorded [`ProbeTrace`] replayable
/// against any machine configuration with results bit-identical to a
/// fresh run on that machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// `n` generic retired instructions.
    Instr(u64),
    /// A memory access (read or write-allocate) at a byte address.
    Access(u64),
    /// A conditional branch at site `pc` with its outcome.
    Branch {
        /// Branch site address (predictor index).
        pc: u64,
        /// Whether the branch was taken.
        taken: bool,
    },
    /// `n` iterations of a well-predicted loop.
    LoopBranches(u64),
    /// `n` floating-point operations.
    Fp {
        /// Operation count.
        n: u64,
        /// Whether the work can land on vector hardware.
        vectorizable: bool,
    },
    /// Counters merged in from a worker probe.
    Absorb(CounterSet),
}

/// A machine-independent recording of every event a probed run emitted,
/// in order. Replaying it into a probe for machine `m` yields exactly
/// the counters a fresh run on `m` would produce, at a fraction of the
/// cost of re-running the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProbeTrace {
    events: Vec<ProbeEvent>,
}

impl ProbeTrace {
    /// Number of recorded events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace recorded nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replay the trace into a fresh probe for `machine` and return the
    /// resulting counters — bit-identical to running the original
    /// kernel against that machine.
    #[must_use]
    pub fn replay(&self, machine: &MachineConfig) -> CounterSet {
        let mut probe = PerfProbe::for_machine(machine);
        for event in &self.events {
            probe.apply(*event);
        }
        probe.counters()
    }
}

/// Collects events from an instrumented kernel: memory accesses flow
/// through a cache hierarchy sized for the target machine, branches
/// through a bimodal predictor, and floating-point work is attributed to
/// AVX hardware when the machine supports it.
///
/// One probe per thread; merge per-thread [`CounterSet`]s with
/// [`PerfProbe::absorb`] after a parallel section (cache/predictor state
/// is per-thread, matching private L1s).
///
/// A probe created with [`PerfProbe::for_machine_traced`] additionally
/// records every event into a [`ProbeTrace`] for later replay against
/// other machine configurations.
#[derive(Debug, Clone)]
pub struct PerfProbe {
    counters: CounterSet,
    cache: CacheSim,
    branch: BranchPredictor,
    avx_available: bool,
    trace: Option<Vec<ProbeEvent>>,
}

/// The final result of a probed run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// All counted events with cache/branch misses folded in.
    pub counters: CounterSet,
}

impl PerfProbe {
    /// Probe with a cache hierarchy and AVX capability matching `machine`.
    #[must_use]
    pub fn for_machine(machine: &MachineConfig) -> Self {
        Self {
            counters: CounterSet::default(),
            cache: CacheSim::for_vcpus(machine.vcpus),
            branch: BranchPredictor::new(4096),
            avx_available: machine.avx,
            trace: None,
        }
    }

    /// Like [`PerfProbe::for_machine`], but records every event into a
    /// trace retrievable with [`PerfProbe::into_traced`].
    #[must_use]
    pub fn for_machine_traced(machine: &MachineConfig) -> Self {
        Self {
            trace: Some(Vec::new()),
            ..Self::for_machine(machine)
        }
    }

    /// Probe with an explicit cache hierarchy (used by cache-model
    /// ablations).
    #[must_use]
    pub fn with_cache(cache: CacheSim, avx_available: bool) -> Self {
        Self {
            counters: CounterSet::default(),
            cache,
            branch: BranchPredictor::new(4096),
            avx_available,
            trace: None,
        }
    }

    #[inline]
    fn record(&mut self, event: ProbeEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(event);
        }
    }

    /// Apply one event without recording it (shared by the live entry
    /// points and [`ProbeTrace::replay`]).
    #[inline]
    fn apply(&mut self, event: ProbeEvent) {
        match event {
            ProbeEvent::Instr(n) => self.counters.instructions += n,
            ProbeEvent::Access(addr) => {
                self.counters.instructions += 1;
                self.counters.cache_refs += 1;
                if !self.cache.access(addr) {
                    self.counters.l1_misses += 1;
                }
            }
            ProbeEvent::Branch { pc, taken } => {
                self.counters.instructions += 1;
                self.counters.branches += 1;
                if !self.branch.predict_and_update(pc, taken) {
                    self.counters.branch_misses += 1;
                }
            }
            ProbeEvent::LoopBranches(n) => {
                self.counters.instructions += n;
                self.counters.branches += n;
                // Loop predictors capture short trip counts; long loops
                // pay an amortized exit/alias miss.
                self.counters.branch_misses += n / 48;
            }
            ProbeEvent::Fp { n, vectorizable } => {
                self.counters.instructions += n;
                if vectorizable && self.avx_available {
                    self.counters.avx_ops += n;
                } else {
                    self.counters.flops += n;
                }
            }
            ProbeEvent::Absorb(other) => self.counters += other,
        }
    }

    /// Count `n` generic retired instructions.
    #[inline]
    pub fn instr(&mut self, n: u64) {
        self.record(ProbeEvent::Instr(n));
        self.apply(ProbeEvent::Instr(n));
    }

    /// Simulate a memory read at byte address `addr`.
    #[inline]
    pub fn read(&mut self, addr: u64) {
        self.record(ProbeEvent::Access(addr));
        self.apply(ProbeEvent::Access(addr));
    }

    /// Simulate a memory write at byte address `addr` (write-allocate).
    #[inline]
    pub fn write(&mut self, addr: u64) {
        self.record(ProbeEvent::Access(addr));
        self.apply(ProbeEvent::Access(addr));
    }

    /// Simulate a conditional branch at site `pc` with outcome `taken`.
    #[inline]
    pub fn branch(&mut self, pc: u64, taken: bool) {
        self.record(ProbeEvent::Branch { pc, taken });
        self.apply(ProbeEvent::Branch { pc, taken });
    }

    /// Count `n` iterations of a well-predicted loop: the back-edge
    /// branch is taken every iteration and mispredicted only at loop
    /// exit. Engines call this once per loop with the trip count, so
    /// the branch population reflects real control flow instead of only
    /// the data-dependent branches.
    #[inline]
    pub fn loop_branches(&mut self, n: u64) {
        self.record(ProbeEvent::LoopBranches(n));
        self.apply(ProbeEvent::LoopBranches(n));
    }

    /// Count `n` floating-point operations; vectorizable work lands on
    /// AVX hardware when available, otherwise executes as scalar FLOPs.
    #[inline]
    pub fn fp(&mut self, n: u64, vectorizable: bool) {
        self.record(ProbeEvent::Fp { n, vectorizable });
        self.apply(ProbeEvent::Fp { n, vectorizable });
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn counters(&self) -> CounterSet {
        let mut c = self.counters;
        // Fold LLC misses from the hierarchy (kept there to avoid a
        // second counter increment on the hot path).
        c.llc_misses = self.cache.llc_misses();
        c
    }

    /// Merge counters collected by another probe (e.g. a worker thread).
    ///
    /// Note for tracing: the absorbed counters are recorded verbatim,
    /// so a trace containing absorbs replays machine-independently only
    /// if the absorbed counters themselves are (worker probes are
    /// usually machine-specific; the flow engines that absorb — the
    /// router — are exactly the ones that are never traced).
    pub fn absorb(&mut self, other: CounterSet) {
        self.record(ProbeEvent::Absorb(other));
        self.apply(ProbeEvent::Absorb(other));
    }

    /// Whether this probe attributes vector FP work to AVX hardware.
    #[must_use]
    pub fn avx_available(&self) -> bool {
        self.avx_available
    }

    /// Finish the run and produce the report.
    #[must_use]
    pub fn finish(self) -> PerfReport {
        let counters = self.counters();
        PerfReport { counters }
    }

    /// Finish a traced run, returning the final counters and the
    /// recorded event trace (empty for untraced probes).
    #[must_use]
    pub fn into_traced(mut self) -> (CounterSet, ProbeTrace) {
        let events = self.trace.take().unwrap_or_default();
        (self.counters(), ProbeTrace { events })
    }
}

/// A thread-safe probe handle for sections where worker threads share one
/// collector; coarse-grained, so workers should batch their events.
///
/// # Examples
///
/// ```
/// use eda_cloud_perf::{MachineConfig, PerfProbe, SharedProbe};
///
/// let shared = SharedProbe::new(PerfProbe::for_machine(&MachineConfig::vcpus(4)));
/// let handle = shared.clone();
/// std::thread::spawn(move || handle.lock().instr(100)).join().unwrap();
/// assert_eq!(shared.lock().counters().instructions, 100);
/// ```
#[derive(Debug, Clone)]
pub struct SharedProbe(Arc<Mutex<PerfProbe>>);

impl SharedProbe {
    /// Wrap a probe for sharing across threads.
    #[must_use]
    pub fn new(probe: PerfProbe) -> Self {
        Self(Arc::new(Mutex::new(probe)))
    }

    /// Lock the inner probe.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, PerfProbe> {
        self.0.lock()
    }

    /// Unwrap if this is the last handle, else return the counters only.
    #[must_use]
    pub fn into_report(self) -> PerfReport {
        match Arc::try_unwrap(self.0) {
            Ok(m) => m.into_inner().finish(),
            Err(arc) => PerfReport {
                counters: arc.lock().counters(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe() -> PerfProbe {
        PerfProbe::for_machine(&MachineConfig::vcpus(1))
    }

    #[test]
    fn reads_flow_through_cache() {
        let mut p = probe();
        p.read(0);
        p.read(0);
        p.read(64 * 1024 * 1024); // far away -> new line
        let c = p.counters();
        assert_eq!(c.cache_refs, 3);
        assert_eq!(c.l1_misses, 2);
        assert_eq!(c.llc_misses, 2);
        assert_eq!(c.instructions, 3);
    }

    #[test]
    fn fp_attribution_depends_on_avx() {
        let mut with = PerfProbe::for_machine(&MachineConfig::vcpus(1));
        with.fp(10, true);
        with.fp(5, false);
        let c = with.counters();
        assert_eq!(c.avx_ops, 10);
        assert_eq!(c.flops, 5);

        let mut without =
            PerfProbe::for_machine(&MachineConfig { avx: false, ..MachineConfig::vcpus(1) });
        without.fp(10, true);
        let c = without.counters();
        assert_eq!(c.avx_ops, 0);
        assert_eq!(c.flops, 10);
    }

    #[test]
    fn absorb_merges_worker_counters() {
        let mut main = probe();
        let mut worker = probe();
        worker.instr(50);
        worker.branch(1, true);
        main.absorb(worker.counters());
        assert_eq!(main.counters().instructions, 51);
        assert_eq!(main.counters().branches, 1);
    }

    #[test]
    fn finish_reports_llc() {
        let mut p = probe();
        for i in 0..1000u64 {
            p.read(i * 4096); // pathological stride
        }
        let report = p.finish();
        assert!(report.counters.llc_misses > 0);
    }

    /// Drive a deterministic but machine-sensitive event mix through a
    /// probe (large-stride accesses hit different cache levels per
    /// machine; FP attribution depends on AVX).
    fn exercise(p: &mut PerfProbe) {
        // Working set of 4 MiB: larger than the 1-vCPU LLC (~3 MiB),
        // smaller than the 8-vCPU LLC (~5.8 MiB), so the same trace
        // produces different LLC miss counts on the two machines.
        for pass in 0..3u64 {
            for i in 0..(4 << 20) / 64u64 {
                p.read(i * 64);
                p.branch(0x10 + (i % 7), (i + pass) % 3 == 0);
            }
        }
        p.instr(123);
        p.loop_branches(500);
        p.fp(64, true);
        p.fp(9, false);
        p.write(0xDEAD_0000);
    }

    #[test]
    fn trace_replay_is_bit_identical_per_machine() {
        let m1 = MachineConfig::vcpus(1);
        let m8 = MachineConfig::vcpus(8);
        let mut traced = PerfProbe::for_machine_traced(&m1);
        exercise(&mut traced);
        let (recorded, trace) = traced.into_traced();
        assert!(!trace.is_empty());

        // Replay on the recording machine reproduces its counters.
        assert_eq!(trace.replay(&m1), recorded);

        // Replay on a different machine matches a fresh run there —
        // and genuinely differs from the m1 counters (bigger LLC).
        let mut fresh = PerfProbe::for_machine(&m8);
        exercise(&mut fresh);
        let on_m8 = trace.replay(&m8);
        assert_eq!(on_m8, fresh.counters());
        assert_ne!(on_m8.llc_misses, recorded.llc_misses);
    }

    #[test]
    fn untraced_probe_yields_empty_trace() {
        let mut p = probe();
        p.instr(5);
        let (counters, trace) = p.into_traced();
        assert_eq!(counters.instructions, 5);
        assert!(trace.is_empty());
        assert_eq!(trace.len(), 0);
    }

    #[test]
    fn absorb_is_replayed() {
        let m = MachineConfig::vcpus(2);
        let mut p = PerfProbe::for_machine_traced(&m);
        let mut worker = PerfProbe::for_machine(&m);
        worker.instr(40);
        p.absorb(worker.counters());
        p.instr(2);
        let (counters, trace) = p.into_traced();
        assert_eq!(trace.replay(&m), counters);
        assert_eq!(counters.instructions, 42);
    }
}
